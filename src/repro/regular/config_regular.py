"""Definition 2: the regular set ``reg(P)`` of a configuration, and ``c(P)``.

``reg(P)`` is the canonical regular subset of a configuration — the trace a
symmetric configuration leaves behind while the algorithm moves robots.  It
is built from the increasing sequence ``Q_1 c Q_2 c ... c Q_k`` where
``Q_i`` holds the ``i`` greatest-view robots that do not hold ``C(P)``;
``reg(P)`` is the largest ``Q_i`` that is (bi)angular about ``c(P)`` and
*coherent* with the rest of the configuration:

  (a) ``Q_i`` is m-regular (or biangular) with center ``c(P)``;
  (b) ``m`` divides ``rho(P \\ Q_i)``;
  (c) if ``Q_i`` is biangular, its virtual axes are axes of symmetry of
      ``P \\ Q_i``.

``c(P)`` itself is the center of the regular set when the whole
configuration is regular, and the center of the smallest enclosing circle
otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..geometry import (
    Vec2,
    contains_point,
    point_holds_sec,
    smallest_enclosing_circle,
    without_points,
)
from ..model.symmetry import rotational_symmetry, symmetry_axes
from ..model.views import view_order
from .regular_set import ANGLE_TOL, RegularGeometry, check_regular_at, find_regular


@dataclass(frozen=True)
class RegularSet:
    """``reg(P)``: the regular set of a configuration.

    Attributes:
        members: the robots forming the regular set.
        geometry: the set's (bi)angular geometry (center, gaps, order m).
        whole: True when ``reg(P) = P`` (the entire configuration is
            regular).
    """

    members: tuple[Vec2, ...]
    geometry: RegularGeometry
    whole: bool

    def contains(self, p: Vec2) -> bool:
        """Whether robot location ``p`` belongs to the regular set."""
        return contains_point(self.members, p)

    def complement(self, points: Sequence[Vec2]) -> list[Vec2]:
        """``P \\ reg(P)`` for the configuration the set was computed from."""
        return without_points(points, self.members)


def config_center(points: Sequence[Vec2]) -> Vec2:
    """The paper's ``c(P)``.

    The center of the regular set when the whole configuration is regular
    (Definition 1), else the center of the smallest enclosing circle.
    """
    geometry = find_regular(points)
    if geometry is not None:
        return geometry.center
    return smallest_enclosing_circle(points).center


def regular_set_of(
    points: Sequence[Vec2], tol: float = ANGLE_TOL
) -> RegularSet | None:
    """Definition 2: compute ``reg(P)``, or None when it does not exist.

    Requires a configuration without multiplicity; a configuration with a
    robot at ``c(P)`` has no regular set (the definition presupposes
    ``c(P)`` not in ``P``).
    """
    whole = find_regular(points, tol)
    if whole is not None:
        return RegularSet(tuple(points), whole, True)

    center = smallest_enclosing_circle(points).center
    if contains_point(points, center):
        return None

    ordered = view_order(points, center)
    eligible = [p for p, _ in ordered if not point_holds_sec(list(points), p)]

    best: RegularSet | None = None
    for i in range(2, len(eligible) + 1):
        subset = eligible[:i]
        geometry = check_regular_at(subset, center, tol)
        if geometry is None:
            continue
        rest = without_points(points, subset)
        if not rest:
            continue
        if not _coherent(rest, center, geometry, tol):
            continue
        best = RegularSet(tuple(subset), geometry, False)
    return best


def _coherent(
    rest: Sequence[Vec2],
    center: Vec2,
    geometry: RegularGeometry,
    tol: float,
) -> bool:
    """Conditions (b) and (c) of Definition 2."""
    rho = rotational_symmetry(rest, center)
    if rho % geometry.m != 0:
        return False
    if geometry.biangular:
        rest_axes = symmetry_axes(rest, center)
        for axis in geometry.virtual_axes():
            if not any(_axis_eq(axis, other, 10 * tol) for other in rest_axes):
                return False
    return True


def _axis_eq(a: float, b: float, tol: float) -> bool:
    d = abs(a - b) % math.pi
    return d <= tol or math.pi - d <= tol
