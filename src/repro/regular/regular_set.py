"""Definition 1: m-regular and biangular (m/2-regular) sets.

A set ``M`` of ``m >= 2`` robots is *m-regular* when the half-lines from
some center ``c`` through the robots are ``m`` distinct directions with
equal consecutive gaps ``alpha = 2*pi/m``; it is *biangular*
("m/2-regular", ``m >= 4`` even) when the gaps alternate between two values
``alpha`` and ``beta``.  Radii are unconstrained — which is exactly why
radial movements preserve regularity.

The center of a regular set is its Weber point (Anderegg et al.), so
detection with an unknown center starts from Weiszfeld and polishes the
gap residual numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from ..geometry import Vec2, direction_angle, norm_angle, weber_point
from ..geometry.tolerance import approx_eq
from .optimize import nelder_mead

#: Maximum admissible gap deviation (radians) for regularity checks.
ANGLE_TOL = 1e-5

#: Convergence tolerance for the Weiszfeld solves feeding those checks.
#: A center accurate to 1e-9 perturbs every gap angle by orders of
#: magnitude less than ``ANGLE_TOL``; solving to the default 1e-12 would
#: only buy extra iterations of the (hot) Weiszfeld loop.
WEBER_TOL = 1e-9


@dataclass(frozen=True)
class RegularGeometry:
    """The geometry of a (bi)angular set.

    Attributes:
        center: the set's center.
        size: number of robots in the set.
        m: the rotational order — ``size`` for equiangular sets,
            ``size // 2`` for biangular ones (the paper's "m/2-regular").
        biangular: whether the gaps alternate between two values.
        alpha: the gap (equiangular) or the first alternating gap.
        beta: the second alternating gap (None for equiangular sets).
        directions: sorted half-line directions from the center.
    """

    center: Vec2
    size: int
    m: int
    biangular: bool
    alpha: float
    beta: float | None
    directions: tuple[float, ...]

    def min_gap(self) -> float:
        """The minimum angle between two consecutive half-lines."""
        if self.biangular and self.beta is not None:
            return min(self.alpha, self.beta)
        return self.alpha

    def virtual_axes(self) -> list[float]:
        """Directions (mod pi) of the virtual axes of a biangular set.

        The virtual axes bisect each consecutive pair of half-lines.  For an
        equiangular set the same construction yields its actual axes of
        direction symmetry; callers only use this for biangular sets.
        """
        axes: list[float] = []
        k = len(self.directions)
        for i in range(k):
            a = self.directions[i]
            b = self.directions[(i + 1) % k]
            gap = norm_angle(b - a)
            axis = norm_angle(a + gap / 2.0) % math.pi
            if not any(_axis_close(axis, existing) for existing in axes):
                axes.append(axis)
        axes.sort()
        return axes


def _axis_close(a: float, b: float, tol: float = ANGLE_TOL) -> bool:
    d = abs(a - b) % math.pi
    return d <= tol or math.pi - d <= tol


def _sorted_directions(
    points: Sequence[Vec2], center: Vec2
) -> list[float] | None:
    """Per-point directions from ``center``, sorted; None if center is hit."""
    directions: list[float] = []
    for p in points:
        if p.approx_eq(center, 1e-9):
            return None
        directions.append(direction_angle(center, p))
    directions.sort()
    return directions


def _gaps(directions: Sequence[float]) -> list[float]:
    gaps = [
        norm_angle(directions[(i + 1) % len(directions)] - directions[i])
        for i in range(len(directions) - 1)
    ]
    gaps.append(2.0 * math.pi - sum(gaps))
    return gaps


def check_regular_at(
    points: Sequence[Vec2], center: Vec2, tol: float = ANGLE_TOL
) -> RegularGeometry | None:
    """Definition 1 check with a *known* center.

    Each robot must sit on its own half-line (distinct directions); the
    gaps must all equal ``2*pi/size`` (equiangular) or alternate between
    two values (biangular, size >= 4 even).  Equiangular wins ties.
    """
    size = len(points)
    if size < 2:
        return None
    directions = _sorted_directions(points, center)
    if directions is None:
        return None
    # Distinct half-lines: consecutive sorted directions must differ.
    for i in range(size):
        d = norm_angle(directions[(i + 1) % size] - directions[i])
        if min(d, 2.0 * math.pi - d) <= tol:
            return None

    gaps = _gaps(directions)
    alpha_eq = 2.0 * math.pi / size
    if all(abs(g - alpha_eq) <= tol for g in gaps):
        return RegularGeometry(
            center, size, size, False, alpha_eq, None, tuple(directions)
        )

    if size >= 2 and size % 2 == 0:
        # Biangular ("m/2-regular"): alternating gaps.  Size 2 is the
        # degenerate case the paper's Property 1 needs for mirror-only
        # configurations: any two half-lines alternate trivially and their
        # two gap bisectors coincide (mod pi) into the single mirror axis.
        even = gaps[0::2]
        odd = gaps[1::2]
        alpha = sum(even) / len(even)
        beta = sum(odd) / len(odd)
        if (
            all(abs(g - alpha) <= tol for g in even)
            and all(abs(g - beta) <= tol for g in odd)
            and not approx_eq(alpha, beta, tol)
        ):
            return RegularGeometry(
                center, size, size // 2, True, alpha, beta, tuple(directions)
            )
    return None


def _equiangular_residual(points: Sequence[Vec2], center: Vec2) -> float:
    """Sum of squared gap deviations from 2*pi/n; inf when degenerate."""
    directions = _sorted_directions(points, center)
    if directions is None:
        return math.inf
    gaps = _gaps(directions)
    target = 2.0 * math.pi / len(points)
    return sum((g - target) ** 2 for g in gaps)


def _biangular_residual(points: Sequence[Vec2], center: Vec2) -> float:
    """Sum of squared deviations from the best alternating gap pattern."""
    directions = _sorted_directions(points, center)
    if directions is None:
        return math.inf
    gaps = _gaps(directions)
    n = len(gaps)
    if n < 4 or n % 2 != 0:
        return math.inf
    even, odd = gaps[0::2], gaps[1::2]
    alpha = sum(even) / len(even)
    beta = sum(odd) / len(odd)
    return sum((g - alpha) ** 2 for g in even) + sum((g - beta) ** 2 for g in odd)


def find_regular(
    points: Sequence[Vec2], tol: float = ANGLE_TOL, polish: bool = False
) -> RegularGeometry | None:
    """Definition 1 check with an *unknown* center.

    The center of a regular set is its Weber point (Anderegg et al.), and
    the Weber point is invariant under the radial movements the paper's
    algorithm performs — so checking equiangularity at the Weber point is
    both exact and fast for every configuration that matters.  Pass
    ``polish=True`` to additionally run a Nelder-Mead refinement of the
    gap residuals from the Weber start (useful for noisy external data;
    never needed for configurations this library's algorithms produce).
    """
    kernel = _KERNELS.find_regular
    if kernel is not None:
        return kernel(points, tol, polish)
    return _find_regular_impl(points, tol, polish)


def _find_regular_impl(
    points: Sequence[Vec2], tol: float, polish: bool
) -> RegularGeometry | None:
    """The scalar detector body (kernel dispatch lives above)."""
    if len(points) < 2:
        return None
    if len(points) == 2:
        # Any midpoint works; Definition 1 with m=2 means antipodal
        # half-lines, satisfied by every interior point of the segment.
        mid = Vec2(
            (points[0].x + points[1].x) / 2.0, (points[0].y + points[1].y) / 2.0
        )
        return check_regular_at(points, mid, tol)

    start = weber_point(points, tol=WEBER_TOL)
    geometry = check_regular_at(points, start, tol)
    if geometry is not None or not polish:
        return geometry

    scale = max(p.dist(start) for p in points) or 1.0
    for residual in (_equiangular_residual, _biangular_residual):
        best, value = nelder_mead(
            lambda c: residual(points, Vec2(c[0], c[1])),
            [start.x, start.y],
            step=0.01 * scale,
        )
        if value < tol * tol:
            geometry = check_regular_at(points, Vec2(best[0], best[1]), tol * 10)
            if geometry is not None:
                return geometry
    return None


def is_regular(points: Sequence[Vec2], tol: float = ANGLE_TOL) -> bool:
    """Whether the whole set satisfies Definition 1 for some center."""
    return find_regular(points, tol) is not None
