"""A tiny dependency-free Nelder-Mead optimiser.

Used to polish candidate centers of (shifted) regular sets: the residual
functions are smooth near a true center, and the starting guesses (Weber
points, SEC centers) are already close, so a simple downhill simplex is
entirely adequate.
"""

from __future__ import annotations

from typing import Callable, Sequence

Objective = Callable[[Sequence[float]], float]


def nelder_mead(
    objective: Objective,
    start: Sequence[float],
    step: float = 0.05,
    tol: float = 1e-14,
    max_iter: int = 500,
) -> tuple[list[float], float]:
    """Minimise ``objective`` from ``start``; returns (point, value).

    Standard Nelder-Mead with reflection/expansion/contraction/shrink
    coefficients (1, 2, 0.5, 0.5).  Terminates when the simplex's value
    spread falls below ``tol`` or after ``max_iter`` iterations.
    """
    dim = len(start)
    simplex: list[list[float]] = [list(start)]
    for i in range(dim):
        vertex = list(start)
        vertex[i] += step
        simplex.append(vertex)
    values = [objective(v) for v in simplex]

    for _ in range(max_iter):
        order = sorted(range(dim + 1), key=lambda i: values[i])
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        if values[-1] - values[0] < tol:
            break

        centroid = [
            sum(simplex[i][d] for i in range(dim)) / dim for d in range(dim)
        ]
        worst = simplex[-1]
        reflected = [centroid[d] + (centroid[d] - worst[d]) for d in range(dim)]
        f_reflected = objective(reflected)

        if f_reflected < values[0]:
            expanded = [
                centroid[d] + 2.0 * (centroid[d] - worst[d]) for d in range(dim)
            ]
            f_expanded = objective(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        else:
            contracted = [
                centroid[d] + 0.5 * (worst[d] - centroid[d]) for d in range(dim)
            ]
            f_contracted = objective(contracted)
            if f_contracted < values[-1]:
                simplex[-1], values[-1] = contracted, f_contracted
            else:
                best = simplex[0]
                for i in range(1, dim + 1):
                    simplex[i] = [
                        best[d] + 0.5 * (simplex[i][d] - best[d])
                        for d in range(dim)
                    ]
                    values[i] = objective(simplex[i])

    best_index = min(range(dim + 1), key=lambda i: values[i])
    return simplex[best_index], values[best_index]
