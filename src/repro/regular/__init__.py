"""Regular sets: Definitions 1-3 of the paper.

* Definition 1 — m-regular / biangular sets (:mod:`regular_set`);
* Definition 2 — the regular set ``reg(P)`` of a configuration and the
  center ``c(P)`` (:mod:`config_regular`);
* Definition 3 — ε-shifted regular sets (:mod:`shifted`).
"""

from .config_regular import RegularSet, config_center, regular_set_of
from .regular_set import (
    ANGLE_TOL,
    RegularGeometry,
    check_regular_at,
    find_regular,
    is_regular,
)
from .shifted import (
    MIN_SHIFT,
    RADIUS_TOL,
    ShiftedRegularSet,
    find_shifted_regular,
    regular_set_at,
)

__all__ = [
    "ANGLE_TOL",
    "MIN_SHIFT",
    "RADIUS_TOL",
    "RegularGeometry",
    "RegularSet",
    "ShiftedRegularSet",
    "check_regular_at",
    "config_center",
    "find_regular",
    "find_shifted_regular",
    "is_regular",
    "regular_set_at",
    "regular_set_of",
]
