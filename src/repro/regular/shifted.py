"""Definition 3: epsilon-shifted regular sets.

A configuration contains an ε-shifted-m-regular set when exactly one robot
``r`` — one of the closest to the center — stands a small angle off the
position ``r'`` that would complete a regular set: replacing ``r`` by
``r'`` yields a configuration containing a regular set (Definition 2), the
angular offset is ``ε * alpha_min(P')`` with ``0 < ε <= 1/4``, and the
shift *decreases* the minimum angle of the shifted robot (condition (b)),
which is what encodes the direction the robot committed to.

Detection splits into two cases:

* ``reg(P') = P'`` (the *whole* configuration is a shifted regular set):
  the center is unknown and is recovered by fitting the "regular grid
  minus one direction" model to ``P - {r}`` numerically, then polished to
  the exact Weber point of the completed set;
* ``reg(P')`` is a proper subset: the center is necessarily ``c(P')``,
  the center of the smallest enclosing circle, known exactly.

In both cases candidate virtual positions ``r'`` are generated from
angular grids through the other robots and then fully verified, so false
positives cannot survive; Theorem 1 (uniqueness for n >= 7) is exercised
by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from ..geometry import (
    Vec2,
    angmin,
    direction_angle,
    min_angle,
    min_angle_at,
    norm_angle,
    smallest_enclosing_circle,
    weber_point,
    without_point,
)
from ..geometry.tolerance import approx_eq, norm_angle_signed
from ..model.views import view_order
from ..geometry import point_holds_sec, without_points, contains_point
from .config_regular import RegularSet, _coherent
from .optimize import nelder_mead
from .regular_set import ANGLE_TOL, WEBER_TOL, check_regular_at

#: Tolerance on radii equalities (configurations are unit-scale).
RADIUS_TOL = 1e-5

#: Minimum detectable shift angle (radians); below this the configuration
#: is treated as plain regular.
MIN_SHIFT = 5e-5


@dataclass(frozen=True)
class ShiftedRegularSet:
    """An ε-shifted regular set found in a configuration.

    Attributes:
        shifted_robot: the robot standing off the regular grid.
        virtual_position: ``r'``, the grid position completing the set.
        epsilon: the shift ``ε`` in (0, 1/4].
        members: the robots of ``reg(P)`` (associated set with ``r'``
            replaced back by the shifted robot).
        associated: ``reg(P')``, the completed regular set.
        center: the set's center.
        whole: whether the shifted regular set is the entire configuration.
    """

    shifted_robot: Vec2
    virtual_position: Vec2
    epsilon: float
    members: tuple[Vec2, ...]
    associated: RegularSet
    center: Vec2
    whole: bool

    def min_grid_angle(self) -> float:
        """``alpha_min`` of the completed configuration ``P'``."""
        return self.associated.geometry.min_gap()


def regular_set_at(
    points: Sequence[Vec2], center: Vec2, tol: float = ANGLE_TOL
) -> RegularSet | None:
    """Definition 2 restricted to a *known* center (proper-subset case).

    Runs the ``Q_i`` greatest-view sequence about ``center`` and returns
    the largest coherent regular subset, without attempting the
    whole-configuration (unknown-center) check.
    """
    if contains_point(points, center):
        return None
    ordered = view_order(points, center)
    pts = list(points)
    eligible = [p for p, _ in ordered if not point_holds_sec(pts, p)]
    best: RegularSet | None = None
    for i in range(2, len(eligible) + 1):
        subset = eligible[:i]
        geometry = check_regular_at(subset, center, tol)
        if geometry is None:
            continue
        rest = without_points(points, subset)
        if not rest:
            continue
        if not _coherent(rest, center, geometry, tol):
            continue
        best = RegularSet(tuple(subset), geometry, False)
    return best


def find_shifted_regular(
    points: Sequence[Vec2], tol: float = ANGLE_TOL
) -> ShiftedRegularSet | None:
    """Detect an ε-shifted regular set in the configuration (Definition 3)."""
    kernel = _KERNELS.find_shifted_regular
    if kernel is not None:
        return kernel(points, tol)
    return _find_shifted_regular_impl(points, tol)


def _find_shifted_regular_impl(
    points: Sequence[Vec2], tol: float
) -> ShiftedRegularSet | None:
    """The scalar detector body (kernel dispatch lives above)."""
    n = len(points)
    if n < 3:
        return None

    # --- proper-subset case: center is the SEC center, known exactly. ---
    sec_center = smallest_enclosing_circle(points).center
    result = _detect_with_center(points, sec_center, tol)
    if result is not None:
        return result

    # --- whole-configuration case: fit the center numerically. ---
    return _detect_whole(points, tol)


# ----------------------------------------------------------------------
# Proper-subset case
# ----------------------------------------------------------------------
def _detect_with_center(
    points: Sequence[Vec2], center: Vec2, tol: float
) -> ShiftedRegularSet | None:
    if contains_point(points, center):
        return None
    d_min = min(p.dist(center) for p in points)
    if d_min <= RADIUS_TOL:
        return None
    closest = [p for p in points if approx_eq(p.dist(center), d_min, RADIUS_TOL)]
    for r in closest:
        rest = without_point(points, r)
        for theta in _grid_candidates(rest, r, center, tol):
            r_prime = center + Vec2.polar(r.dist(center), theta)
            found = _verify(points, r, r_prime, tol)
            if found is not None:
                return found
    return None


def _grid_candidates(
    rest: Sequence[Vec2], r: Vec2, center: Vec2, tol: float
) -> list[float]:
    """Candidate directions for ``r'`` from angular grids through others."""
    theta_r = direction_angle(center, r)
    n = len(rest) + 1
    out: list[float] = []
    for m in range(2, n + 1):
        spacing = 2.0 * math.pi / m
        for q in rest:
            theta_q = direction_angle(center, q)
            k = round(norm_angle_signed(theta_r - theta_q) / spacing)
            theta = norm_angle(theta_q + k * spacing)
            delta = _ang_dist(theta, theta_r)
            if delta <= MIN_SHIFT or delta > spacing / 4.0 + 10 * tol:
                continue
            if _grid_support(rest, center, theta, spacing, tol) < m - 1:
                continue
            if not any(_ang_dist(theta, seen) <= tol for seen in out):
                out.append(theta)
    return out


def _grid_support(
    rest: Sequence[Vec2], center: Vec2, origin: float, spacing: float, tol: float
) -> int:
    """Number of distinct grid directions occupied by robots of ``rest``."""
    cells: set[int] = set()
    m = round(2.0 * math.pi / spacing)
    for q in rest:
        theta = direction_angle(center, q)
        offset = norm_angle(theta - origin)
        k = round(offset / spacing)
        if abs(offset - k * spacing) <= 10 * tol or abs(
            offset - k * spacing
        ) >= 2.0 * math.pi - 10 * tol:
            cells.add(k % m)
    return len(cells)


def _ang_dist(a: float, b: float) -> float:
    d = norm_angle(a - b)
    return min(d, 2.0 * math.pi - d)


# ----------------------------------------------------------------------
# Whole-configuration case
# ----------------------------------------------------------------------
def _detect_whole(
    points: Sequence[Vec2], tol: float
) -> ShiftedRegularSet | None:
    n = len(points)
    approx_center = weber_point(points, tol=WEBER_TOL)
    d_min = min(p.dist(approx_center) for p in points)
    if d_min <= RADIUS_TOL:
        return None
    candidates = [
        p for p in points if p.dist(approx_center) <= 1.25 * d_min
    ]
    scale = max(p.dist(approx_center) for p in points) or 1.0
    for r in candidates:
        rest = without_point(points, r)
        if not _whole_prefilter(points, rest, r, approx_center, n):
            continue
        start = weber_point(rest, tol=WEBER_TOL)
        for residual in (_equiangular_minus_one, _biangular_minus_one):
            best, value = nelder_mead(
                lambda c: residual(rest, Vec2(c[0], c[1]), n),
                [start.x, start.y],
                step=0.02 * scale,
                max_iter=300,
            )
            if value > (10 * tol) ** 2 * n:
                continue
            center = Vec2(best[0], best[1])
            theta = _missing_direction(rest, center, n)
            if theta is None:
                continue
            r_prime = center + Vec2.polar(r.dist(center), theta)
            # Polish: the exact center of the completed set is its Weber
            # point; recompute the missing direction from it once.
            exact = weber_point(list(rest) + [r_prime], tol=WEBER_TOL)
            theta2 = _missing_direction(rest, exact, n)
            if theta2 is not None:
                r_prime = exact + Vec2.polar(r.dist(exact), theta2)
            found = _verify(points, r, r_prime, tol)
            if found is not None:
                return found
    return None


def _whole_prefilter(
    points: Sequence[Vec2],
    rest: Sequence[Vec2],
    r: Vec2,
    approx_center: Vec2,
    n: int,
) -> bool:
    """Cheap necessary test before the expensive center fit.

    Evaluated at the Weber point of the *full* configuration, which for a
    truly shifted regular set sits close to the real center:

    * ``rest`` must roughly fit the grid-minus-one model (random
      configurations are far off), and
    * ``r`` must stand detectably off the grid — during the election the
      configuration is an exact regular set, every candidate completes to
      a zero shift, and the fit must not even be attempted.
    """
    residual = min(
        _equiangular_minus_one(rest, approx_center, n),
        _biangular_minus_one(rest, approx_center, n),
    )
    if residual > 0.5:
        return False
    theta = _missing_direction(rest, approx_center, n)
    if theta is None:
        return False
    r_theta = direction_angle(approx_center, r)
    return _ang_dist(theta, r_theta) > MIN_SHIFT / 2.0


def _sorted_gaps(rest: Sequence[Vec2], center: Vec2) -> tuple[list[float], list[float]] | None:
    """(sorted directions, cyclic gaps) of ``rest`` about ``center``."""
    directions: list[float] = []
    for p in rest:
        if p.approx_eq(center, 1e-9):
            return None
        directions.append(direction_angle(center, p))
    directions.sort()
    gaps = [
        norm_angle(directions[(i + 1) % len(directions)] - directions[i])
        for i in range(len(directions) - 1)
    ]
    gaps.append(2.0 * math.pi - sum(gaps))
    return directions, gaps


def _equiangular_minus_one(rest: Sequence[Vec2], center: Vec2, n: int) -> float:
    """Residual of the "n equiangular directions minus one" model."""
    data = _sorted_gaps(rest, center)
    if data is None:
        return math.inf
    _, gaps = data
    alpha = 2.0 * math.pi / n
    big = max(range(len(gaps)), key=lambda i: gaps[i])
    total = (gaps[big] - 2.0 * alpha) ** 2
    total += sum((g - alpha) ** 2 for i, g in enumerate(gaps) if i != big)
    return total


def _biangular_minus_one(rest: Sequence[Vec2], center: Vec2, n: int) -> float:
    """Residual of the "biangular (alternating) minus one" model."""
    if n < 6 or n % 2 != 0:
        return math.inf
    data = _sorted_gaps(rest, center)
    if data is None:
        return math.inf
    _, gaps = data
    merged_target = 4.0 * math.pi / n  # alpha + beta
    best = math.inf
    k = len(gaps)
    for j in range(k):
        rem = [gaps[(j + 1 + i) % k] for i in range(k - 1)]
        evens = rem[0::2]
        odds = rem[1::2]
        if not evens or not odds:
            continue
        a = sum(evens) / len(evens)
        b = sum(odds) / len(odds)
        total = (gaps[j] - merged_target) ** 2
        total += (a + b - merged_target) ** 2
        total += sum((g - a) ** 2 for g in evens)
        total += sum((g - b) ** 2 for g in odds)
        best = min(best, total)
    return best


def _missing_direction(
    rest: Sequence[Vec2], center: Vec2, n: int
) -> float | None:
    """Direction of the missing grid half-line, from the fitted center.

    Works for both models: locate the anomalous (merged) gap and place the
    missing direction so that the gap splits into values consistent with
    its cyclic neighbours.
    """
    data = _sorted_gaps(rest, center)
    if data is None:
        return None
    directions, gaps = data
    k = len(gaps)
    if k < 2:
        return None
    big = max(range(k), key=lambda i: gaps[i])
    start = directions[big]
    merged = gaps[big]
    # Expected next gap continues the alternation: it equals the gap two
    # positions before the merged one (cyclically).  For equiangular sets
    # all small gaps are equal so this reduces to start + alpha.
    prev2 = gaps[(big - 1) % k]
    candidate = merged - prev2
    if candidate <= 0 or candidate >= merged:
        candidate = merged / 2.0
    return norm_angle(start + candidate)


# ----------------------------------------------------------------------
# Verification (shared)
# ----------------------------------------------------------------------
def _verify(
    points: Sequence[Vec2], r: Vec2, r_prime: Vec2, tol: float
) -> ShiftedRegularSet | None:
    """Full Definition 3 check for a candidate (r, r')."""
    p_prime = without_point(points, r)
    p_prime.append(r_prime)

    # reg(P'): whole-configuration regularity first (its center is the
    # Weber point, exact for truly regular sets), then the subset case.
    whole_center = weber_point(p_prime, tol=WEBER_TOL)
    geometry = check_regular_at(p_prime, whole_center, 10 * tol)
    if geometry is not None:
        associated = RegularSet(tuple(p_prime), geometry, True)
    else:
        center_sub = smallest_enclosing_circle(p_prime).center
        associated = regular_set_at(p_prime, center_sub, tol)
        if associated is None or not associated.contains(r_prime):
            return None
    center = associated.geometry.center

    # (c) |r| = |r'| = min over P of the distance to the center.
    d_min = min(p.dist(center) for p in points)
    if not approx_eq(r.dist(center), d_min, 10 * RADIUS_TOL):
        return None
    if not approx_eq(r.dist(center), r_prime.dist(center), 10 * RADIUS_TOL):
        return None

    # (a) shift angle = eps * alpha_min(P') with 0 < eps <= 1/4.
    alpha_min = min_angle(center, p_prime)
    if not math.isfinite(alpha_min) or alpha_min <= 0:
        return None
    shift_angle = angmin(r, center, r_prime)
    if shift_angle <= MIN_SHIFT:
        return None
    epsilon = shift_angle / alpha_min
    if epsilon > 0.25 + 1e-4:
        return None

    # (b) the shift decreases the shifted robot's minimum angle.
    if not min_angle_at(center, r, list(points)) < min_angle_at(
        center, r_prime, p_prime
    ) + tol:
        return None

    members = tuple(without_point(associated.members, r_prime) + [r])
    return ShiftedRegularSet(
        shifted_robot=r,
        virtual_position=r_prime,
        epsilon=epsilon,
        members=members,
        associated=associated,
        center=center,
        whole=associated.whole,
    )
