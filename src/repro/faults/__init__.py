"""Fault injection and adversarial scheduling (``repro.faults``).

The composable robustness layer: adversarial activation policies for the
ASYNC scheduler (:mod:`repro.faults.policies`) and engine-level fault
models — crash-stop robots, adversarial non-rigid move truncation,
bounded sensor noise (:mod:`repro.faults.models`).  Both plug into the
existing batch surface: policies ride in a scenario's scheduler
component (``("async", {"policy": "starve"})``), fault models in its
``faults=`` field, so fault scenarios run unchanged through the parallel
pool, the journal, the profiler and the CLI.
"""

from .models import (
    BoundFaults,
    CrashStop,
    FaultPlan,
    MotionTruncation,
    SensorNoise,
    parse_fault_specs,
)
from .policies import (
    POLICY_BUILDERS,
    ActivationPolicy,
    GreedyAdversary,
    MaximizePendingMoves,
    RandomActivation,
    StaleSnapshotMaximizer,
    StarveSelected,
    build_policy,
    register_policy,
)

__all__ = [
    "ActivationPolicy",
    "BoundFaults",
    "CrashStop",
    "FaultPlan",
    "GreedyAdversary",
    "MaximizePendingMoves",
    "MotionTruncation",
    "POLICY_BUILDERS",
    "RandomActivation",
    "SensorNoise",
    "StaleSnapshotMaximizer",
    "StarveSelected",
    "build_policy",
    "parse_fault_specs",
    "register_policy",
]
