"""Engine-level fault models and the serializable fault plan.

Three fault models, matching the variants the related APF literature
treats as first-class (crash faults, non-rigid movement, inaccurate
sensors):

* :class:`CrashStop` — a seeded subset of robots halts forever after a
  seeded trigger step (crash-stop failures);
* :class:`MotionTruncation` — the adversary stops every movement at the
  harshest point the model permits: exactly δ of progress per committed
  move (or uniformly inside the permitted range in ``random`` mode);
* :class:`SensorNoise` — bounded Gaussian or fixed-offset perturbation
  of every *other* robot's observed position during Look, exercising the
  tolerant geometry predicates (the observer still sees itself exactly,
  so computed paths start at the true position).

A :class:`FaultPlan` bundles the models and is described purely by plain
data (``FaultPlan.from_spec({"crash": {"count": 1}})``), so it rides
inside a :class:`~repro.analysis.scenarios.ScenarioSpec` across process
boundaries and into the run journal's metadata.  Binding a plan to a run
(:meth:`FaultPlan.bind`) derives every random draw — victims, trigger
steps, noise — from the run seed plus the plan salt, independently of
the robot/frame/scheduler RNG streams, so enabling a fault model never
perturbs the underlying simulation randomness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..geometry import Vec2

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulation

__all__ = [
    "BoundFaults",
    "CrashStop",
    "FaultPlan",
    "MotionTruncation",
    "SensorNoise",
    "parse_fault_specs",
]


@dataclass(frozen=True)
class CrashStop:
    """``count`` robots halt forever at seeded steps inside ``window``."""

    count: int = 1
    window: tuple[int, int] = (0, 20_000)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("crash count must be >= 1")
        lo, hi = self.window
        if lo < 0 or hi < lo:
            raise ValueError("crash window must satisfy 0 <= lo <= hi")


@dataclass(frozen=True)
class MotionTruncation:
    """Adversarial stop-points for non-rigid movement.

    ``min-delta`` ends every committed move at exactly the δ floor the
    engine enforces (the harshest permitted adversary); ``random`` stops
    uniformly between the floor and the destination.  ``factor`` scales
    the stop point in ``min-delta`` mode (still clamped to ≥ δ by the
    engine, so values below 1 cannot violate the model).
    """

    mode: str = "min-delta"
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("min-delta", "random"):
            raise ValueError("truncation mode must be 'min-delta' or 'random'")
        if self.factor <= 0.0:
            raise ValueError("truncation factor must be > 0")


@dataclass(frozen=True)
class SensorNoise:
    """Bounded perturbation of observed positions during Look.

    ``gaussian`` draws an isotropic normal offset with std ``sigma``;
    ``offset`` draws a fixed-magnitude ``sigma`` offset in a random
    direction.  Either way the perturbation norm is clipped to ``bound``
    (default ``3 * sigma``), keeping the noise bounded as the tolerant
    predicates assume.
    """

    kind: str = "gaussian"
    sigma: float = 1e-6
    bound: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("gaussian", "offset"):
            raise ValueError("sensor-noise kind must be 'gaussian' or 'offset'")
        if self.sigma < 0.0:
            raise ValueError("sensor-noise sigma must be >= 0")
        if self.bound is not None and self.bound < 0.0:
            raise ValueError("sensor-noise bound must be >= 0")

    def effective_bound(self) -> float:
        return 3.0 * self.sigma if self.bound is None else self.bound


#: Spec-dict key → model dataclass.
FAULT_MODELS = {
    "crash": CrashStop,
    "truncate": MotionTruncation,
    "sensor": SensorNoise,
}


@dataclass(frozen=True)
class FaultPlan:
    """The fault models active for a scenario, as shareable plain data."""

    crash: CrashStop | None = None
    truncation: MotionTruncation | None = None
    sensor: SensorNoise | None = None
    salt: int = 0

    def is_empty(self) -> bool:
        return self.crash is None and self.truncation is None and self.sensor is None

    # -- serialisation --------------------------------------------------
    @classmethod
    def from_spec(cls, spec: "dict | FaultPlan | None") -> "FaultPlan | None":
        """Build a plan from a ``{model-name: params}`` dict (or pass
        through an existing plan).  ``None`` and ``{}`` mean no faults."""
        if spec is None:
            return None
        if isinstance(spec, FaultPlan):
            return None if spec.is_empty() else spec
        if not isinstance(spec, dict):
            raise ValueError(f"fault spec must be a dict, got {type(spec).__name__}")
        if not spec:
            return None
        known = set(FAULT_MODELS) | {"salt"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown fault model(s) {sorted(unknown)}; known: "
                f"{sorted(FAULT_MODELS)}"
            )
        kwargs: dict = {"salt": int(spec.get("salt", 0))}
        for key, model_cls in FAULT_MODELS.items():
            if key not in spec:
                continue
            params = dict(spec[key] or {})
            if "window" in params:
                params["window"] = tuple(int(v) for v in params["window"])
            field = "truncation" if key == "truncate" else key
            kwargs[field] = model_cls(**params)
        return cls(**kwargs)

    def to_spec(self) -> dict:
        """The plain-data form accepted by :meth:`from_spec`."""
        spec: dict = {}
        if self.crash is not None:
            spec["crash"] = {
                "count": self.crash.count,
                "window": list(self.crash.window),
            }
        if self.truncation is not None:
            spec["truncate"] = {
                "mode": self.truncation.mode,
                "factor": self.truncation.factor,
            }
        if self.sensor is not None:
            spec["sensor"] = {
                "kind": self.sensor.kind,
                "sigma": self.sensor.sigma,
                "bound": self.sensor.bound,
            }
        if self.salt:
            spec["salt"] = self.salt
        return spec

    # -- binding --------------------------------------------------------
    def bind(self, n: int, seed: int) -> "BoundFaults":
        """Per-run state: crash schedule and noise RNG for ``seed``."""
        return BoundFaults(self, n, seed)


class BoundFaults:
    """A :class:`FaultPlan` bound to one run's robot count and seed."""

    def __init__(self, plan: FaultPlan, n: int, seed: int) -> None:
        self.plan = plan
        # Seeding with a string hashes it through SHA-512, which is
        # deterministic across processes (unlike PYTHONHASHSEED-dependent
        # object hashing) — required for parallel == serial equivalence.
        rng = random.Random(f"repro.faults:{plan.salt}:{seed}")
        self.crash_steps: dict[int, int] = {}
        if plan.crash is not None:
            lo, hi = plan.crash.window
            victims = rng.sample(range(n), min(plan.crash.count, n))
            self.crash_steps = {v: rng.randint(lo, hi) for v in sorted(victims)}
        self._noise_rng = random.Random(rng.getrandbits(63))
        self._trunc_rng = random.Random(rng.getrandbits(63))

    # -- crash-stop -----------------------------------------------------
    def tick(self, sim: "Simulation") -> None:
        """Trigger any crashes whose step has arrived; freeze the victims."""
        if not self.crash_steps:
            return
        from ..sim.robot import Phase  # local import to avoid cycles

        for robot_id, crash_step in self.crash_steps.items():
            robot = sim.robots[robot_id]
            if robot.crashed or sim.step_count < crash_step:
                continue
            # The robot halts forever wherever it stands: any committed
            # path and pending snapshot die with it, and it reads as a
            # permanently static (idle) point to the termination check.
            robot.crashed = True
            robot.phase = Phase.IDLE
            robot.path = None
            robot.snapshot = None
            robot.frame = None
            robot.progress = 0.0
            robot.move_chunks = 0

    # -- sensor noise ---------------------------------------------------
    def observe(self, observer_id: int, points: list[Vec2]) -> list[Vec2]:
        """Perturb every *other* robot's observed position, bounded."""
        sensor = self.plan.sensor
        if sensor is None or sensor.sigma == 0.0:
            return points
        rng = self._noise_rng
        bound = sensor.effective_bound()
        noisy = list(points)
        for i, p in enumerate(noisy):
            if i == observer_id:
                continue  # a robot always locates itself exactly
            if sensor.kind == "gaussian":
                dx, dy = rng.gauss(0.0, sensor.sigma), rng.gauss(0.0, sensor.sigma)
            else:
                angle = rng.uniform(0.0, 2.0 * math.pi)
                dx, dy = sensor.sigma * math.cos(angle), sensor.sigma * math.sin(angle)
            norm = math.hypot(dx, dy)
            if norm > bound > 0.0:
                scale = bound / norm
                dx, dy = dx * scale, dy * scale
            elif bound == 0.0:
                dx = dy = 0.0
            noisy[i] = Vec2(p.x + dx, p.y + dy)
        return noisy

    # -- adversarial truncation -----------------------------------------
    def truncate_move(
        self,
        delta: float,
        progress: float,
        total: float,
        new_progress: float,
        finishing: bool,
    ) -> tuple[float, bool]:
        """Adversarial stop-point for one movement advance.

        Returns the (possibly reduced) target progress and the finishing
        flag.  The returned progress may sit below the δ floor — the
        engine clamps it afterwards, so the model's "at least δ unless
        the destination is closer" guarantee is enforced in exactly one
        place.
        """
        trunc = self.plan.truncation
        if trunc is None:
            return new_progress, finishing
        if trunc.mode == "min-delta":
            # Stop as early as permitted: the engine's floor lifts this
            # to min(δ * factor capped at δ…total, destination).
            target = min(total, max(progress, delta * trunc.factor))
            return min(new_progress, target), True
        floor = min(delta, total)
        stop = self._trunc_rng.uniform(min(floor, total), total)
        return min(new_progress, max(progress, stop)), True


# ----------------------------------------------------------------------
# CLI parsing
# ----------------------------------------------------------------------
def _parse_value(raw: str):
    """``"3"`` → 3, ``"1e-6"`` → 1e-6, ``"10..500"`` → (10, 500), else str."""
    if ".." in raw:
        lo, _, hi = raw.partition("..")
        return [int(lo), int(hi)]
    for conv in (int, float):
        try:
            return conv(raw)
        except ValueError:
            continue
    return raw


def parse_fault_specs(items: "list[str] | tuple[str, ...]") -> dict:
    """Parse CLI ``--faults`` items into a :meth:`FaultPlan.from_spec` dict.

    Each item is ``name`` or ``name:key=value[,key=value...]``, e.g.
    ``crash``, ``crash:count=2,window=100..5000``, ``sensor:sigma=1e-6``.
    The result is validated by building the plan, so a bad model name or
    parameter fails here rather than deep inside a worker process.
    """
    spec: dict = {}
    for item in items:
        name, _, rest = item.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"empty fault name in {item!r}")
        if name in spec:
            raise ValueError(f"duplicate fault model {name!r}")
        params: dict = {}
        if rest:
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad fault parameter {pair!r} in {item!r} "
                        "(expected key=value)"
                    )
                params[key.strip()] = _parse_value(value.strip())
        spec[name] = params
    try:
        FaultPlan.from_spec(spec)  # validate eagerly
    except TypeError as exc:
        # An unknown parameter name surfaces as the dataclass TypeError;
        # normalise to ValueError so CLI error handling stays uniform.
        raise ValueError(str(exc)) from None
    return spec
