"""Adversarial activation policies for the ASYNC scheduler.

The paper's theorems quantify over a *fully adversarial* ASYNC scheduler,
but the stock :class:`~repro.scheduler.asynchronous.AsyncScheduler` only
samples benign random activations.  An :class:`ActivationPolicy` replaces
the random robot choice with a strategy that actively works against
convergence while staying inside the model:

* it may only choose *which* robot performs its next phase-appropriate
  atomic action (the engine enforces legality and the δ floor);
* fairness is still guaranteed — the scheduler's starvation bound
  overrides the policy, so every robot acts infinitely often;
* termination must stay *detectable*: a policy that re-activates robots
  forever would keep the configuration from ever being simultaneously
  idle, hiding a terminal configuration from the engine's probe.  The
  base class therefore drains in-flight cycles once nothing has moved
  for a long window (see :meth:`ActivationPolicy.maybe_drain`).

Policies are registered by name so scenario specs and the CLI can refer
to them as plain data (``("async", {"policy": "starve"})``,
``--adversary starve``).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

from ..geometry import smallest_enclosing_circle
from ..sim.robot import Phase, RobotBody

if TYPE_CHECKING:  # pragma: no cover
    from ..scheduler.asynchronous import AsyncScheduler

#: ``choose`` returns the robot to advance plus a *force* flag: forced
#: robots finish their move in one chunk (the scheduler's laggard path).
Choice = "tuple[RobotBody, bool]"

POLICY_BUILDERS: dict[str, Callable[..., "ActivationPolicy"]] = {}


def register_policy(name: str):
    """Register an activation-policy builder ``fn(**params) -> policy``."""

    def decorator(fn):
        if name in POLICY_BUILDERS:
            raise ValueError(f"policy {name!r} is already registered")
        POLICY_BUILDERS[name] = fn
        return fn

    return decorator


def build_policy(spec) -> "ActivationPolicy":
    """Build a policy from ``"name"`` or ``("name", params)``."""
    if isinstance(spec, ActivationPolicy):
        return spec
    if isinstance(spec, str):
        name, params = spec, {}
    else:
        name, params = spec
        params = dict(params or {})
    try:
        builder = POLICY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation policy {name!r}; known: {sorted(POLICY_BUILDERS)}"
        ) from None
    return builder(**params)


class ActivationPolicy:
    """Chooses which robot the ASYNC adversary advances next.

    Subclasses implement :meth:`pick`; the public :meth:`choose` first
    consults the quiescence drain so terminal configurations remain
    detectable under every policy.
    """

    name = "policy"

    #: Drain in-flight cycles after ``max(32, factor * n)`` consecutive
    #: choices during which no robot was moving.
    drain_after_factor = 8

    def __init__(self) -> None:
        self._static_choices = 0

    def reset(self, n: int) -> None:
        """Prepare for a fresh run over ``n`` robots."""
        self._static_choices = 0

    # ------------------------------------------------------------------
    def choose(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        drained = self.maybe_drain(robots, sched.rng)
        if drained is not None:
            return drained, False
        return self.pick(robots, step, sched)

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def maybe_drain(
        self, robots: Sequence[RobotBody], rng: random.Random
    ) -> RobotBody | None:
        """A pending robot to drain once the configuration has gone quiet.

        The engine only detects a terminal configuration when *every*
        robot is idle at once.  An adversary that immediately re-observes
        idle robots would keep some robot mid-cycle forever, turning
        every terminated run into a ``max_steps`` failure — behaviour the
        model does not grant it (termination is a property of the
        configuration, not of the schedule).  Once no robot has been
        moving for a long window the policy therefore stops opening new
        cycles and computes pending snapshots until everyone is idle; any
        resulting movement resets the window and re-arms the adversary.
        """
        if any(r.phase is Phase.MOVING for r in robots):
            self._static_choices = 0
            return None
        self._static_choices += 1
        if self._static_choices <= max(32, self.drain_after_factor * len(robots)):
            return None
        observed = [r for r in robots if r.phase is Phase.OBSERVED]
        if observed:
            return rng.choice(observed)
        return None


@register_policy("random")
class RandomActivation(ActivationPolicy):
    """The benign random policy — bit-for-bit the scheduler's default.

    Replicates :meth:`AsyncScheduler.next_action`'s stock loop with the
    identical RNG call sequence, so ``AsyncScheduler(seed, policy=
    RandomActivation())`` produces the exact action stream of
    ``AsyncScheduler(seed)`` (pinned by the equivalence tests).
    """

    name = "random"

    def choose(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        # No drain: random activation reaches all-idle states by itself,
        # and draining would consume extra RNG draws.
        return self.pick(robots, step, sched)

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        rng = sched.rng
        for _ in range(64):
            robot = rng.choice(list(robots))
            if robot.phase is Phase.OBSERVED and (
                rng.random() < sched.compute_delay_prob
            ):
                continue  # let the snapshot go stale
            if robot.phase is Phase.MOVING and rng.random() < sched.pause_prob:
                continue  # pause mid-move
            return robot, False
        # Everybody got skipped by the random knobs — just act somewhere.
        return rng.choice(list(robots)), True


@register_policy("starve")
class StarveSelected(ActivationPolicy):
    """Starve the robot the algorithm most depends on.

    ψ_RSB funnels progress through a single *selected* robot that dives
    toward the centre of the enclosing circle; the policy's proxy for it
    is the robot currently closest to the SEC centre.  That robot is
    never activated voluntarily — it moves only when the scheduler's
    fairness bound forces it — while everyone else is activated randomly
    and keeps acting on a world whose linchpin robot is frozen.
    """

    name = "starve"

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        center = smallest_enclosing_circle([r.position for r in robots]).center
        victim = min(robots, key=lambda r: r.position.dist(center))
        others = [r for r in robots if r is not victim]
        if not others:
            return victim, False
        return sched.rng.choice(others), False


@register_policy("max-pending")
class MaximizePendingMoves(ActivationPolicy):
    """Keep as many robots as possible mid-move simultaneously.

    Snapshots taken while many robots are between their committed paths'
    endpoints are the hardest inputs the model allows: commit every
    observed robot to a path first, open new cycles second, and only
    advance a moving robot when nobody can be newly committed.
    """

    name = "max-pending"

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        observed = [r for r in robots if r.phase is Phase.OBSERVED]
        if observed:
            return sched.rng.choice(observed), False
        idle = [r for r in robots if r.phase is Phase.IDLE]
        if idle:
            return sched.rng.choice(idle), False
        return sched.rng.choice(list(robots)), False


@register_policy("stale")
class StaleSnapshotMaximizer(ActivationPolicy):
    """Maximise the staleness of every snapshot that reaches a Compute.

    First make every idle robot take its snapshot, then advance all
    movement — invalidating those snapshots as far as the interleaving
    allows — and only then let robots compute, oldest snapshot first.
    """

    name = "stale"

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        idle = [r for r in robots if r.phase is Phase.IDLE]
        if idle:
            return sched.rng.choice(idle), False
        moving = [r for r in robots if r.phase is Phase.MOVING]
        if moving:
            return sched.rng.choice(moving), False
        observed = [r for r in robots if r.phase is Phase.OBSERVED]
        return min(observed, key=lambda r: r.last_action_step), False


@register_policy("greedy")
class GreedyAdversary(ActivationPolicy):
    """Seeded greedy adversary: score every legal choice, pick the worst.

    Each step the policy scores the damage of advancing each robot —
    observing amid motion, computing on maximally stale data — with a
    small seeded jitter for tie-breaking, and takes the highest-scoring
    robot.  ``samples`` restricts scoring to a random subset, trading
    viciousness for speed on large swarms.
    """

    name = "greedy"

    def __init__(self, samples: int | None = None) -> None:
        super().__init__()
        if samples is not None and samples < 1:
            raise ValueError("samples must be >= 1")
        self.samples = samples

    def pick(
        self, robots: Sequence[RobotBody], step: int, sched: "AsyncScheduler"
    ) -> Choice:
        rng = sched.rng
        pool = list(robots)
        if self.samples is not None and self.samples < len(pool):
            pool = rng.sample(pool, self.samples)
        moving_now = sum(1 for r in robots if r.phase is Phase.MOVING)

        def damage(robot: RobotBody) -> float:
            jitter = 0.1 * rng.random()
            if robot.phase is Phase.IDLE:
                # A snapshot taken while others are mid-move is poison.
                return 1.0 + 0.5 * moving_now + jitter
            if robot.phase is Phase.OBSERVED:
                staleness = step - robot.last_action_step
                return 2.0 + 0.01 * staleness + jitter
            # Advancing a move tends to help convergence: lowest priority,
            # and prefer the robot already closest to finishing its move.
            return 0.5 - 0.01 * robot.move_chunks + jitter

        return max(pool, key=damage), False
