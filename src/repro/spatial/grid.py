"""Deterministic bucketed spatial index over exact coordinates.

:class:`PositionGrid` hashes points into square cells (``floor(x/cell)``,
``floor(y/cell)``) and answers disc / k-nearest-neighbour / tolerance-box
queries by scanning only the cells that can contain a match.  It exists
to make per-robot neighbour queries sublinear at swarm sizes — the LOOK
phase under limited visibility, the terminal probe's per-robot visible
sets, snapshot dedupe and the strict-invariant multiplicity check all
degenerate to O(n) scans per robot without it.

The house invariant applies: the grid is a *pure accelerator*.  Every
query evaluates the exact same floating-point predicate the brute-force
scan it replaces evaluates (``Vec2.dist_sq(center) <= radius * radius``
for discs, :meth:`Vec2.approx_eq` for tolerance boxes), and results come
back sorted ascending by point id — the order a brute-force loop over
``points[0..n)`` produces.  Cell coverage is conservative (the candidate
cell range is widened by one cell on every side), so pruning can never
drop a point the predicate accepts.  Consequently a grid-backed query is
bit-for-bit identical to its brute-force reference, which is what lets
the engines adopt the index with zero behavioural drift (pinned by
``tests/spatial/``).

Duplicate points (multiplicity stacks) are first-class: ids are stable
insertion indices, and co-located points simply share a bucket.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..geometry.point import Vec2
from ..geometry.tolerance import EPS

__all__ = ["PositionGrid", "dedupe_indexed"]


def _auto_cell(points: Sequence[Vec2]) -> float:
    """Default cell size: bounding-box scale over ``sqrt(n)``.

    Targets O(1) points per cell for roughly uniform configurations;
    any positive finite value is *correct* (only performance changes).
    """
    n = len(points)
    if n < 2:
        return 1.0
    min_x = min(p.x for p in points)
    max_x = max(p.x for p in points)
    min_y = min(p.y for p in points)
    max_y = max(p.y for p in points)
    span = max(max_x - min_x, max_y - min_y)
    if not math.isfinite(span) or span <= 0.0:
        return 1.0
    return max(span / math.sqrt(n), 1e-9)


class PositionGrid:
    """Bucketed index over a mutable set of points (see module doc).

    Args:
        points: initial points; their ids are ``0..len(points)-1`` in
            order.
        cell: cell edge length.  Defaults to a bounding-box heuristic;
            when the grid mainly serves disc queries of one radius
            (limited visibility), passing that radius keeps every query
            inside a 5x5 cell neighbourhood.
    """

    __slots__ = ("cell", "_inv", "_pts", "_rows", "_ncells", "_cell_of")

    def __init__(
        self,
        points: "Iterable[Vec2] | None" = None,
        cell: "float | None" = None,
    ) -> None:
        pts = list(points) if points is not None else []
        if cell is None:
            cell = _auto_cell(pts)
        if not (cell > 0.0) or not math.isfinite(cell):
            raise ValueError(f"cell size must be positive and finite, got {cell!r}")
        self.cell = float(cell)
        self._inv = 1.0 / self.cell
        self._pts: list[Vec2] = []
        # Cell table as nested int-keyed dicts (row index -> column
        # index -> bucket): int hashing and no per-probe tuple
        # allocation make box scans ~2x cheaper than a flat
        # (ix, iy)-keyed dict, and box scans are the query hot path.
        self._rows: dict[int, dict[int, list[int]]] = {}
        self._ncells = 0
        self._cell_of: list[tuple[int, int]] = []
        for p in pts:
            self.insert(p)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x * self._inv), math.floor(y * self._inv))

    def insert(self, p: Vec2) -> int:
        """Add a point; returns its (stable) id."""
        pid = len(self._pts)
        self._pts.append(p)
        key = self._key(p.x, p.y)
        self._cell_of.append(key)
        row = self._rows.setdefault(key[0], {})
        bucket = row.get(key[1])
        if bucket is None:
            row[key[1]] = [pid]
            self._ncells += 1
        else:
            bucket.append(pid)
        return pid

    def move(self, pid: int, p: Vec2) -> None:
        """Update point ``pid`` to a new position (incremental)."""
        old = self._cell_of[pid]
        self._pts[pid] = p
        key = self._key(p.x, p.y)
        if key != old:
            row = self._rows[old[0]]
            bucket = row[old[1]]
            bucket.remove(pid)
            if not bucket:
                del row[old[1]]
                self._ncells -= 1
                if not row:
                    del self._rows[old[0]]
            row = self._rows.setdefault(key[0], {})
            bucket = row.get(key[1])
            if bucket is None:
                row[key[1]] = [pid]
                self._ncells += 1
            else:
                bucket.append(pid)
            self._cell_of[pid] = key

    def __len__(self) -> int:
        return len(self._pts)

    def point(self, pid: int) -> Vec2:
        """The current position of point ``pid``."""
        return self._pts[pid]

    def points(self) -> list[Vec2]:
        """All points, in id order."""
        return list(self._pts)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _box_cells(
        self, min_x: float, max_x: float, min_y: float, max_y: float
    ) -> Iterable[list[int]]:
        """Buckets of every cell overlapping the box, widened by one cell.

        The +-1 widening absorbs any floating-point slack in the
        ``x * inv`` mapping, keeping coverage strictly conservative
        without per-boundary ulp reasoning.
        """
        ix_lo = math.floor(min_x * self._inv) - 1
        ix_hi = math.floor(max_x * self._inv) + 1
        iy_lo = math.floor(min_y * self._inv) - 1
        iy_hi = math.floor(max_y * self._inv) + 1
        # Degenerate guard: a box wider than the whole population is
        # cheaper as a full scan than as an empty-cell sweep.
        if (ix_hi - ix_lo + 1) * (iy_hi - iy_lo + 1) >= 4 * (self._ncells + 1):
            for row in self._rows.values():
                yield from row.values()
            return
        rows = self._rows
        for ix in range(ix_lo, ix_hi + 1):
            row = rows.get(ix)
            if not row:
                continue
            for iy in range(iy_lo, iy_hi + 1):
                bucket = row.get(iy)
                if bucket:
                    yield bucket

    def disc(self, center: Vec2, radius: float) -> list[int]:
        """Ids of points with ``dist_sq(center) <= radius * radius``.

        Bit-identical to ``[i for i, p in enumerate(points) if
        p.dist_sq(center) <= radius * radius]`` — same predicate, same
        ascending-id order.
        """
        r2 = radius * radius
        cx, cy = center.x, center.y
        pts = self._pts
        inv = self._inv
        ix_lo = math.floor((cx - radius) * inv) - 1
        ix_hi = math.floor((cx + radius) * inv) + 1
        iy_lo = math.floor((cy - radius) * inv) - 1
        iy_hi = math.floor((cy + radius) * inv) + 1
        rows = self._rows
        out: list[int] = []
        # The box scan of _box_cells and the Vec2.dist_sq predicate,
        # inlined (identical index bounds and float expressions, so
        # results stay bit-identical): disc is the per-Look hot path
        # under limited visibility, and generator resumption plus a
        # method call per candidate cost more than the distance test.
        if (ix_hi - ix_lo + 1) * (iy_hi - iy_lo + 1) >= 4 * (self._ncells + 1):
            row_iter: Iterable = rows.values()
            for row in row_iter:
                for bucket in row.values():
                    for pid in bucket:
                        p = pts[pid]
                        dx = p.x - cx
                        dy = p.y - cy
                        if dx * dx + dy * dy <= r2:
                            out.append(pid)
        else:
            for ix in range(ix_lo, ix_hi + 1):
                row = rows.get(ix)
                if not row:
                    continue
                for iy in range(iy_lo, iy_hi + 1):
                    bucket = row.get(iy)
                    if not bucket:
                        continue
                    for pid in bucket:
                        p = pts[pid]
                        dx = p.x - cx
                        dy = p.y - cy
                        if dx * dx + dy * dy <= r2:
                            out.append(pid)
        out.sort()
        return out

    def disc_points(self, center: Vec2, radius: float) -> list[Vec2]:
        """Positions (id order) of the points in the disc."""
        return [self._pts[i] for i in self.disc(center, radius)]

    def near_box(self, center: Vec2, eps: float = EPS) -> list[int]:
        """Ids of points with ``p.approx_eq(center, eps)`` (id order).

        The per-coordinate box predicate of :meth:`Vec2.approx_eq` —
        the multiplicity/dedupe tolerance test — evaluated verbatim.
        """
        cx, cy = center.x, center.y
        pts = self._pts
        out: list[int] = []
        # Inlined Vec2.approx_eq (identical expression, see disc()).
        for bucket in self._box_cells(cx - eps, cx + eps, cy - eps, cy + eps):
            for pid in bucket:
                p = pts[pid]
                if abs(p.x - cx) <= eps and abs(p.y - cy) <= eps:
                    out.append(pid)
        out.sort()
        return out

    def knn(
        self, center: Vec2, k: int, exclude: "int | None" = None
    ) -> list[int]:
        """Ids of the ``k`` nearest points, sorted by ``(dist_sq, id)``.

        Deterministic: exact squared distances, ties broken by id —
        identical to sorting the brute-force ``(dist_sq, id)`` pairs.
        ``exclude`` omits one id (the querying robot itself).
        """
        if k <= 0:
            return []
        total = len(self._pts) - (1 if exclude is not None else 0)
        if total <= 0:
            return []
        cx, cy = center.x, center.y
        ix0 = math.floor(cx * self._inv)
        iy0 = math.floor(cy * self._inv)
        rows = self._rows
        pts = self._pts
        cand: list[tuple[float, int]] = []
        ring = 0
        max_ring = None
        while True:
            # Ring `ring`: cells at Chebyshev cell-distance `ring` —
            # edge columns scan their full y span, interior columns only
            # the top/bottom cells.
            before = len(cand)
            for ix in range(ix0 - ring, ix0 + ring + 1):
                row = rows.get(ix)
                if not row:
                    continue
                if ring == 0 or ix == ix0 - ring or ix == ix0 + ring:
                    iys: Iterable[int] = range(iy0 - ring, iy0 + ring + 1)
                else:
                    iys = (iy0 - ring, iy0 + ring)
                for iy in iys:
                    bucket = row.get(iy)
                    if not bucket:
                        continue
                    for pid in bucket:
                        if pid == exclude:
                            continue
                        # Inlined Vec2.dist_sq (identical expression).
                        p = pts[pid]
                        dx = p.x - cx
                        dy = p.y - cy
                        cand.append((dx * dx + dy * dy, pid))
            if len(cand) >= min(k, total):
                cand.sort()
                # A cell on ring r is at least (r-1)*cell away (the -1
                # absorbs the center's offset inside its own cell plus
                # mapping slack), so once the kth candidate is closer
                # than the next ring's floor no unseen point can beat it.
                kth = cand[min(k, total) - 1][0]
                # Unseen cells are on rings >= ring + 1; a point there is
                # at least (ring - 1) * cell away (two cells of slack:
                # one for the center's offset inside its own cell, one
                # for float mapping slack).
                floor_dist = (ring - 1) * self.cell
                if (
                    floor_dist > 0.0 and floor_dist * floor_dist > kth
                ) or len(cand) >= total:
                    return [pid for _, pid in cand[:k]]
            if max_ring is None and len(cand) == before and rows:
                # An empty ring: bound the expansion by the occupied
                # area so a center far outside it cannot spin through
                # unbounded empty rings.  Computed lazily — typical
                # queries find candidates on every ring and terminate
                # through the distance rule without paying this scan.
                max_ring = max(
                    abs(min(rows) - ix0), abs(max(rows) - ix0),
                    max(
                        max(abs(min(row) - iy0), abs(max(row) - iy0))
                        for row in rows.values()
                    ),
                )
            if max_ring is not None and ring > max_ring:
                cand.sort()
                return [pid for _, pid in cand[:k]]
            ring += 1

    def nearest(self, center: Vec2, exclude: "int | None" = None) -> "int | None":
        """Id of the nearest point (ties by id), or ``None`` if empty."""
        found = self.knn(center, 1, exclude=exclude)
        return found[0] if found else None


def dedupe_indexed(points: Sequence[Vec2], eps: float = EPS) -> tuple[Vec2, ...]:
    """First-occurrence tolerant dedupe, grid-accelerated.

    Bit-identical to the quadratic reference::

        seen = []
        for p in points:
            if not any(p.approx_eq(q, eps) for q in seen):
                seen.append(p)

    Kept points land in buckets of edge ``2 * eps``; a candidate only
    needs its 3x3 cell neighbourhood checked (two points within the
    per-coordinate ``eps`` box differ by at most half a cell, so their
    indices differ by at most one even after float mapping slack).
    Non-finite coordinates (possible under hostile sensor-noise plans)
    fall back to the exact quadratic scan.
    """
    cell = 2.0 * eps
    if cell <= 0.0 or any(
        not (math.isfinite(p.x) and math.isfinite(p.y)) for p in points
    ):
        seen: list[Vec2] = []
        for p in points:
            if not any(p.approx_eq(q, eps) for q in seen):
                seen.append(p)
        return tuple(seen)
    inv = 1.0 / cell
    kept: list[Vec2] = []
    buckets: dict[tuple[int, int], list[Vec2]] = {}
    for p in points:
        ix = math.floor(p.x * inv)
        iy = math.floor(p.y * inv)
        duplicate = False
        for kx in (ix - 1, ix, ix + 1):
            for ky in (iy - 1, iy, iy + 1):
                bucket = buckets.get((kx, ky))
                if not bucket:
                    continue
                for q in bucket:
                    if p.approx_eq(q, eps):
                        duplicate = True
                        break
                if duplicate:
                    break
            if duplicate:
                break
        if not duplicate:
            kept.append(p)
            buckets.setdefault((ix, iy), []).append(p)
    return tuple(kept)
