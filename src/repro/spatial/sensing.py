"""Sensing models: what subset of the configuration a Look observes.

The paper's model gives every robot unlimited visibility — a Look sees
all n robots.  Limited-visibility variants (the axis the grid-APF line
of related work builds on) restrict a Look to the robots within a fixed
Euclidean radius ``V`` of the observer.  :class:`SensingModel` carries
that choice as plain data on :class:`~repro.analysis.scenarios.ScenarioSpec`
— the same only-when-set convention as fault plans, so full-visibility
specs keep their historical fingerprints byte-for-byte.

``SensingModel.from_spec`` follows the fault-plan idiom: full visibility
normalises to ``None`` (the engine's fast path stays entirely
untouched), and only genuinely limited models materialise an object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..geometry.point import Vec2

__all__ = ["SensingModel", "normalize_sensing"]


@dataclass(frozen=True)
class SensingModel:
    """A limited-visibility sensing model (full visibility is ``None``).

    Attributes:
        radius: visibility radius ``V``; a Look at position ``o``
            observes exactly the robots ``p`` with
            ``p.dist_sq(o) <= V * V`` (the observer itself, at distance
            zero, is always included).
    """

    radius: float

    kind = "limited"

    def __post_init__(self) -> None:
        if not (self.radius > 0.0):
            raise ValueError(f"visibility radius must be positive, got {self.radius!r}")

    # -- spec round-trip -------------------------------------------------
    @staticmethod
    def from_spec(spec) -> "SensingModel | None":
        """Normalise a sensing spec; ``None`` means full visibility.

        Accepted forms: ``None`` / ``"full"`` / ``{"kind": "full"}``
        (all → ``None``), an existing :class:`SensingModel`,
        ``{"kind": "limited", "radius": V}``, ``{"radius": V}``, and
        the component-pair spellings ``("limited", {"radius": V})`` /
        ``["limited", {...}]`` (the JSON round-trip of a journal spec
        turns tuples into lists).
        """
        if spec is None:
            return None
        if isinstance(spec, SensingModel):
            return spec
        if isinstance(spec, str):
            if spec == "full":
                return None
            raise ValueError(f"unknown sensing kind {spec!r}")
        if isinstance(spec, (tuple, list)):
            kind, params = spec
            spec = {"kind": kind, **dict(params or {})}
        if not isinstance(spec, dict):
            raise ValueError(f"cannot interpret sensing spec {spec!r}")
        kind = spec.get("kind", "limited")
        if kind == "full":
            return None
        if kind != "limited":
            raise ValueError(f"unknown sensing kind {kind!r}")
        if "radius" not in spec:
            raise ValueError("limited sensing requires a 'radius'")
        return SensingModel(radius=float(spec["radius"]))

    def to_spec(self) -> dict:
        """The canonical plain-data form (JSON and fingerprint stable)."""
        return {"kind": "limited", "radius": self.radius}

    # -- semantics -------------------------------------------------------
    def visible(self, points: Sequence[Vec2], observer: Vec2) -> list[Vec2]:
        """The brute-force reference filter, order preserving.

        The grid-backed engine path must agree with this bit-for-bit:
        same ``dist_sq <= radius * radius`` predicate, same input order.
        """
        r2 = self.radius * self.radius
        return [p for p in points if p.dist_sq(observer) <= r2]


def normalize_sensing(spec) -> "dict | None":
    """Validate a sensing spec; canonical dict, or ``None`` for full."""
    model = SensingModel.from_spec(spec)
    return None if model is None else model.to_spec()
