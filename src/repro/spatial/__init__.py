"""Spatial indexing and sensing models (the large-swarm subsystem).

Two orthogonal pieces:

* :class:`PositionGrid` — a deterministic bucketed index over exact
  coordinates answering disc / kNN / nearest / tolerance-box queries
  with bit-exact, order-stable results, maintained incrementally as
  robots move.  A pure accelerator: with the index on, full-visibility
  runs are bit-for-bit identical to the brute-force path (pinned by
  ``tests/spatial/test_index_equivalence.py``).
* :class:`SensingModel` — full vs. ``limited(radius=V)`` visibility,
  carried as plain data on ``ScenarioSpec`` and threaded through the
  Look phase and the terminal probe of both engines.  The only
  *semantic* extension of this subsystem.

The index switch follows the geometry-cache convention: the
``REPRO_SPATIAL_INDEX`` environment variable is ``auto`` (on from
:data:`INDEX_AUTO_THRESHOLD` robots), ``on``/``1`` (always) or
``off``/``0`` (never), mirrored into ``os.environ`` by
:func:`index_scope` so pool workers inherit it under any start method.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .grid import PositionGrid, dedupe_indexed
from .sensing import SensingModel, normalize_sensing

__all__ = [
    "INDEX_AUTO_THRESHOLD",
    "INDEX_ENV",
    "PositionGrid",
    "SensingModel",
    "dedupe_indexed",
    "index_enabled",
    "index_mode",
    "index_scope",
    "normalize_sensing",
]

INDEX_ENV = "REPRO_SPATIAL_INDEX"

#: In ``auto`` mode the index activates from this many robots up: below
#: it the brute-force scans win outright and (more importantly) the
#: historical small-n code path stays byte-for-byte untouched.
INDEX_AUTO_THRESHOLD = 64

_ON = ("1", "on", "true", "yes")
_OFF = ("0", "off", "false", "no")


def index_mode() -> str:
    """The effective switch value: ``"auto"``, ``"on"`` or ``"off"``."""
    raw = os.environ.get(INDEX_ENV, "auto").strip().lower()
    if raw in _ON:
        return "on"
    if raw in _OFF:
        return "off"
    return "auto"


def index_enabled(n: int) -> bool:
    """Whether the spatial index should serve a population of ``n``."""
    mode = index_mode()
    if mode == "on":
        return True
    if mode == "off":
        return False
    return n >= INDEX_AUTO_THRESHOLD


@contextmanager
def index_scope(mode: str):
    """Pin ``REPRO_SPATIAL_INDEX`` for a block (environment-mirrored).

    The same transport ``REPRO_GEOMETRY_CACHE`` and ``REPRO_ENGINE``
    use, so worker processes started inside the block inherit the
    choice under fork and spawn alike.
    """
    if mode not in ("auto", "on", "off"):
        raise ValueError(f"unknown index mode {mode!r}")
    previous = os.environ.get(INDEX_ENV)
    os.environ[INDEX_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(INDEX_ENV, None)
        else:
            os.environ[INDEX_ENV] = previous
