"""Lightweight per-phase wall-clock profiling (core).

The engine reports how long each simulation phase takes (LOOK, COMPUTE,
MOVE, the terminal probe) to a process-global :class:`Profiler`.  The
profiler is off by default and costs one attribute check per action when
disabled, so production runs pay nothing.

This module is dependency-free so that :mod:`repro.sim.engine` can use
it without import cycles; the public, report-producing API (including
cache-hit counters and the ``on_record`` hook) lives in
:mod:`repro.analysis.profile`.
"""

from __future__ import annotations

__all__ = ["PROFILER", "Profiler", "disable", "enable", "is_enabled"]


class Profiler:
    """Accumulates wall-clock seconds and call counts per phase."""

    __slots__ = ("enabled", "phase_seconds", "phase_calls")

    def __init__(self) -> None:
        self.enabled = False
        self.phase_seconds: dict[str, float] = {}
        self.phase_calls: dict[str, int] = {}

    def reset(self) -> None:
        self.phase_seconds.clear()
        self.phase_calls.clear()

    def add(self, phase: str, seconds: float) -> None:
        """Record one timed call of ``phase``."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


#: The process-global profiler the engine reports into.
PROFILER = Profiler()


def enable(reset: bool = True) -> None:
    """Start collecting phase timings (optionally zeroing counters)."""
    if reset:
        PROFILER.reset()
    PROFILER.enabled = True


def disable() -> None:
    """Stop collecting phase timings (accumulated data is kept)."""
    PROFILER.enabled = False


def is_enabled() -> bool:
    return PROFILER.enabled
