"""Engine selection and the kernel dispatch table.

The simulator has two execution engines:

* ``scalar`` — the pure-Python reference engine.  Always available,
  bit-exact, and the default; nothing in this module changes its
  behaviour in any way.
* ``array`` — the numpy-backed fast engine (:mod:`repro.fastsim`).
  Tolerance-equivalent to the scalar engine (see DESIGN.md, "Engine
  selection & numeric contract"), selected per batch through
  ``BatchConfig(engine="array")`` or the ``REPRO_ENGINE`` environment
  variable.

This module is deliberately stdlib-only and import-light: the geometry
hot paths consult :data:`KERNELS` on every call, so importing it must
never pull in numpy (or anything else heavy), and the scalar engine must
import cleanly on interpreters without numpy installed.

``KERNELS`` is a table of optional drop-in replacements for the scalar
geometry primitives.  Every slot is ``None`` by default; the scalar call
sites read::

    if _K.view_order is not None:
        return _K.view_order(points, center)
    ...scalar body...

so with no kernels installed the overhead is one attribute load per
call and the scalar code path is untouched.  The array engine installs
its kernels for the duration of a batch
(:func:`repro.fastsim.backend.kernel_scope`) and removes them after.

The engine choice travels to pool workers the same way the geometry
cache switch does: mirrored into ``os.environ`` so fork and spawn both
inherit it (:func:`engine_scope`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

__all__ = [
    "ENGINES",
    "ENGINE_ENV",
    "KERNELS",
    "KernelTable",
    "engine_scope",
    "resolved_engine",
]

ENGINE_ENV = "REPRO_ENGINE"

#: The recognised engine names, in preference order of documentation.
ENGINES = ("scalar", "array")


class KernelTable:
    """Optional accelerated implementations of the geometry primitives.

    One mutable, process-wide instance (:data:`KERNELS`).  A slot holds
    either ``None`` (use the scalar body) or a callable with the exact
    signature and return contract of the scalar function it replaces —
    including returning the same immutable value types, since callers
    and memo layers share the results freely.
    """

    __slots__ = (
        "sec",
        "weber",
        "view_order",
        "find_similarity",
        "find_regular",
        "find_shifted_regular",
    )

    def __init__(self) -> None:
        self.sec: "Callable | None" = None
        self.weber: "Callable | None" = None
        self.view_order: "Callable | None" = None
        self.find_similarity: "Callable | None" = None
        self.find_regular: "Callable | None" = None
        self.find_shifted_regular: "Callable | None" = None

    def clear(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, None)

    def installed(self) -> list[str]:
        """Names of the slots currently holding a kernel."""
        return [s for s in self.__slots__ if getattr(self, s) is not None]


KERNELS = KernelTable()


def resolved_engine(explicit: "str | None" = None) -> str:
    """The effective engine name.

    Precedence: ``explicit`` argument, then ``REPRO_ENGINE`` in the
    environment, then ``"scalar"``.

    Raises:
        ValueError: on an unrecognised engine name.
    """
    engine = explicit or os.environ.get(ENGINE_ENV, "").strip() or "scalar"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {', '.join(ENGINES)})"
        )
    return engine


@contextmanager
def engine_scope(engine: str):
    """Pin ``REPRO_ENGINE`` for the duration of a block.

    Mirrored into the environment (like ``REPRO_GEOMETRY_CACHE``) so
    worker processes started inside the block inherit the choice under
    any multiprocessing start method; the previous value is restored on
    exit.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    previous = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = engine
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous
