"""The injectable clock seam.

Every time-dependent component of the fabric — the ledger's lease
arithmetic, the worker loop, the service, the resilient client —
accepts a ``clock`` argument instead of calling the :mod:`time` module
directly.  Three implementations:

* :class:`SystemClock` — the real wall clock (the default everywhere;
  a process-wide singleton, :data:`SYSTEM_CLOCK`).
* :class:`VirtualClock` — a deterministic manual-advance clock for
  tests: ``sleep`` records the request and advances virtual time
  instantly, so lease-expiry and backoff behaviour is exercised
  without real waiting (and without the wall-clock races the old
  ``time.sleep(0.06)``-style tests suffered under CPU contention).
* :class:`SkewedClock` — a constant offset (plus optional linear
  drift) over a base clock.  Chaos runs give each worker process its
  own skew, modelling the unsynchronised-clocks reality a multi-host
  fabric lives in; the attempt-token fence, not timestamp agreement,
  is what must keep the ledger consistent.

The seam is deliberately tiny — ``time()``, ``monotonic()``,
``sleep()`` — because that is the entire surface the stack uses.
"""

from __future__ import annotations

import os
import threading
import time as _time

__all__ = [
    "SYSTEM_CLOCK",
    "Clock",
    "SkewedClock",
    "SystemClock",
    "VirtualClock",
    "clock_from_env",
    "resolve_clock",
]

#: Environment variable carrying a float clock-skew offset in seconds.
#: ``repro worker`` applies it on startup, which is how the chaos
#: orchestrator skews subprocess workers it cannot hand an object to.
SKEW_ENV = "REPRO_CHAOS_CLOCK_SKEW"


class Clock:
    """The three-method protocol every time consumer codes against."""

    def time(self) -> float:
        """Seconds since the epoch (the ledger's timestamp domain)."""
        raise NotImplementedError

    def monotonic(self) -> float:
        """Monotonic seconds (deadline/backoff domain)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (virtual clocks advance instead)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real clock: straight delegation to the :mod:`time` module."""

    def time(self) -> float:
        return _time.time()

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SystemClock()"


#: Process-wide default; ``clock=None`` everywhere resolves to this.
SYSTEM_CLOCK = SystemClock()


class VirtualClock(Clock):
    """Deterministic manual-advance clock for virtual-time tests.

    ``time()`` and ``monotonic()`` share one virtual timeline (tests
    don't care about the epoch).  ``sleep`` appends the request to
    :attr:`sleeps` and advances the timeline by exactly that amount,
    so retry/backoff schedules can be asserted to the float.  Thread
    safe: chaos tests advance the clock from the test thread while a
    component reads it from another.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        #: Every sleep duration requested, in call order.
        self.sleeps: list[float] = []

    def time(self) -> float:
        with self._lock:
            return self._now

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (the test's hand on the dial)."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.time():.3f})"


class SkewedClock(Clock):
    """A base clock shifted by ``offset`` seconds, optionally drifting.

    ``drift`` is a rate (seconds of skew gained per real second); the
    drift anchor is the moment of construction, so two ``SkewedClock``
    objects built from the same spec at different times diverge — which
    is exactly the property real unsynchronised hosts have.  ``sleep``
    passes through untouched: skew changes what a worker *believes* the
    time is, not how fast it runs.
    """

    def __init__(
        self, base: "Clock | None" = None, *, offset: float = 0.0, drift: float = 0.0
    ) -> None:
        self.base = base or SYSTEM_CLOCK
        self.offset = float(offset)
        self.drift = float(drift)
        self._anchor = self.base.monotonic()

    def _skew(self) -> float:
        if self.drift == 0.0:
            return self.offset
        return self.offset + self.drift * (self.base.monotonic() - self._anchor)

    def time(self) -> float:
        return self.base.time() + self._skew()

    def monotonic(self) -> float:
        return self.base.monotonic() + self._skew()

    def sleep(self, seconds: float) -> None:
        self.base.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkewedClock(offset={self.offset}, drift={self.drift})"


def resolve_clock(clock: "Clock | None") -> Clock:
    """``None`` means the real clock — the one-liner every seam uses."""
    return SYSTEM_CLOCK if clock is None else clock


def clock_from_env(base: "Clock | None" = None) -> Clock:
    """The clock a worker process should run on, honouring skew chaos.

    Reads :data:`SKEW_ENV`; absent/empty/zero yields the (real) base
    clock unchanged, anything else wraps it in a :class:`SkewedClock`.
    The orchestrator sets the variable per spawned worker.
    """
    raw = os.environ.get(SKEW_ENV, "").strip()
    base = resolve_clock(base)
    if not raw:
        return base
    offset = float(raw)
    if offset == 0.0:
        return base
    return SkewedClock(base, offset=offset)
