"""A seeded network-chaos TCP proxy for the ``/v1`` service.

Sits between :class:`~repro.service.client.ServiceClient` and the
HTTP service, speaking just enough HTTP/1.1 to know where a request
ends and how long a response body is, and injects one of four faults
per accepted connection (drawn in accept order from a seeded RNG, so
a chaos run's network weather is replayable from its plan):

* **drop** — the connection closes before the request ever reaches
  the upstream: the client sees a reset and its verb-aware retry
  logic takes over (GETs re-send; POSTs surface the error, because
  nothing proves the server didn't process them — exactly the
  ambiguity real networks have).
* **delay** — the response stalls a fixed number of seconds before
  the first byte is forwarded; read timeouts and SSE heartbeat
  cadence are what this exercises.
* **truncate** — the response headers forward intact, then the body
  cuts off after N bytes: ``http.client`` raises ``IncompleteRead``
  and idempotent calls retry.
* **duplicate** — the request is replayed to the upstream on a second
  connection (at-least-once delivery); the duplicate's response is
  read and discarded.  Idempotent writes (``INSERT OR IGNORE``
  records, fenced transitions) are what make this survivable — the
  auditor checks they did.

The proxy is transparent when a connection draws no fault: bytes
relay unmodified in both directions, SSE streams included (no
``Content-Length`` — relay until either side closes).
"""

from __future__ import annotations

import random
import socket
import threading

from .clock import Clock, resolve_clock
from .plan import NetChaos

__all__ = ["ChaosProxy"]

_CHUNK = 65536
_IO_TIMEOUT_S = 120.0


def _read_until_headers(sock: socket.socket) -> bytes:
    """Read from ``sock`` until the blank line ending the HTTP headers."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(_CHUNK)
        if not chunk:
            return data
        data += chunk
        if len(data) > 1 << 20:
            raise ValueError("HTTP header section exceeds 1 MiB")
    return data


def _content_length(header_block: bytes) -> "int | None":
    for line in header_block.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            try:
                return int(line.split(b":", 1)[1].strip())
            except ValueError:
                return None
    return None


def _read_http_request(sock: socket.socket) -> bytes:
    """One full request: header block plus ``Content-Length`` body."""
    data = _read_until_headers(sock)
    if not data:
        return b""
    head, _, rest = data.partition(b"\r\n\r\n")
    length = _content_length(head) or 0
    while len(rest) < length:
        chunk = sock.recv(_CHUNK)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


class ChaosProxy:
    """A threaded localhost TCP proxy with seeded per-connection faults.

    Args:
        upstream: the real service address as ``(host, port)``.
        chaos: the :class:`~repro.chaos.plan.NetChaos` arm; ``None``
            or an all-zero arm makes the proxy fully transparent.
        seed: decision-stream seed (a bound plan's ``net_seed``).
        clock: time source for injected delays.

    Use as a context manager or call :meth:`start` / :meth:`stop`.
    ``base_url`` is what the client should point at.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        *,
        chaos: "NetChaos | None" = None,
        seed: int = 0,
        clock: "Clock | None" = None,
        log=None,
    ) -> None:
        self.upstream = upstream
        self.chaos = chaos or NetChaos()
        self.clock = resolve_clock(clock)
        self._log = log
        self._rng = random.Random(f"repro.chaos.net:{seed}")
        self._listener: "socket.socket | None" = None
        self._accept_thread: "threading.Thread | None" = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections = 0
        self._injected = 0
        self.stats = {
            "connections": 0,
            "dropped": 0,
            "delayed": 0,
            "truncated": 0,
            "duplicated": 0,
        }

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._listener is not None, "proxy not started"
        return self._listener.getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-proxy", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the fault draw --------------------------------------------------
    def _decide(self) -> "str | None":
        """One seeded draw per accepted connection, in accept order."""
        with self._lock:
            self._connections += 1
            self.stats["connections"] += 1
            c = self.chaos
            if c.limit is not None and self._injected >= c.limit:
                return None
            u = self._rng.random()
            edges = (
                ("drop", c.p_drop),
                ("delay", c.p_delay),
                ("truncate", c.p_truncate),
                ("duplicate", c.p_duplicate),
            )
            cursor = 0.0
            for kind, p in edges:
                cursor += p
                if u < cursor:
                    self._injected += 1
                    key = {
                        "drop": "dropped",
                        "delay": "delayed",
                        "truncate": "truncated",
                        "duplicate": "duplicated",
                    }[kind]
                    self.stats[key] += 1
                    return kind
            return None

    # -- relay machinery -------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            fault = self._decide()
            threading.Thread(
                target=self._handle,
                args=(client, fault),
                name="repro-chaos-proxy-conn",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, fault: "str | None") -> None:
        upstream: "socket.socket | None" = None
        duplicate: "socket.socket | None" = None
        try:
            client.settimeout(_IO_TIMEOUT_S)
            if fault == "drop":
                self._emit("drop: closing client connection unanswered")
                return  # finally closes the socket — a clean reset
            request = _read_http_request(client)
            if not request:
                return
            upstream = socket.create_connection(
                self.upstream, timeout=_IO_TIMEOUT_S
            )
            upstream.sendall(request)
            if fault == "duplicate":
                # At-least-once delivery: the same bytes hit the
                # service twice; the second response is drained and
                # discarded on a background thread.
                duplicate = socket.create_connection(
                    self.upstream, timeout=_IO_TIMEOUT_S
                )
                duplicate.sendall(request)
                threading.Thread(
                    target=self._drain,
                    args=(duplicate,),
                    name="repro-chaos-proxy-dup",
                    daemon=True,
                ).start()
                duplicate = None  # ownership moved to the drain thread
                self._emit("duplicate: request replayed to upstream")
            header_data = _read_until_headers(upstream)
            if not header_data:
                return
            if fault == "delay":
                self._emit(f"delay: stalling response {self.chaos.delay}s")
                self.clock.sleep(self.chaos.delay)
            head, _, body_start = header_data.partition(b"\r\n\r\n")
            client.sendall(head + b"\r\n\r\n")
            length = _content_length(head)
            if fault == "truncate":
                budget = self.chaos.truncate_bytes
                self._emit(f"truncate: forwarding {budget} body bytes only")
                client.sendall(body_start[:budget])
                return  # abrupt close mid-body
            self._relay_body(upstream, client, body_start, length)
        except (OSError, ValueError):
            pass  # either side went away; chaos runs expect that
        finally:
            for sock in (client, upstream, duplicate):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def _relay_body(
        self,
        upstream: socket.socket,
        client: socket.socket,
        first: bytes,
        length: "int | None",
    ) -> None:
        """Forward the response body; bounded when a length is known.

        Without ``Content-Length`` (SSE) the relay runs until either
        side closes — the client hanging up mid-stream propagates the
        close to the upstream handler, which is what frees its thread.
        """
        sent = 0
        if first:
            client.sendall(first)
            sent += len(first)
        while length is None or sent < length:
            chunk = upstream.recv(_CHUNK)
            if not chunk:
                return
            client.sendall(chunk)
            sent += len(chunk)

    def _drain(self, sock: socket.socket) -> None:
        try:
            while sock.recv(_CHUNK):
                pass
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _emit(self, message: str) -> None:
        if self._log is not None:
            self._log(f"chaos-proxy: {message}")
