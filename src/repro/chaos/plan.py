"""``ChaosPlan`` — the seeded, serializable, replayable chaos schedule.

The same plain-data idiom as :mod:`repro.faults.models`: frozen
dataclasses validated in ``__post_init__``, a ``from_spec``/``to_spec``
dict round-trip (JSON-stable, so a plan travels through CLI flags,
benchmark manifests and CI configs unchanged), and a ``bind`` step that
expands the declarative plan into the concrete, deterministic schedule
a run executes:

* per-worker clock-skew offsets (:class:`ClockChaos`);
* the sqlite fault burst each process arms itself with
  (:class:`~repro.chaos.sqlio.SqliteFaults`, seed derived per bind);
* the absolute SIGKILL/SIGSTOP/SIGCONT timeline (:class:`ProcChaos` →
  :class:`SignalEvent` rows, sorted by fire time);
* the network-proxy decision seed (:class:`NetChaos`).

Binding uses string-seeded ``random.Random`` streams
(``repro.chaos:<salt>:<seed>:<arm>``) — one independent stream per
arm, so adding kill events never perturbs the skew draw, and the same
``(plan, workers)`` pair always yields byte-identical schedules, which
is the replayability contract the acceptance tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .sqlio import SqliteFaults

__all__ = [
    "BoundChaos",
    "ChaosPlan",
    "ClockChaos",
    "NetChaos",
    "ProcChaos",
    "SignalEvent",
    "preset",
    "PRESETS",
]


@dataclass(frozen=True)
class ClockChaos:
    """Per-worker clock skew: offsets drawn uniform in ±``max_skew``."""

    max_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.max_skew < 0:
            raise ValueError("max_skew must be >= 0")

    def to_spec(self) -> dict:
        return {"max_skew": self.max_skew}

    @classmethod
    def from_spec(cls, spec: "dict | ClockChaos | None") -> "ClockChaos | None":
        if spec is None or isinstance(spec, ClockChaos):
            return spec
        return cls(**spec)


@dataclass(frozen=True)
class ProcChaos:
    """Seeded process-signal schedule over the worker pool.

    ``kills`` SIGKILL events and ``stops`` SIGSTOP events (each
    SIGCONT-resumed after ``stop_duration``) fire at times drawn
    uniform in ``[min_delay, max_delay]`` seconds after run start,
    each aimed at a seeded-random worker slot.  ``respawn`` replaces a
    killed worker after ``respawn_after`` seconds, modelling an
    orchestrator that restarts crashed processes (leave it ``True`` —
    with every worker dead nothing drains the queue).
    """

    kills: int = 0
    stops: int = 0
    min_delay: float = 0.5
    max_delay: float = 5.0
    stop_duration: float = 1.0
    respawn: bool = True
    respawn_after: float = 0.5

    def __post_init__(self) -> None:
        if self.kills < 0 or self.stops < 0:
            raise ValueError("kills/stops must be >= 0")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        if self.stop_duration < 0 or self.respawn_after < 0:
            raise ValueError("durations must be >= 0")

    def to_spec(self) -> dict:
        return {
            "kills": self.kills,
            "stops": self.stops,
            "min_delay": self.min_delay,
            "max_delay": self.max_delay,
            "stop_duration": self.stop_duration,
            "respawn": self.respawn,
            "respawn_after": self.respawn_after,
        }

    @classmethod
    def from_spec(cls, spec: "dict | ProcChaos | None") -> "ProcChaos | None":
        if spec is None or isinstance(spec, ProcChaos):
            return spec
        return cls(**spec)


@dataclass(frozen=True)
class NetChaos:
    """Per-connection fault probabilities for the chaos TCP proxy.

    Drawn once per accepted connection, in accept order: ``p_drop``
    closes the connection before any response byte, ``p_delay`` stalls
    the response by ``delay`` seconds, ``p_truncate`` forwards only
    the first ``truncate_bytes`` response bytes then closes mid-body,
    ``p_duplicate`` replays the request to the upstream a second time
    (at-least-once delivery) and discards the duplicate's response.
    ``limit`` bounds total injected faults, like the sqlite burst.
    """

    p_drop: float = 0.0
    p_delay: float = 0.0
    delay: float = 0.5
    p_truncate: float = 0.0
    truncate_bytes: int = 64
    p_duplicate: float = 0.0
    limit: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_delay", "p_truncate", "p_duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        total = self.p_drop + self.p_delay + self.p_truncate + self.p_duplicate
        if total > 1.0:
            raise ValueError("net fault probabilities must sum to <= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.truncate_bytes < 0:
            raise ValueError("truncate_bytes must be >= 0")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be >= 0")

    def to_spec(self) -> dict:
        spec = {
            "p_drop": self.p_drop,
            "p_delay": self.p_delay,
            "delay": self.delay,
            "p_truncate": self.p_truncate,
            "truncate_bytes": self.truncate_bytes,
            "p_duplicate": self.p_duplicate,
        }
        if self.limit is not None:
            spec["limit"] = self.limit
        return spec

    @classmethod
    def from_spec(cls, spec: "dict | NetChaos | None") -> "NetChaos | None":
        if spec is None or isinstance(spec, NetChaos):
            return spec
        return cls(**spec)


@dataclass(frozen=True)
class SignalEvent:
    """One bound process-chaos event on the run timeline.

    ``at`` is seconds after run start; ``action`` is ``"kill"`` or
    ``"stop"``; ``worker`` is a slot index into the worker pool (a
    respawned worker inherits the slot of the one it replaces, so a
    schedule stays meaningful across kills).
    """

    at: float
    action: str
    worker: int
    resume_after: float = 0.0


@dataclass(frozen=True)
class BoundChaos:
    """A plan expanded against a concrete worker count.

    Everything here is derived deterministically from
    ``(plan, workers)`` — binding twice yields equal objects, which is
    what makes a chaos run replayable from its plan spec alone.
    """

    plan: "ChaosPlan"
    workers: int
    skews: tuple[float, ...]
    signals: tuple[SignalEvent, ...]
    sqlite: "SqliteFaults | None"
    net_seed: int


@dataclass(frozen=True)
class ChaosPlan:
    """The full declarative chaos schedule (all arms optional).

    ``seed`` drives every derived stream; ``salt`` namespaces plans the
    same way ``FaultPlan`` salts fault streams (two plans with equal
    arms but different salts produce unrelated schedules).
    """

    seed: int = 0
    salt: str = ""
    clock: "ClockChaos | None" = None
    sqlite: "SqliteFaults | None" = None
    procs: "ProcChaos | None" = None
    net: "NetChaos | None" = None

    # -- serialization ---------------------------------------------------
    def to_spec(self) -> dict:
        spec: dict = {"seed": self.seed}
        if self.salt:
            spec["salt"] = self.salt
        for arm in ("clock", "sqlite", "procs", "net"):
            value = getattr(self, arm)
            if value is not None:
                spec[arm] = value.to_spec()
        return spec

    @classmethod
    def from_spec(cls, spec: "dict | ChaosPlan | None") -> "ChaosPlan":
        if spec is None:
            return cls()
        if isinstance(spec, ChaosPlan):
            return spec
        known = {"seed", "salt", "clock", "sqlite", "procs", "net"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown ChaosPlan keys: {sorted(unknown)}")
        return cls(
            seed=int(spec.get("seed", 0)),
            salt=str(spec.get("salt", "")),
            clock=ClockChaos.from_spec(spec.get("clock")),
            sqlite=SqliteFaults.from_spec(spec.get("sqlite")),
            procs=ProcChaos.from_spec(spec.get("procs")),
            net=NetChaos.from_spec(spec.get("net")),
        )

    # -- binding ---------------------------------------------------------
    def _stream(self, arm: str) -> random.Random:
        return random.Random(f"repro.chaos:{self.salt}:{self.seed}:{arm}")

    def bind(self, workers: int) -> BoundChaos:
        """Expand to the concrete schedule for ``workers`` worker slots."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        skews: tuple[float, ...] = tuple(0.0 for _ in range(workers))
        if self.clock is not None and self.clock.max_skew > 0:
            rng = self._stream("clock")
            skews = tuple(
                rng.uniform(-self.clock.max_skew, self.clock.max_skew)
                for _ in range(workers)
            )
        events: list[SignalEvent] = []
        if self.procs is not None:
            rng = self._stream("procs")
            for _ in range(self.procs.kills):
                events.append(
                    SignalEvent(
                        at=rng.uniform(
                            self.procs.min_delay, self.procs.max_delay
                        ),
                        action="kill",
                        worker=rng.randrange(workers),
                    )
                )
            for _ in range(self.procs.stops):
                events.append(
                    SignalEvent(
                        at=rng.uniform(
                            self.procs.min_delay, self.procs.max_delay
                        ),
                        action="stop",
                        worker=rng.randrange(workers),
                        resume_after=self.procs.stop_duration,
                    )
                )
            events.sort(key=lambda e: (e.at, e.worker, e.action))
        sqlite = None
        if self.sqlite is not None:
            # Re-seed the burst from the plan streams so two plans with
            # the same sqlite arm but different seeds/salts inject
            # different fault sequences.
            sqlite = SqliteFaults(
                seed=self._stream("sqlite").randrange(2**31),
                p_lock=self.sqlite.p_lock,
                p_torn=self.sqlite.p_torn,
                p_disk=self.sqlite.p_disk,
                limit=self.sqlite.limit,
            )
        return BoundChaos(
            plan=self,
            workers=workers,
            skews=skews,
            signals=tuple(events),
            sqlite=sqlite,
            net_seed=self._stream("net").randrange(2**31),
        )

    def active_arms(self) -> list[str]:
        """The arms this plan actually exercises (logging/reports)."""
        return [
            arm
            for arm in ("clock", "sqlite", "procs", "net")
            if getattr(self, arm) is not None
        ]


#: Escalating intensity presets the E12 benchmark and CLI share.
#: ``none`` is the control arm: full harness, zero injected faults.
PRESETS: dict[str, dict] = {
    "none": {},
    "light": {
        "clock": {"max_skew": 0.2},
        "sqlite": {"p_lock": 0.02, "limit": 8},
        "procs": {"kills": 1, "min_delay": 0.5, "max_delay": 2.0},
    },
    "medium": {
        "clock": {"max_skew": 1.0},
        "sqlite": {"p_lock": 0.05, "p_torn": 0.02, "limit": 16},
        "procs": {
            "kills": 1,
            "stops": 1,
            "min_delay": 0.5,
            "max_delay": 3.0,
            "stop_duration": 0.75,
        },
        "net": {"p_drop": 0.05, "p_delay": 0.05, "delay": 0.2, "limit": 12},
    },
    "heavy": {
        "clock": {"max_skew": 5.0},
        "sqlite": {
            "p_lock": 0.10,
            "p_torn": 0.05,
            "p_disk": 0.03,
            "limit": 32,
        },
        "procs": {
            "kills": 2,
            "stops": 2,
            "min_delay": 0.5,
            "max_delay": 4.0,
            "stop_duration": 1.0,
        },
        "net": {
            "p_drop": 0.10,
            "p_delay": 0.08,
            "delay": 0.3,
            "p_truncate": 0.05,
            "p_duplicate": 0.05,
            "limit": 24,
        },
    },
}


def preset(name: str, *, seed: int = 0, salt: str = "") -> ChaosPlan:
    """A named intensity preset as a bindable plan."""
    if name not in PRESETS:
        raise ValueError(
            f"unknown chaos preset {name!r}; choose from {sorted(PRESETS)}"
        )
    spec = dict(PRESETS[name])
    spec["seed"] = seed
    if salt:
        spec["salt"] = salt
    return ChaosPlan.from_spec(spec)
