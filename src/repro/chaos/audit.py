"""Post-run invariant auditing: did the fabric degrade *gracefully*?

A chaos run is only interesting if something checks the wreckage.
:func:`audit_run` compares the chaos-run store against a clean
reference run of the same workload and asserts the house invariants
the fabric's crash-safety story rests on:

* **byte identity** — every seed's stored record is byte-for-byte
  identical (via the canonical journal encoding) to the clean run's.
  Kills, lease steals, torn writes, duplicated deliveries: none of it
  may change a single result byte.
* **no double writes** — the ``(fingerprint, seed, schema)`` and
  ``(fingerprint, seed, version, idx)`` primary keys are re-checked
  with raw SQL, and each seed's frame spool must be a gapless
  ``0..k-1`` index sequence.  A worker whose lease was stolen and who
  kept writing past the attempt-token fence would break exactly this.
* **ledger terminal consistency** — the job reached a terminal state,
  every shard reached a terminal state, a ``done`` job has only
  ``done`` shards, and no shard still holds a live claim.
* **SSE replay equality** (optional) — the frame payload sequence a
  live ``/v1/jobs/<id>/events`` subscriber saw equals what the
  ``/v1/runs/<fp>/<seed>/replay`` endpoint serves afterwards.

Every check yields an :class:`AuditCheck`; the :class:`AuditReport`
is JSON-ready so benchmark and CI runs can persist the verdicts.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..analysis.journal import encode_record
from ..store import ExperimentStore, JobLedger

__all__ = ["AuditCheck", "AuditReport", "audit_run"]

#: Job / shard states the fabric may legally end a run in.
_TERMINAL_JOB = {"done", "failed", "cancelled"}
_TERMINAL_SHARD = {"done", "failed"}


@dataclass(frozen=True)
class AuditCheck:
    """One invariant verdict: ``name``, pass/fail, human detail."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class AuditReport:
    """All verdicts for one chaos run."""

    checks: list[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[AuditCheck]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {"ok": self.ok, "checks": [c.to_dict() for c in self.checks]}

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"audit: {verdict} ({len(self.checks)} checks)"]
        for check in self.checks:
            mark = "ok " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        return "\n".join(lines)


def _check_byte_identity(
    store: ExperimentStore,
    reference: ExperimentStore,
    fingerprint: str,
    seeds: Sequence[int],
) -> AuditCheck:
    missing: list[int] = []
    diverged: list[int] = []
    for seed in seeds:
        chaotic = store.get(fingerprint, seed)
        clean = reference.get(fingerprint, seed)
        if chaotic is None or clean is None:
            missing.append(seed)
        elif encode_record(chaotic) != encode_record(clean):
            diverged.append(seed)
    if missing:
        return AuditCheck(
            "store-byte-identity", False,
            f"seeds missing a record: {missing[:10]}"
            + (f" (+{len(missing) - 10} more)" if len(missing) > 10 else ""),
        )
    if diverged:
        return AuditCheck(
            "store-byte-identity", False,
            f"records diverge from the clean run at seeds {diverged[:10]}",
        )
    return AuditCheck(
        "store-byte-identity", True,
        f"{len(seeds)} records byte-identical to the reference run",
    )


def _check_no_double_writes(
    store: ExperimentStore, fingerprint: str
) -> AuditCheck:
    problems: list[str] = []
    with sqlite3.connect(str(store.path)) as conn:
        dup_runs = conn.execute(
            "SELECT seed, schema, COUNT(*) FROM runs WHERE fingerprint=?"
            " GROUP BY seed, schema HAVING COUNT(*) > 1",
            (fingerprint,),
        ).fetchall()
        if dup_runs:
            problems.append(f"duplicate run rows: {dup_runs[:5]}")
        dup_frames = conn.execute(
            "SELECT seed, version, idx, COUNT(*) FROM frames"
            " WHERE fingerprint=? GROUP BY seed, version, idx"
            " HAVING COUNT(*) > 1",
            (fingerprint,),
        ).fetchall()
        if dup_frames:
            problems.append(f"duplicate frame rows: {dup_frames[:5]}")
        # Per seed the spool must be idx 0..k-1 with no holes: a fenced
        # straggler re-spooling frames would tear exactly this.
        rows = conn.execute(
            "SELECT seed, version, COUNT(*), MIN(idx), MAX(idx) FROM frames"
            " WHERE fingerprint=? GROUP BY seed, version",
            (fingerprint,),
        ).fetchall()
        for seed, version, count, lo, hi in rows:
            if lo != 0 or hi != count - 1:
                problems.append(
                    f"frame spool for seed {seed} (v{version}) is not"
                    f" contiguous: count={count} idx=[{lo}, {hi}]"
                )
    conn.close()
    if problems:
        return AuditCheck("no-double-writes", False, "; ".join(problems))
    return AuditCheck(
        "no-double-writes", True,
        "run and frame keys unique, frame spools contiguous",
    )


def _check_ledger_terminal(ledger: JobLedger, job_id: str) -> AuditCheck:
    entry = ledger.get(job_id)
    if entry is None:
        return AuditCheck(
            "ledger-terminal", False, f"job {job_id} not in the ledger"
        )
    problems: list[str] = []
    if entry.status not in _TERMINAL_JOB:
        problems.append(f"job status {entry.status!r} is not terminal")
    shards = ledger.shards(job_id)
    for shard in shards:
        if shard.status not in _TERMINAL_SHARD:
            problems.append(
                f"shard {shard.shard} status {shard.status!r} not terminal"
            )
    if entry.status == "done":
        not_done = [s.shard for s in shards if s.status != "done"]
        if not_done:
            problems.append(f"job done but shards {not_done} are not")
    if problems:
        return AuditCheck("ledger-terminal", False, "; ".join(problems))
    return AuditCheck(
        "ledger-terminal", True,
        f"job {entry.status}, {len(shards)} shards terminal",
    )


def _check_replay_equality(
    live: Mapping[int, Sequence[str]],
    replay: Mapping[int, Sequence[str]],
) -> AuditCheck:
    diverged: list[int] = []
    for seed, live_frames in live.items():
        if list(live_frames) != list(replay.get(seed, [])):
            diverged.append(seed)
    if diverged:
        return AuditCheck(
            "sse-replay-byte-equal", False,
            f"replay diverges from the live stream at seeds {diverged[:10]}",
        )
    total = sum(len(frames) for frames in live.values())
    return AuditCheck(
        "sse-replay-byte-equal", True,
        f"{total} live frames across {len(live)} seeds replay byte-equal",
    )


def audit_run(
    *,
    store: "ExperimentStore | str",
    reference: "ExperimentStore | str",
    fingerprint: str,
    seeds: Sequence[int],
    ledger: "JobLedger | str | None" = None,
    job_id: "str | None" = None,
    live_frames: "Mapping[int, Sequence[str]] | None" = None,
    replay_frames: "Mapping[int, Sequence[str]] | None" = None,
) -> AuditReport:
    """Audit a chaos run's stores against the house invariants.

    Args:
        store: the chaos run's experiment store (object or path).
        reference: the clean single-process run of the same workload.
        fingerprint: the workload fingerprint both runs wrote under.
        seeds: the full seed list the job covered.
        ledger / job_id: checked for terminal consistency when both
            are given.
        live_frames / replay_frames: per-seed SSE ``frame`` payload
            sequences captured live and fetched from the replay
            endpoint; compared when both are given.
    """
    store = store if isinstance(store, ExperimentStore) else ExperimentStore(store)
    reference = (
        reference
        if isinstance(reference, ExperimentStore)
        else ExperimentStore(reference)
    )
    report = AuditReport()
    report.checks.append(
        _check_byte_identity(store, reference, fingerprint, seeds)
    )
    report.checks.append(_check_no_double_writes(store, fingerprint))
    if ledger is not None and job_id is not None:
        ledger = ledger if isinstance(ledger, JobLedger) else JobLedger(ledger)
        report.checks.append(_check_ledger_terminal(ledger, job_id))
    if live_frames is not None and replay_frames is not None:
        report.checks.append(
            _check_replay_equality(live_frames, replay_frames)
        )
    return report
