"""The chaos run itself: clean reference, full fabric, faults, audit.

:func:`run_chaos` is the one-call harness the ``repro chaos`` CLI and
the E12 benchmark drive:

1. **Reference run** — the workload executes once, single-process, no
   chaos, into its own store.  This is ground truth: whatever the
   fabric survives, its results must be byte-identical to this.
2. **Fabric** — a fabric-mode ``/v1`` front-end plus real
   ``repro worker`` subprocesses on a shared ledger/store, exactly the
   production topology.
3. **Chaos** — the bound plan attacks every boundary at once: worker
   clocks skew (env), sqlite faults arm in every process (env), the
   client talks through the :class:`~repro.chaos.netproxy.ChaosProxy`,
   and the signal schedule kills/pauses workers mid-shard.
4. **Audit** — :func:`~repro.chaos.audit.audit_run` compares the
   wreckage against the reference and the house invariants.

Submission itself goes through the chaotic proxy, which makes the POST
genuinely ambiguous (a dropped connection does not prove the server
didn't process it).  The runner recovers the way an operator would:
on a failed submit it looks the job up in the ledger by workload
fingerprint before re-submitting on the direct URL.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..analysis import BatchConfig, ScenarioSpec, run
from ..hooks import spool_only_sink
from ..service.client import RetryPolicy, ServiceClient
from ..service.http import make_server
from ..service.jobs import JobService
from ..store import JobLedger
from .audit import AuditReport, audit_run
from .netproxy import ChaosProxy
from .plan import ChaosPlan
from .procs import ProcessChaosOrchestrator
from .sqlio import sqlio_stats

__all__ = ["ChaosResult", "run_chaos"]


@dataclass
class ChaosResult:
    """Everything one chaos run produced, JSON-ready via :meth:`to_dict`."""

    plan: dict
    job_id: "str | None"
    status: "str | None"
    succeeded: bool
    seeds: tuple
    workers: int
    shards: "int | None"
    wall_seconds: float
    submit_seconds: float
    recovery_seconds: "float | None"
    shard_attempts: dict
    proxy_stats: "dict | None"
    sqlio_front: dict
    journal: list
    audit: AuditReport
    error: "str | None" = None
    submit_recovered: bool = False

    @property
    def ok(self) -> bool:
        return self.succeeded and self.audit.ok

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "job_id": self.job_id,
            "status": self.status,
            "succeeded": self.succeeded,
            "ok": self.ok,
            "seeds": list(self.seeds),
            "workers": self.workers,
            "shards": self.shards,
            "wall_seconds": round(self.wall_seconds, 4),
            "submit_seconds": round(self.submit_seconds, 4),
            "recovery_seconds": (
                round(self.recovery_seconds, 4)
                if self.recovery_seconds is not None
                else None
            ),
            "shard_attempts": self.shard_attempts,
            "proxy_stats": self.proxy_stats,
            "sqlio_front": self.sqlio_front,
            "journal": self.journal,
            "audit": self.audit.to_dict(),
            "error": self.error,
            "submit_recovered": self.submit_recovered,
        }


def _capture_sse(
    host: str,
    port: int,
    path: str,
    frames: "dict[int, list[str]]",
    done: threading.Event,
    timeout: float,
) -> None:
    """Tail one SSE endpoint, bucketing ``frame`` payloads by seed.

    Runs on the *direct* service address — the capture channel must be
    faithful, because it is one side of the replay-equality audit;
    routing it through the chaos proxy would test the observer, not
    the invariant.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path, headers={"Accept": "text/event-stream"})
        response = conn.getresponse()
        if response.status != 200:
            return
        event = ""
        while not done.is_set():
            raw = response.fp.readline()
            if not raw:
                return
            line = raw.decode("utf-8", "replace").rstrip("\n").rstrip("\r")
            if line.startswith("event:"):
                event = line.split(":", 1)[1].strip()
            elif line.startswith("data:"):
                data = line.split(":", 1)[1].strip()
                if event == "frame":
                    try:
                        seed = int(json.loads(data)["seed"])
                    except (ValueError, KeyError):
                        continue
                    frames.setdefault(seed, []).append(data)
                elif event == "end":
                    return
    except (OSError, http.client.HTTPException):
        return
    finally:
        conn.close()


def _fetch_replay(
    host: str, port: int, fingerprint: str, seed: int, timeout: float
) -> list[str]:
    """All ``frame`` payloads the replay endpoint serves for one seed."""
    frames: "dict[int, list[str]]" = {}
    _capture_sse(
        host,
        port,
        f"/v1/runs/{fingerprint}/{seed}/replay",
        frames,
        threading.Event(),
        timeout,
    )
    return frames.get(seed, [])


def run_chaos(
    spec_data: dict,
    seeds,
    plan: ChaosPlan,
    *,
    workdir: "str | Path",
    workers: int = 2,
    shards: "int | None" = None,
    lease: float = 2.0,
    poll: float = 0.05,
    max_attempts: int = 5,
    telemetry: bool = False,
    timeout: float = 180.0,
    log=None,
) -> ChaosResult:
    """Execute one full chaos run and audit the result.

    Args:
        spec_data: the scenario as a plain dict (CLI/service shape).
        seeds: seed list the job covers.
        plan: the :class:`~repro.chaos.plan.ChaosPlan` to execute.
        workdir: directory for the run's stores and ledger (created).
        workers: worker subprocess count.
        shards: shard count for the job (default: service default).
        lease / poll / max_attempts: worker-fabric tuning; a short
            lease makes kill recovery observable within the timeout.
        telemetry: spool frames and audit SSE replay equality too.
        timeout: overall wait budget for the job.
        log: one-line progress callback (``None`` = silent).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    seeds = [int(s) for s in seeds]
    emit = log or (lambda line: None)

    # 1. Ground truth: one clean, single-process run of the workload.
    ref_store = workdir / "reference.sqlite"
    emit(f"chaos: reference run ({len(seeds)} seeds) -> {ref_store.name}")
    spec = ScenarioSpec.from_dict(dict(spec_data))
    run(
        spec,
        seeds,
        BatchConfig(
            workers=1,
            store=ref_store,
            telemetry=spool_only_sink() if telemetry else None,
        ),
    )

    # 2. The fabric: front-end + ledger + real worker subprocesses.
    chaos_store = workdir / "chaos.sqlite"
    chaos_ledger = workdir / "ledger.sqlite"
    service = JobService(
        str(chaos_store),
        ledger=str(chaos_ledger),
        dispatch=False,
        auto_start=False,
        telemetry=telemetry,
    )
    fingerprint = service.workload_fingerprint(spec_data)
    server = make_server(service)
    threading.Thread(
        target=server.serve_forever, name="repro-chaos-http", daemon=True
    ).start()
    host, port = server.server_address[:2]

    bound = plan.bind(workers)
    proxy: "ChaosProxy | None" = None
    base_url = f"http://{host}:{port}"
    if plan.net is not None:
        proxy = ChaosProxy(
            (host, port), chaos=plan.net, seed=bound.net_seed, log=log
        ).start()
        base_url = proxy.base_url
        emit(f"chaos: client routed through proxy at {base_url}")

    procs = plan.procs
    orchestrator = ProcessChaosOrchestrator(
        ledger=chaos_ledger,
        store=chaos_store,
        workers=workers,
        lease=lease,
        poll=poll,
        max_attempts=max_attempts,
        telemetry=telemetry,
        skews=bound.skews,
        sqlite=bound.sqlite,
        respawn=procs.respawn if procs is not None else True,
        respawn_after=procs.respawn_after if procs is not None else 0.5,
        log=log,
    )

    client = ServiceClient(
        base_url,
        policy=RetryPolicy(
            retries=6, backoff=0.05, backoff_cap=0.5, seed=plan.seed
        ),
    )
    live_frames: "dict[int, list[str]]" = {}
    capture_done = threading.Event()
    capture_thread: "threading.Thread | None" = None
    job_id: "str | None" = None
    status: "str | None" = None
    error: "str | None" = None
    submit_recovered = False
    recovery_seconds: "float | None" = None
    t0 = time.monotonic()
    try:
        # 3. Submit — through the chaotic proxy, ambiguity included.
        try:
            ack = client.submit(spec_data, seeds, shards=shards)
            job_id = ack["id"]
        except Exception as exc:  # noqa: BLE001 — recovery path below
            emit(f"chaos: submit failed ({type(exc).__name__}); recovering")
            matches = [
                entry
                for entry in JobLedger(chaos_ledger).jobs()
                if entry.fingerprint == spec.fingerprint()
            ]
            if matches:
                job_id = matches[-1].id
                submit_recovered = True
                emit(f"chaos: recovered job {job_id} from the ledger")
            else:
                direct = ServiceClient(f"http://{host}:{port}")
                ack = direct.submit(spec_data, seeds, shards=shards)
                job_id = ack["id"]
                submit_recovered = True
        submit_seconds = time.monotonic() - t0
        emit(f"chaos: job {job_id} submitted in {submit_seconds:.2f}s")

        if telemetry:
            capture_thread = threading.Thread(
                target=_capture_sse,
                args=(
                    host,
                    port,
                    f"/v1/jobs/{job_id}/events",
                    live_frames,
                    capture_done,
                    timeout,
                ),
                name="repro-chaos-sse",
                daemon=True,
            )
            capture_thread.start()

        # 4. Let the signal schedule loose and wait the job out.
        orchestrator.run_schedule(bound.signals)
        try:
            snapshot = client.wait(job_id, timeout=timeout, poll=0.25)
            status = snapshot.get("status")
        except Exception as exc:  # noqa: BLE001 — surface in the result
            error = f"{type(exc).__name__}: {exc}"
            entry = JobLedger(chaos_ledger).get(job_id)
            status = entry.status if entry is not None else None
        wall_seconds = time.monotonic() - t0

        kills = [e for e in orchestrator.journal if e["action"] == "kill"]
        if kills and status == "done":
            # Schedule offsets and the submit clock share monotonic
            # time; both deltas are measured from schedule start.
            done_offset = time.monotonic() - (orchestrator._t0 or t0)
            recovery_seconds = max(0.0, done_offset - kills[0]["at"])
    finally:
        capture_done.set()
        orchestrator.close()
        if capture_thread is not None:
            capture_thread.join(timeout=5)
        if proxy is not None:
            proxy.stop()

    # 5. Audit the wreckage against ground truth.
    replay_frames: "dict[int, list[str]] | None" = None
    if telemetry:
        replay_frames = {
            seed: _fetch_replay(host, port, fingerprint, seed, timeout)
            for seed in seeds
        }
    report = audit_run(
        store=str(chaos_store),
        reference=str(ref_store),
        fingerprint=fingerprint,
        seeds=seeds,
        ledger=str(chaos_ledger),
        job_id=job_id,
        live_frames=live_frames if telemetry else None,
        replay_frames=replay_frames,
    )
    server.shutdown()
    service.stop()

    ledger = JobLedger(chaos_ledger)
    shard_entries = ledger.shards(job_id) if job_id is not None else []
    attempts = [entry.attempts for entry in shard_entries]
    result = ChaosResult(
        plan=plan.to_spec(),
        job_id=job_id,
        status=status,
        succeeded=status == "done",
        seeds=tuple(seeds),
        workers=workers,
        shards=len(shard_entries) or None,
        wall_seconds=wall_seconds,
        submit_seconds=submit_seconds,
        recovery_seconds=recovery_seconds,
        shard_attempts={
            "total": sum(attempts),
            "max": max(attempts) if attempts else 0,
        },
        proxy_stats=dict(proxy.stats) if proxy is not None else None,
        sqlio_front=sqlio_stats(),
        journal=list(orchestrator.journal),
        audit=report,
        error=error,
        submit_recovered=submit_recovered,
    )
    emit(
        "chaos: "
        + ("PASS" if result.ok else "FAIL")
        + f" status={status} wall={wall_seconds:.2f}s"
        + (
            f" recovery={recovery_seconds:.2f}s"
            if recovery_seconds is not None
            else ""
        )
    )
    return result
