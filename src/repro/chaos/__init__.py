"""Deterministic chaos-injection harness for the distributed fabric.

The simulation core already survives an asynchronous adversary by
construction (PR 3's activation policies and ``FaultPlan``); this
package applies the same discipline to the *production stack around
it* — ledger, workers, HTTP service, store, telemetry spool.  Four
seeded attack surfaces, one plain-data schedule, one auditor:

* :mod:`repro.chaos.clock` — the injectable ``Clock`` seam threaded
  through ledger/worker/service/client, enabling virtual-time tests
  and per-worker clock skew;
* :mod:`repro.chaos.sqlio` — seeded sqlite I/O faults (``database is
  locked``, torn writes, fsync failures) at the store/ledger boundary,
  plus the bounded-retry helper their writers use;
* :mod:`repro.chaos.procs` — a process-chaos orchestrator running real
  worker subprocesses under a seeded SIGKILL/SIGSTOP/SIGCONT schedule;
* :mod:`repro.chaos.netproxy` — a TCP proxy between client and service
  injecting drops, delays, truncated responses and duplicated
  deliveries;
* :mod:`repro.chaos.plan` — ``ChaosPlan``, the seeded, serializable,
  replayable schedule driving all four (the ``FaultPlan`` idiom);
* :mod:`repro.chaos.audit` / :mod:`repro.chaos.runner` — the post-run
  invariant auditor (store byte-identity vs a clean run, attempt-token
  fencing, terminal-state consistency, replay-vs-live SSE byte
  equality) and the end-to-end harness behind ``repro chaos`` and the
  E12 benchmark.

This ``__init__`` stays import-light on purpose: ``repro.store`` and
``repro.service`` import the clock and sqlio seams from here, so
pulling in the heavy submodules (runner imports the service stack)
eagerly would be circular.  They resolve lazily via ``__getattr__``.
"""

from __future__ import annotations

from .clock import (
    SYSTEM_CLOCK,
    Clock,
    SkewedClock,
    SystemClock,
    VirtualClock,
    resolve_clock,
)
from .plan import PRESETS, ChaosPlan, ClockChaos, NetChaos, ProcChaos, preset
from .sqlio import (
    SqliteFaultInjector,
    SqliteFaults,
    TornWrite,
    install_injector,
    sqlio_stats,
    uninstall_injector,
)

__all__ = [
    "PRESETS",
    "SYSTEM_CLOCK",
    "ChaosPlan",
    "Clock",
    "ClockChaos",
    "NetChaos",
    "ProcChaos",
    "SkewedClock",
    "SqliteFaultInjector",
    "SqliteFaults",
    "SystemClock",
    "TornWrite",
    "VirtualClock",
    "install_injector",
    "preset",
    "resolve_clock",
    "sqlio_stats",
    "uninstall_injector",
]

_LAZY = {
    "AuditReport": "audit",
    "audit_run": "audit",
    "ChaosProxy": "netproxy",
    "WorkerProcess": "procs",
    "ProcessChaosOrchestrator": "procs",
    "ChaosResult": "runner",
    "run_chaos": "runner",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
