"""Seeded sqlite I/O fault injection and the bounded-retry discipline.

The store and ledger funnel every database touch through one
``_connect()`` context manager apiece; that funnel calls
:func:`fault_point` twice per operation — once before the connection
opens (``connect`` phase) and once just before the transaction commits
(``commit`` phase).  With no injector installed both calls are a
dictionary lookup and a ``None`` check: the production hot path pays
nothing.

With an injector installed (directly via :func:`install_injector`, or
inherited by worker subprocesses through the :data:`FAULTS_ENV`
environment variable), each fault point draws from a seeded RNG and
may raise one of three transient errors:

* ``database is locked`` (connect phase) — the classic WAL writer
  collision;
* *torn write* (commit phase) — :class:`TornWrite` raised inside the
  transaction scope, so sqlite rolls the statements back: the write
  simply never happened;
* ``disk I/O error`` (commit phase) — a failed fsync; the transaction
  is likewise rolled back.

All three are **transient by contract**: :func:`run_with_retry` (the
wrapper every ledger/store writer runs under) retries them with
bounded exponential backoff on the injected clock seam before giving
up and propagating.  Because every write in the house is idempotent
(``INSERT OR IGNORE`` keys, token-fenced updates), re-running a rolled
back operation is always safe — which is precisely the invariant this
module exists to hammer on.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
from dataclasses import dataclass

from .clock import Clock, resolve_clock

__all__ = [
    "FAULTS_ENV",
    "SqliteFaultInjector",
    "SqliteFaults",
    "TornWrite",
    "active_injector",
    "fault_point",
    "install_injector",
    "is_transient",
    "reset_sqlio_stats",
    "run_with_retry",
    "sqlio_stats",
    "uninstall_injector",
]

#: Environment variable carrying a ``SqliteFaults`` spec as JSON.
#: Worker subprocesses inherit it, so one chaos plan attacks every
#: process of the fabric without any of them cooperating.
FAULTS_ENV = "REPRO_CHAOS_SQLITE"

#: Substrings identifying a transient ``sqlite3.OperationalError``.
_TRANSIENT_MARKERS = (
    "database is locked",
    "database table is locked",
    "disk i/o error",
)


class TornWrite(sqlite3.OperationalError):
    """Chaos: the transaction was rolled back before its commit.

    Raised at a commit-phase fault point *inside* the ``with conn:``
    scope, so sqlite3's context manager discards every statement the
    operation executed — to the database the write never happened, to
    the writer it looks like a transient failure worth retrying.
    """


@dataclass(frozen=True)
class SqliteFaults:
    """Plain-data sqlite fault schedule (one arm of a ``ChaosPlan``).

    ``p_lock`` / ``p_torn`` / ``p_disk`` are per-fault-point injection
    probabilities; ``limit`` bounds the total faults one process will
    inject (a *burst*, after which the database behaves — keeps chaos
    runs convergent), ``None`` means unbounded.  ``seed`` makes the
    draw sequence deterministic per process.
    """

    seed: int = 0
    p_lock: float = 0.0
    p_torn: float = 0.0
    p_disk: float = 0.0
    limit: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("p_lock", "p_torn", "p_disk"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_lock + self.p_torn + self.p_disk > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be >= 0")

    def to_spec(self) -> dict:
        spec = {
            "seed": self.seed,
            "p_lock": self.p_lock,
            "p_torn": self.p_torn,
            "p_disk": self.p_disk,
        }
        if self.limit is not None:
            spec["limit"] = self.limit
        return spec

    @classmethod
    def from_spec(cls, spec: "dict | SqliteFaults | None") -> "SqliteFaults | None":
        if spec is None or isinstance(spec, SqliteFaults):
            return spec
        known = {"seed", "p_lock", "p_torn", "p_disk", "limit"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown SqliteFaults keys: {sorted(unknown)}")
        return cls(**spec)

    def to_env(self) -> str:
        """The :data:`FAULTS_ENV` value that arms subprocesses."""
        return json.dumps(self.to_spec(), sort_keys=True)


class SqliteFaultInjector:
    """Seeded per-process fault source consulted by every fault point.

    The draw sequence is a single RNG stream seeded from
    ``repro.chaos.sqlio:<seed>`` (string seeding — deterministic
    across processes and platforms, the house idiom).  Thread safe:
    service handler threads and the dispatcher share one injector.
    """

    def __init__(self, faults: SqliteFaults) -> None:
        self.faults = faults
        self._rng = random.Random(f"repro.chaos.sqlio:{faults.seed}")
        self._lock = threading.Lock()
        self.injected = 0
        self.points = 0

    def exhausted(self) -> bool:
        limit = self.faults.limit
        return limit is not None and self.injected >= limit

    def draw(self, component: str, phase: str) -> "str | None":
        """The fault to inject at this point, or ``None``.

        ``connect``-phase points can draw ``lock``; ``commit``-phase
        points can draw ``torn`` or ``disk``.  One uniform draw per
        point keeps the sequence deterministic regardless of which
        phase consumes it.
        """
        with self._lock:
            self.points += 1
            if self.exhausted():
                return None
            u = self._rng.random()
            kind: "str | None" = None
            if phase == "connect":
                if u < self.faults.p_lock:
                    kind = "lock"
            else:  # commit
                if u < self.faults.p_torn:
                    kind = "torn"
                elif u < self.faults.p_torn + self.faults.p_disk:
                    kind = "disk"
            if kind is not None:
                self.injected += 1
                _STATS["injected"] += 1
                _STATS[f"injected_{kind}"] += 1
            return kind


# Process-global injector slot.  ``False`` marks "environment not yet
# consulted" so the env lookup happens once per process, lazily — the
# first store/ledger operation of an armed worker installs it.
_INJECTOR: "SqliteFaultInjector | None" = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()

#: Process-wide observability counters (mirrors the spool's ``_STATS``).
_STATS = {
    "injected": 0,
    "injected_lock": 0,
    "injected_torn": 0,
    "injected_disk": 0,
    "retries": 0,
    "giveups": 0,
}


def sqlio_stats() -> dict:
    """A snapshot of this process's injection/retry counters."""
    return dict(_STATS)


def reset_sqlio_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def install_injector(faults: "SqliteFaults | dict | None") -> "SqliteFaultInjector | None":
    """Arm (or, with ``None``, disarm) fault injection in this process."""
    global _INJECTOR, _ENV_CHECKED
    with _INSTALL_LOCK:
        spec = SqliteFaults.from_spec(faults)
        _INJECTOR = SqliteFaultInjector(spec) if spec is not None else None
        _ENV_CHECKED = True  # explicit install wins over the environment
        return _INJECTOR


def uninstall_injector() -> None:
    """Disarm fault injection and forget the environment override."""
    global _INJECTOR, _ENV_CHECKED
    with _INSTALL_LOCK:
        _INJECTOR = None
        _ENV_CHECKED = False


def active_injector() -> "SqliteFaultInjector | None":
    """The installed injector, arming lazily from :data:`FAULTS_ENV`."""
    global _INJECTOR, _ENV_CHECKED
    if _ENV_CHECKED:
        return _INJECTOR
    with _INSTALL_LOCK:
        if not _ENV_CHECKED:
            raw = os.environ.get(FAULTS_ENV, "").strip()
            if raw:
                _INJECTOR = SqliteFaultInjector(
                    SqliteFaults.from_spec(json.loads(raw))
                )
            _ENV_CHECKED = True
    return _INJECTOR


def fault_point(component: str, phase: str) -> None:
    """A possible failure site; raises the drawn fault, if any.

    ``component`` is ``"store"`` or ``"ledger"`` (observability only);
    ``phase`` is ``"connect"`` or ``"commit"``.  No injector — no
    cost beyond one global read.
    """
    injector = active_injector()
    if injector is None:
        return
    kind = injector.draw(component, phase)
    if kind is None:
        return
    if kind == "lock":
        raise sqlite3.OperationalError("database is locked")
    if kind == "torn":
        raise TornWrite("chaos: torn write (transaction rolled back)")
    raise sqlite3.OperationalError("disk I/O error")


def is_transient(exc: BaseException) -> bool:
    """Is this a sqlite failure worth retrying?

    Only :class:`TornWrite` and ``OperationalError`` carrying a known
    transient marker — constraint violations, schema mismatches and
    friends propagate untouched (retrying those would loop forever on
    a real bug).
    """
    if isinstance(exc, TornWrite):
        return True
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return any(marker in message for marker in _TRANSIENT_MARKERS)


def run_with_retry(
    op,
    *,
    clock: "Clock | None" = None,
    attempts: int = 5,
    backoff: float = 0.05,
    cap: float = 0.5,
):
    """Run ``op()`` retrying transient sqlite failures with backoff.

    The schedule is deterministic (no jitter): ``backoff * 2**k``
    capped at ``cap``, slept on the injected clock — under a
    ``VirtualClock`` a full five-attempt storm costs zero wall time.
    After ``attempts`` transient failures the last error propagates
    (and the ``giveups`` counter records that the degradation was no
    longer graceful).
    """
    clock = resolve_clock(clock)
    failure: "BaseException | None" = None
    for attempt in range(attempts):
        if attempt:
            _STATS["retries"] += 1
            clock.sleep(min(backoff * (2.0 ** (attempt - 1)), cap))
        try:
            return op()
        except sqlite3.OperationalError as exc:
            if not is_transient(exc):
                raise
            failure = exc
    _STATS["giveups"] += 1
    assert failure is not None
    raise failure
