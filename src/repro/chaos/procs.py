"""Process chaos: real worker subprocesses under a seeded signal schedule.

The orchestrator spawns ``repro worker`` subprocesses exactly the way
an operator would (``python -m repro worker --ledger ... --store ...``)
and then executes a bound plan's :class:`~repro.chaos.plan.SignalEvent`
timeline against them:

* ``kill`` — SIGKILL, the worker dies mid-shard with no chance to
  clean up; its lease expires and a survivor reclaims the shard.  With
  ``respawn`` enabled (the default) a fresh incarnation takes over the
  slot after a short delay, the way a supervisor would restart a
  crashed process.
* ``stop`` — SIGSTOP, a stop-the-world pause longer than the lease:
  the worker is *alive but frozen*, loses its lease without knowing,
  and is SIGCONT-resumed later to find its attempt token fenced.  This
  is the nastiest case the token guard exists for — a paused process
  that wakes up and keeps writing.

Per-slot environment carries the chaos plan into the subprocesses:
clock skew via ``REPRO_CHAOS_CLOCK_SKEW`` (read by ``repro worker``)
and the sqlite fault burst via ``REPRO_CHAOS_SQLITE`` (armed lazily by
the store/ledger fault points).  Every applied event is journalled
with a monotonic offset so the runner can measure kill→recovery time.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

from .plan import SignalEvent
from .sqlio import FAULTS_ENV, SqliteFaults

__all__ = ["ProcessChaosOrchestrator", "WorkerProcess"]

_SRC = str(Path(__file__).resolve().parents[2])


class WorkerProcess:
    """One worker slot: the live subprocess plus its incarnation count."""

    def __init__(self, slot: int, worker_id: str, popen: subprocess.Popen) -> None:
        self.slot = slot
        self.worker_id = worker_id
        self.popen = popen
        self.incarnation = 0
        self.paused = False

    def alive(self) -> bool:
        return self.popen.poll() is None


class ProcessChaosOrchestrator:
    """Spawn a worker pool and run a signal schedule against it.

    Args:
        ledger / store: the shared sqlite files the workers mount.
        workers: pool size (slot count).
        lease / poll / max_attempts / telemetry: forwarded to each
            ``repro worker`` invocation.
        skews: per-slot clock offsets (a bound plan's ``skews``); short
            tuples pad with zero.
        sqlite: the fault burst each worker process arms itself with
            (``None`` = no injection in workers).
        respawn / respawn_after: replace killed workers, supervisor
            style.
        log: one-line event callback (``None`` = silent).
    """

    def __init__(
        self,
        *,
        ledger: "str | os.PathLike",
        store: "str | os.PathLike",
        workers: int,
        lease: float = 1.0,
        poll: float = 0.05,
        max_attempts: int = 5,
        telemetry: bool = False,
        skews: Sequence[float] = (),
        sqlite: "SqliteFaults | None" = None,
        respawn: bool = True,
        respawn_after: float = 0.5,
        log=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.ledger = str(ledger)
        self.store = str(store)
        self.lease = lease
        self.poll = poll
        self.max_attempts = max_attempts
        self.telemetry = telemetry
        self.skews = tuple(skews) + (0.0,) * max(0, workers - len(skews))
        self.sqlite = sqlite
        self.respawn = respawn
        self.respawn_after = respawn_after
        self._log = log
        self._stopping = threading.Event()
        self._timers: list[threading.Timer] = []
        self._thread: "threading.Thread | None" = None
        self._lock = threading.Lock()
        #: Applied-event journal: dicts with ``at`` (monotonic offset
        #: from schedule start), ``action``, ``slot``, ``worker_id``.
        self.journal: list[dict] = []
        self._t0: "float | None" = None
        self.slots: list[WorkerProcess] = [
            self._spawn(slot, 0) for slot in range(workers)
        ]

    # -- spawning --------------------------------------------------------
    def _spawn(self, slot: int, incarnation: int) -> WorkerProcess:
        worker_id = f"chaos-w{slot}" + (f"r{incarnation}" if incarnation else "")
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        skew = self.skews[slot] if slot < len(self.skews) else 0.0
        if skew:
            env["REPRO_CHAOS_CLOCK_SKEW"] = repr(skew)
        else:
            env.pop("REPRO_CHAOS_CLOCK_SKEW", None)
        if self.sqlite is not None:
            env[FAULTS_ENV] = self.sqlite.to_env()
        else:
            env.pop(FAULTS_ENV, None)
        argv = [
            sys.executable, "-m", "repro", "worker",
            "--ledger", self.ledger, "--store", self.store,
            "--id", worker_id,
            "--lease", str(self.lease),
            "--poll", str(self.poll),
            "--max-attempts", str(self.max_attempts),
        ]
        if self.telemetry:
            argv.append("--telemetry")
        popen = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        proc = WorkerProcess(slot, worker_id, popen)
        proc.incarnation = incarnation
        self._emit(f"spawned {worker_id} (pid {popen.pid}, skew {skew:+.3f}s)")
        return proc

    # -- the schedule ----------------------------------------------------
    def run_schedule(self, signals: Sequence[SignalEvent]) -> None:
        """Execute the event timeline on a background thread."""
        events = sorted(signals, key=lambda e: e.at)
        self._t0 = time.monotonic()

        def loop() -> None:
            assert self._t0 is not None
            for event in events:
                delay = event.at - (time.monotonic() - self._t0)
                if delay > 0 and self._stopping.wait(delay):
                    return
                if self._stopping.is_set():
                    return
                self._apply(event)

        self._thread = threading.Thread(
            target=loop, name="repro-chaos-signals", daemon=True
        )
        self._thread.start()

    def wait_schedule(self, timeout: "float | None" = None) -> None:
        """Block until every scheduled event (and timer) has fired."""
        if self._thread is not None:
            self._thread.join(timeout)
        for timer in list(self._timers):
            timer.join(timeout)

    def _apply(self, event: SignalEvent) -> None:
        slot = event.worker % len(self.slots)
        with self._lock:
            proc = self.slots[slot]
            if not proc.alive():
                self._journal(event.action, proc, note="already-dead")
                return
            if event.action == "kill":
                proc.popen.kill()
                proc.popen.wait(timeout=30)
                self._journal("kill", proc)
                if self.respawn:
                    self._after(
                        self.respawn_after, self._respawn, slot,
                        proc.incarnation + 1,
                    )
            elif event.action == "stop":
                if proc.paused:
                    self._journal("stop", proc, note="already-paused")
                    return
                proc.popen.send_signal(signal.SIGSTOP)
                proc.paused = True
                self._journal("stop", proc)
                self._after(event.resume_after, self._resume, slot)
            else:  # pragma: no cover - plan validation forbids this
                raise ValueError(f"unknown chaos action: {event.action!r}")

    def _respawn(self, slot: int, incarnation: int) -> None:
        if self._stopping.is_set():
            return
        with self._lock:
            self.slots[slot] = self._spawn(slot, incarnation)
            self._journal("respawn", self.slots[slot])

    def _resume(self, slot: int) -> None:
        with self._lock:
            proc = self.slots[slot]
            if proc.paused and proc.alive():
                proc.popen.send_signal(signal.SIGCONT)
                proc.paused = False
                self._journal("cont", proc)

    def _after(self, delay: float, fn, *args) -> None:
        timer = threading.Timer(max(0.0, delay), fn, args=args)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)

    def _journal(self, action: str, proc: WorkerProcess, note: str = "") -> None:
        offset = (
            time.monotonic() - self._t0 if self._t0 is not None else 0.0
        )
        entry = {
            "at": round(offset, 4),
            "action": action,
            "slot": proc.slot,
            "worker_id": proc.worker_id,
        }
        if note:
            entry["note"] = note
        self.journal.append(entry)
        self._emit(f"{action} {proc.worker_id} @ {offset:.2f}s {note}".strip())

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        self._stopping.set()
        for timer in self._timers:
            timer.cancel()
        if self._thread is not None:
            self._thread.join(timeout=5)
        with self._lock:
            for proc in self.slots:
                # A paused worker cannot act on SIGTERM; resume first.
                if proc.paused and proc.alive():
                    try:
                        proc.popen.send_signal(signal.SIGCONT)
                    except OSError:
                        pass
                if proc.alive():
                    proc.popen.terminate()
            for proc in self.slots:
                try:
                    proc.popen.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.popen.kill()
                    proc.popen.wait(timeout=10)

    def __enter__(self) -> "ProcessChaosOrchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _emit(self, message: str) -> None:
        if self._log is not None:
            self._log(f"chaos-procs: {message}")
