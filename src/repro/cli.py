"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — run one formation and render it as ASCII;
* ``batch``       — run a seeded batch and print the statistics table;
* ``election``    — run from a perfectly symmetric start (forces coins);
* ``profile``     — run a batch under the profiler, print phase timings
  and cache-hit counters (optionally as JSON);
* ``version``     — print the package version.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from . import __version__, patterns
from .algorithms import FormPattern
from .analysis import ScenarioSpec, format_table, run_batch_parallel
from .analysis.profile import format_record, profile_batch
from .geometry import Vec2, cache_enabled, set_cache_enabled
from .scheduler import (
    AsyncScheduler,
    FsyncScheduler,
    RoundRobinScheduler,
    SsyncScheduler,
)
from .sim import Simulation
from .viz import render

SCHEDULERS = {
    "fsync": lambda seed: FsyncScheduler(),
    "ssync": lambda seed: SsyncScheduler(seed=seed),
    "async": lambda seed: AsyncScheduler(seed=seed),
    "async-aggressive": lambda seed: AsyncScheduler.aggressive(seed),
    "round-robin": lambda seed: RoundRobinScheduler(),
}

PATTERNS = {
    "polygon": lambda n: patterns.regular_polygon(n),
    "star": lambda n: patterns.star_pattern(max(n // 2, 2)),
    "rings": lambda n: patterns.nested_rings([n - n // 2, n // 2]),
    "random": lambda n: patterns.random_pattern(n, seed=42),
}

#: Registry pattern specs mirroring ``PATTERNS`` (same shapes, but as
#: plain data so the batch command can cross process boundaries).
PATTERN_SPECS = {
    "polygon": lambda n: ("polygon", {"n": n}),
    "star": lambda n: ("star", {"spikes": max(n // 2, 2)}),
    "rings": lambda n: ("rings", {"counts": [n - n // 2, n // 2]}),
    "random": lambda n: ("random", {"n": n, "seed": 42}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic asynchronous arbitrary pattern formation",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run one formation and render it")
    _common(demo)

    batch = sub.add_parser("batch", help="run a seeded batch, print stats")
    _common(batch)
    batch.add_argument("--runs", type=int, default=5)
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial reference path)",
    )
    batch.add_argument(
        "--journal",
        default=None,
        help="append every completed run to this JSONL journal",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="skip seeds already recorded in the journal",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-seed wall-clock budget in seconds",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per seed after transient worker death",
    )

    election = sub.add_parser(
        "election", help="run from a perfectly symmetric start"
    )
    _common(election)

    profile = sub.add_parser(
        "profile",
        help="run a batch under the profiler, print timings + cache hits",
    )
    _common(profile)
    profile.add_argument("--runs", type=int, default=3)
    profile.add_argument(
        "--no-cache",
        action="store_true",
        help="profile with the geometry/terminal-probe caches disabled",
    )
    profile.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write the profile record to this JSON file",
    )

    sub.add_parser("version", help="print the version")
    return parser


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", type=int, default=8, help="number of robots")
    p.add_argument("--pattern", choices=sorted(PATTERNS), default="polygon")
    p.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="async")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--delta", type=float, default=1e-3)
    p.add_argument("--max-steps", type=int, default=400_000)


def cmd_demo(args) -> int:
    pattern = PATTERNS[args.pattern](args.n)
    sim = Simulation.random(
        args.n,
        FormPattern(pattern),
        SCHEDULERS[args.scheduler](args.seed),
        seed=args.seed,
        delta=args.delta,
        max_steps=args.max_steps,
    )
    print("initial:")
    print(render(sim.points(), pattern))
    result = sim.run()
    print("\nfinal:")
    print(render(result.final_configuration.points(), pattern))
    print(f"\nformed={result.pattern_formed} steps={result.steps} "
          f"{result.metrics.summary()}")
    return 0 if result.pattern_formed else 1


def cmd_batch(args) -> int:
    spec = ScenarioSpec(
        name=f"{args.pattern} n={args.n} {args.scheduler}",
        algorithm="form-pattern",
        scheduler=args.scheduler,
        initial=("random", {"n": args.n}),
        pattern=PATTERN_SPECS[args.pattern](args.n),
        max_steps=args.max_steps,
        delta=args.delta,
    )
    try:
        batch = run_batch_parallel(
            spec,
            range(args.seed, args.seed + args.runs),
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            journal=args.journal,
            resume=args.resume,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table([batch.row()]))
    return 0 if batch.success_rate() == 1.0 else 1


def cmd_profile(args) -> int:
    spec = ScenarioSpec(
        name=f"{args.pattern} n={args.n} {args.scheduler}",
        algorithm="form-pattern",
        scheduler=args.scheduler,
        initial=("random", {"n": args.n}),
        pattern=PATTERN_SPECS[args.pattern](args.n),
        max_steps=args.max_steps,
        delta=args.delta,
    )
    was_enabled = cache_enabled()
    if args.no_cache:
        set_cache_enabled(False)
    try:
        batch, record = profile_batch(
            spec, range(args.seed, args.seed + args.runs)
        )
    finally:
        set_cache_enabled(was_enabled)
    print(format_table([batch.row()]))
    print()
    print(format_record(record))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json_path}")
    return 0


def cmd_election(args) -> int:
    pattern = PATTERNS[args.pattern](args.n)
    initial = [
        Vec2.polar(1.0, 0.1 + 2 * math.pi * i / args.n) for i in range(args.n)
    ]
    sim = Simulation(
        initial,
        FormPattern(pattern),
        SCHEDULERS[args.scheduler](args.seed),
        seed=args.seed,
        delta=args.delta,
        max_steps=args.max_steps,
    )
    result = sim.run()
    m = result.metrics
    print(f"formed={result.pattern_formed} steps={result.steps} "
          f"coin_flips={m.coin_flips} bits_per_cycle={m.bits_per_cycle():.4f}")
    return 0 if result.pattern_formed else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "election":
        return cmd_election(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "version":
        print(__version__)
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
