"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — run one formation and render it as ASCII;
* ``batch``       — run a seeded batch and print the statistics table;
* ``election``    — run from a perfectly symmetric start (forces coins);
* ``profile``     — run a batch under the profiler, print phase timings
  and cache-hit counters (optionally as JSON);
* ``serve``       — start the JSON-over-HTTP simulation job service
  (with a durable job ledger; ``--recover`` re-enqueues unfinished
  jobs from a previous process; ``--no-dispatch`` runs it as a
  stateless fabric front-end that only enqueues shards for workers);
* ``worker``      — run one fabric worker: lease shards from a shared
  ledger, execute them, write results through the shared store;
* ``submit``      — submit a batch to a running service and watch it
  (``--shards N`` splits it across the worker fabric);
* ``jobs``        — inspect the durable job ledger (``jobs list``);
* ``store``       — inspect (``store query``) or migrate journals into
  (``store import``) a persistent experiment store;
* ``replay``      — dump a finished run's spooled telemetry frames
  from a store (``--list`` shows which runs have frames); the offline
  sibling of ``GET /v1/runs/<fingerprint>/<seed>/replay``;
* ``chaos``       — run the workload on a real worker fabric under a
  seeded chaos plan (clock skew, sqlite faults, process kills, network
  faults) and audit the recovery invariants against a clean run;
* ``version``     — print the package version.

``serve --telemetry`` / ``worker --telemetry`` switch per-step trace
frames on: the service streams them over
``GET /v1/jobs/<id>/events`` (SSE; viewer at ``/v1/ui``) and spools
them into the store for later ``replay``.  Telemetry is observe-only —
records and the determinism guarantee are unaffected.

``batch`` additionally speaks the fault-injection surface: pick an
adversarial activation policy with ``--adversary`` and add engine-level
fault models with repeated ``--faults name:key=val,...`` flags (see
:mod:`repro.faults`).  With ``--store PATH`` a batch reads previously
stored records instead of re-simulating (printing a
``store: N hits / M misses`` summary) and writes every new record
through for the next run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from . import __version__
from .algorithms import FormPattern
from .analysis import BatchConfig, ScenarioSpec, format_table, run
from .analysis.profile import format_record, profile_batch
from .analysis.scenarios import (
    SCHEDULER_BUILDERS,
    build_pattern,
    build_scheduler,
)
from .chaos.plan import PRESETS as CHAOS_PRESETS
from .faults import POLICY_BUILDERS, parse_fault_specs
from .geometry import Vec2, cache_enabled, set_cache_enabled
from .sim import Simulation
from .viz import render

#: CLI pattern name → registry component spec.  The single source for
#: pattern construction in every command: live patterns (demo/election)
#: are built from the same specs via :func:`build_pattern`, so no
#: parallel live-object registry exists to drift out of sync.
PATTERN_SPECS = {
    "polygon": lambda n: ("polygon", {"n": n}),
    "star": lambda n: ("star", {"spikes": max(n // 2, 2)}),
    "rings": lambda n: ("rings", {"counts": [n - n // 2, n // 2]}),
    "random": lambda n: ("random", {"n": n, "seed": 42}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic asynchronous arbitrary pattern formation",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run one formation and render it")
    _common(demo)

    batch = sub.add_parser("batch", help="run a seeded batch, print stats")
    _common(batch)
    batch.add_argument("--runs", type=int, default=5)
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial reference path)",
    )
    batch.add_argument(
        "--journal",
        default=None,
        help="append every completed run to this JSONL journal",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="skip seeds already recorded in the journal",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-seed wall-clock budget in seconds",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per seed after transient worker death",
    )
    batch.add_argument(
        "--store",
        default=None,
        help="persistent experiment store: serve already-stored seeds "
        "from disk, write new records through",
    )
    batch.add_argument(
        "--engine",
        choices=("scalar", "array"),
        default=None,
        help="execution engine: scalar (bit-exact reference, default) "
        "or array (numpy-backed fast engine; needs 'pip install .[fast]')",
    )
    _fault_flags(batch)

    election = sub.add_parser(
        "election", help="run from a perfectly symmetric start"
    )
    _common(election)

    profile = sub.add_parser(
        "profile",
        help="run a batch under the profiler, print timings + cache hits",
    )
    _common(profile)
    profile.add_argument("--runs", type=int, default=3)
    profile.add_argument(
        "--no-cache",
        action="store_true",
        help="profile with the geometry/terminal-probe caches disabled",
    )
    profile.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write the profile record to this JSON file",
    )
    profile.add_argument(
        "--engine",
        choices=("scalar", "array"),
        default=None,
        help="execution engine to profile (scalar default, array = numpy)",
    )
    _fault_flags(profile)

    serve = sub.add_parser(
        "serve", help="start the JSON-over-HTTP simulation job service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    serve.add_argument(
        "--store", required=True, help="experiment store backing the service"
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="worker processes per batch"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="admission bound on waiting jobs (past it: HTTP 429)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-seed wall-clock budget in seconds",
    )
    serve.add_argument(
        "--ledger",
        default=None,
        help="durable job ledger path (default: <store>.ledger); "
        "'none' disables the ledger",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="re-enqueue the ledger's unfinished (queued/running) jobs",
    )
    serve.add_argument(
        "--job-budget",
        type=float,
        default=None,
        help="watchdog wall budget per job attempt in seconds "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="execution attempts per job before terminal failure",
    )
    serve.add_argument(
        "--no-dispatch",
        action="store_true",
        help="fabric front-end mode: enqueue submissions as ledger "
        "shards for 'repro worker' processes instead of executing "
        "them in-process",
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="emit per-step trace frames: streamed over "
        "GET /v1/jobs/<id>/events (viewer at /v1/ui) and spooled "
        "into the store for replay; observe-only",
    )

    worker = sub.add_parser(
        "worker", help="run one worker of the distributed fabric"
    )
    worker.add_argument(
        "--ledger", required=True, help="shared job ledger (the work queue)"
    )
    worker.add_argument(
        "--store", required=True, help="shared experiment store"
    )
    worker.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="worker identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=15.0,
        help="lease seconds per claim (heartbeats renew at lease/3)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="idle sleep between empty claim attempts",
    )
    worker.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="shard attempts before terminal failure",
    )
    worker.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="process count inside this worker's batches",
    )
    worker.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-seed wall-clock budget in seconds",
    )
    worker.add_argument(
        "--telemetry",
        action="store_true",
        help="spool per-step trace frames into the shared store while "
        "executing (a fabric front-end serves them over SSE)",
    )
    worker.add_argument(
        "--drain",
        action="store_true",
        help="exit once no shard is claimable instead of idling",
    )

    submit = sub.add_parser(
        "submit", help="submit a batch to a running service"
    )
    _common(submit)
    submit.add_argument("--runs", type=int, default=5)
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL"
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=3,
        help="HTTP retries (idempotent calls; backoff with seeded jitter)",
    )
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="TCP connect timeout in seconds",
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=600.0,
        help="overall deadline for polling the job to completion",
    )
    submit.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split the job into N worker-fabric shards (requires a "
        "front-end started with 'serve --no-dispatch')",
    )
    _fault_flags(submit)

    jobs = sub.add_parser(
        "jobs", help="inspect the durable job ledger"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command")
    jobs_list = jobs_sub.add_parser(
        "list", help="print every ledger row in submission order"
    )
    jobs_list.add_argument("--ledger", required=True)
    jobs_list.add_argument(
        "--status",
        choices=["queued", "running", "done", "failed"],
        default=None,
        help="only rows with this status",
    )

    store = sub.add_parser(
        "store", help="inspect or populate a persistent experiment store"
    )
    store_sub = store.add_subparsers(dest="store_command")
    store_query = store_sub.add_parser(
        "query", help="print per-scenario aggregates from a store"
    )
    store_query.add_argument("--store", required=True)
    store_query.add_argument(
        "--fingerprint",
        default=None,
        help="show one workload's aggregate instead of the inventory",
    )
    store_import = store_sub.add_parser(
        "import", help="ingest a JSONL run journal into a store (idempotent)"
    )
    store_import.add_argument("journal", help="journal file to ingest")
    store_import.add_argument("--store", required=True)

    replay = sub.add_parser(
        "replay",
        help="dump a run's spooled telemetry frames from a store",
    )
    replay.add_argument("--store", required=True)
    replay.add_argument(
        "--fingerprint",
        default=None,
        help="workload fingerprint (as shown by 'store query' / --list)",
    )
    replay.add_argument(
        "--seed", type=int, default=None, help="seed of the run to replay"
    )
    replay.add_argument(
        "--list",
        dest="list_runs",
        action="store_true",
        help="list the runs that have spooled frames instead of replaying",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the workload on a real worker fabric under a seeded "
        "chaos plan, then audit the invariants",
    )
    _common(chaos)
    chaos.add_argument("--runs", type=int, default=8)
    chaos.add_argument(
        "--preset",
        choices=sorted(CHAOS_PRESETS),
        default="light",
        help="chaos intensity preset (see repro.chaos.plan.PRESETS)",
    )
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the chaos plan (same seed = same fault schedule)",
    )
    chaos.add_argument(
        "--plan",
        default=None,
        help="JSON file holding a full ChaosPlan spec (overrides --preset)",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument(
        "--shards", type=int, default=4, help="ledger shards for the job"
    )
    chaos.add_argument(
        "--lease",
        type=float,
        default=2.0,
        help="worker lease seconds (short leases make recovery visible)",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        help="directory for the run's stores (default: a fresh temp dir)",
    )
    chaos.add_argument(
        "--telemetry",
        action="store_true",
        help="spool frames and audit SSE replay equality too",
    )
    chaos.add_argument("--timeout", type=float, default=180.0)
    chaos.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the full ChaosResult as JSON",
    )
    _fault_flags(chaos)

    sub.add_parser("version", help="print the version")
    return parser


def _fault_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--adversary",
        choices=sorted(POLICY_BUILDERS),
        default=None,
        help="adversarial activation policy for the async scheduler",
    )
    p.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="NAME[:KEY=VAL,...]",
        help="fault model to inject (repeatable), e.g. "
        "'crash:count=1,window=0..500' or 'truncate:mode=min-delta' "
        "or 'sensor:sigma=1e-6'",
    )
    p.add_argument(
        "--strict-invariants",
        action="store_true",
        help="engine-level runtime verification: end a run with "
        "reason='invariant: ...' if a Move creates a multiplicity "
        "point or undercuts the delta floor",
    )
    p.add_argument(
        "--visibility",
        default=None,
        metavar="full|RADIUS",
        help="sensing model: 'full' (the paper's unlimited visibility, "
        "the default) or a positive radius V for limited(radius=V) "
        "sensing — each Look then observes only the robots within "
        "distance V",
    )


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", type=int, default=8, help="number of robots")
    p.add_argument(
        "--pattern", choices=sorted(PATTERN_SPECS), default="polygon"
    )
    p.add_argument(
        "--scheduler", choices=sorted(SCHEDULER_BUILDERS), default="async"
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--delta", type=float, default=1e-3)
    p.add_argument("--max-steps", type=int, default=400_000)


def _batch_spec(args) -> ScenarioSpec:
    """Build the ScenarioSpec shared by the ``batch`` and ``profile``
    commands, including their ``--adversary`` / ``--faults`` flags."""
    scheduler = (args.scheduler, {})
    adversary = getattr(args, "adversary", None)
    if adversary is not None:
        if args.scheduler != "async":
            raise ValueError(
                "--adversary requires --scheduler async (adversarial "
                "activation policies plug into the ASYNC scheduler)"
            )
        scheduler = ("async", {"policy": adversary})
    faults = None
    fault_args = getattr(args, "faults", None)
    if fault_args:
        faults = parse_fault_specs(fault_args)
    strict = bool(getattr(args, "strict_invariants", False))
    sensing = parse_visibility(getattr(args, "visibility", None))
    label = f"{args.pattern} n={args.n} {args.scheduler}"
    if adversary is not None:
        label += f" adv={adversary}"
    if faults is not None:
        label += " faults=" + ",".join(sorted(faults))
    if strict:
        label += " strict"
    if sensing is not None:
        label += f" visibility={sensing['radius']:g}"
    return ScenarioSpec(
        name=label,
        algorithm="form-pattern",
        scheduler=scheduler,
        initial=("random", {"n": args.n}),
        pattern=PATTERN_SPECS[args.pattern](args.n),
        max_steps=args.max_steps,
        delta=args.delta,
        faults=faults,
        strict_invariants=strict,
        sensing=sensing,
    )


def parse_visibility(raw: "str | None") -> "dict | None":
    """``--visibility`` value to sensing spec: 'full'/None → None,
    a number → ``{"kind": "limited", "radius": V}``."""
    if raw is None or raw == "full":
        return None
    try:
        radius = float(raw)
    except ValueError:
        raise ValueError(
            f"--visibility expects 'full' or a positive radius, got {raw!r}"
        ) from None
    if not radius > 0.0:
        raise ValueError(f"--visibility radius must be positive, got {radius!r}")
    return {"kind": "limited", "radius": radius}


def cmd_demo(args) -> int:
    pattern = build_pattern(PATTERN_SPECS[args.pattern](args.n))
    sim = Simulation.random(
        args.n,
        FormPattern(pattern),
        build_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        delta=args.delta,
        max_steps=args.max_steps,
    )
    print("initial:")
    print(render(sim.points(), pattern))
    result = sim.run()
    print("\nfinal:")
    print(render(result.final_configuration.points(), pattern))
    print(f"\nformed={result.pattern_formed} steps={result.steps} "
          f"{result.metrics.summary()}")
    return 0 if result.pattern_formed else 1


def cmd_batch(args) -> int:
    try:
        spec = _batch_spec(args)
        batch = run(
            spec,
            range(args.seed, args.seed + args.runs),
            BatchConfig(
                workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                journal=args.journal,
                resume=args.resume,
                store=args.store,
                engine=args.engine,
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table([batch.row()]))
    failures = batch.reason_counts()
    if failures:
        breakdown = "  ".join(f"{k}={v}" for k, v in failures.items())
        print(f"failures: {breakdown}")
    if args.store is not None:
        print(
            f"store: {batch.store_hits} hits / {batch.store_misses} misses"
        )
    return 0 if batch.success_rate() == 1.0 else 1


def cmd_profile(args) -> int:
    spec = _batch_spec(args)
    was_enabled = cache_enabled()
    if args.no_cache:
        set_cache_enabled(False)
    try:
        batch, record = profile_batch(
            spec,
            range(args.seed, args.seed + args.runs),
            engine=args.engine,
        )
    finally:
        set_cache_enabled(was_enabled)
    print(format_table([batch.row()]))
    print()
    print(format_record(record))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json_path}")
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from .service import JobService, make_server

    ledger = args.ledger
    if ledger is None:
        ledger = f"{args.store}.ledger"
    elif ledger.lower() == "none":
        ledger = None
    if args.recover and ledger is None:
        print("error: --recover requires a ledger", file=sys.stderr)
        return 2
    if args.no_dispatch and ledger is None:
        print("error: --no-dispatch requires a ledger", file=sys.stderr)
        return 2
    if args.no_dispatch and args.recover:
        print(
            "error: --recover is a dispatcher feature; in --no-dispatch "
            "mode workers re-claim unfinished shards on their own",
            file=sys.stderr,
        )
        return 2
    service = JobService(
        args.store,
        workers=args.workers,
        timeout=args.timeout,
        max_queue=args.max_queue,
        ledger=ledger,
        recover=args.recover,
        job_budget=args.job_budget,
        max_attempts=args.max_attempts,
        dispatch=not args.no_dispatch,
        telemetry=args.telemetry,
    )
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    banner = f"serving on http://{host}:{port} store={args.store}"
    if ledger is not None:
        banner += f" ledger={ledger}"
    if args.no_dispatch:
        banner += " mode=fabric"
    if args.telemetry:
        banner += f" telemetry=on ui=http://{host}:{port}/v1/ui"
    print(banner, flush=True)
    if service.recovered:
        print(
            f"recovered {len(service.recovered)} job(s) from the ledger: "
            + ", ".join(service.recovered),
            flush=True,
        )

    def _shutdown(signum, frame):
        # shutdown() must run off the serve_forever thread or it
        # deadlocks waiting for a loop the handler has suspended.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    finally:
        # Drain: the in-flight job finishes and its records are already
        # committed to the store per seed, so a restart resumes losslessly.
        service.stop(wait=True)
        server.server_close()
        print("drained; store is consistent", flush=True)
    return 0


def cmd_submit(args) -> int:
    from .service import RetryPolicy, ServiceClient, ServiceError

    try:
        spec = _batch_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    seeds = range(args.seed, args.seed + args.runs)
    client = ServiceClient(
        args.url,
        policy=RetryPolicy(
            retries=args.retries, connect_timeout=args.connect_timeout
        ),
    )
    try:
        job = client.submit(spec.to_dict(), seeds, shards=args.shards)
        print(f"job {job['id']} accepted ({job['total']} seeds)")
        if args.no_wait:
            return 0
        final = client.wait(job["id"], timeout=args.wait_timeout)
    except (ServiceError, OSError, TimeoutError) as exc:
        # CircuitOpen (ConnectionError) and JobTimeout (TimeoutError)
        # land here too — the taxonomy keeps them distinguishable in
        # the message without extra clauses.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if final["status"] == "failed":
        print(f"error: job failed: {final['error']}", file=sys.stderr)
        return 2
    print(format_table([final["aggregate"]]))
    if final.get("hits") is not None:
        # The fabric front-end answers from ledger + store and does not
        # track per-job hit counts, so the line is dispatch-mode only.
        print(f"store: {final['hits']} hits / {final['misses']} misses")
    return 0 if final["aggregate"]["success"] == 1.0 else 1


def cmd_worker(args) -> int:
    import signal

    from .chaos.clock import clock_from_env
    from .service import Worker

    try:
        worker = Worker(
            args.ledger,
            args.store,
            worker_id=args.worker_id,
            lease=args.lease,
            poll=args.poll,
            max_attempts=args.max_attempts,
            batch_workers=args.batch_workers,
            timeout=args.timeout,
            telemetry=args.telemetry,
            log=lambda line: print(line, flush=True),
            # Chaos runs skew each worker's clock through the
            # environment (REPRO_CHAOS_CLOCK_SKEW); unset, this is the
            # plain system clock.
            clock=clock_from_env(),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _stop(signum, frame):
        # Finish the current shard, then exit; SIGKILL is the
        # crash-recovery path (lease expiry re-queues the shard).
        worker.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(
        f"worker {worker.worker_id} on ledger={args.ledger} "
        f"store={args.store}",
        flush=True,
    )
    processed = worker.run_forever(drain=args.drain)
    print(f"worker {worker.worker_id} exiting ({processed} shard(s))",
          flush=True)
    return 0


def cmd_jobs(args) -> int:
    import os

    if args.jobs_command != "list":
        print("error: expected 'jobs list'", file=sys.stderr)
        return 2
    if not os.path.exists(args.ledger):
        print(f"error: no such ledger: {args.ledger}", file=sys.stderr)
        return 2
    from .store import JobLedger

    try:
        entries = JobLedger(args.ledger).jobs(status=args.status)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print("(no jobs)")
        return 0
    rows = [
        {
            "id": e.id,
            "status": e.status,
            "attempts": e.attempts,
            "seeds": len(e.seeds),
            "name": e.name,
            "fingerprint": e.fingerprint,
            "error": (
                f"[{e.error_code}] {e.error_message}" if e.error_code else ""
            ),
        }
        for e in entries
    ]
    print(format_table(rows))
    return 0


def cmd_store(args) -> int:
    from .store import ExperimentStore

    if args.store_command == "import":
        try:
            store = ExperimentStore(args.store)
            added, total = store.import_journal(args.journal)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"imported {added} new / {total} journaled records into "
            f"{args.store}"
        )
        return 0
    if args.store_command == "query":
        store = ExperimentStore(args.store)
        if args.fingerprint is not None:
            batch = store.aggregate(args.fingerprint)
            if not batch.runs:
                print(
                    f"error: no records for fingerprint {args.fingerprint}",
                    file=sys.stderr,
                )
                return 2
            print(format_table([batch.row()]))
            return 0
        rows = []
        for scenario in store.scenarios():
            row = {"fingerprint": scenario.fingerprint}
            row.update(store.aggregate(scenario.fingerprint).row())
            rows.append(row)
        print(format_table(rows) if rows else "(empty store)")
        return 0
    print("error: expected 'store query' or 'store import'", file=sys.stderr)
    return 2


def cmd_replay(args) -> int:
    from .store import ExperimentStore

    store = ExperimentStore(args.store)
    if args.list_runs:
        rows = []
        fingerprints = (
            [args.fingerprint]
            if args.fingerprint is not None
            else [s.fingerprint for s in store.scenarios()]
        )
        for fingerprint in fingerprints:
            for seed, count in store.frame_seeds(fingerprint).items():
                rows.append(
                    {"fingerprint": fingerprint, "seed": seed, "frames": count}
                )
        from .analysis import format_table

        print(format_table(rows) if rows else "(no spooled frames)")
        return 0
    if args.fingerprint is None or args.seed is None:
        print(
            "error: replay needs --fingerprint and --seed "
            "(or --list to see what is spooled)",
            file=sys.stderr,
        )
        return 2
    payloads = store.frames(args.fingerprint, args.seed)
    if not payloads:
        print(
            f"error: no spooled frames for ({args.fingerprint}, "
            f"{args.seed}); run the batch under a telemetry-enabled "
            "service or worker first",
            file=sys.stderr,
        )
        return 2
    for payload in payloads:
        print(payload)
    return 0


def cmd_election(args) -> int:
    pattern = build_pattern(PATTERN_SPECS[args.pattern](args.n))
    initial = [
        Vec2.polar(1.0, 0.1 + 2 * math.pi * i / args.n) for i in range(args.n)
    ]
    sim = Simulation(
        initial,
        FormPattern(pattern),
        build_scheduler(args.scheduler, args.seed),
        seed=args.seed,
        delta=args.delta,
        max_steps=args.max_steps,
    )
    result = sim.run()
    m = result.metrics
    print(f"formed={result.pattern_formed} steps={result.steps} "
          f"coin_flips={m.coin_flips} bits_per_cycle={m.bits_per_cycle():.4f}")
    return 0 if result.pattern_formed else 1


def cmd_chaos(args) -> int:
    import tempfile

    from .chaos.plan import ChaosPlan, preset
    from .chaos.runner import run_chaos

    try:
        spec = _batch_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.plan is not None:
        with open(args.plan, "r", encoding="utf-8") as fh:
            plan = ChaosPlan.from_spec(json.load(fh))
    else:
        plan = preset(args.preset, seed=args.chaos_seed)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    seeds = range(args.seed, args.seed + args.runs)
    result = run_chaos(
        spec.to_dict(),
        seeds,
        plan,
        workdir=workdir,
        workers=args.workers,
        shards=args.shards,
        lease=args.lease,
        telemetry=args.telemetry,
        timeout=args.timeout,
        log=None if args.as_json else lambda line: print(line, flush=True),
    )
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.audit.summary())
        print(f"workdir: {workdir}")
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "election":
        return cmd_election(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "jobs":
        return cmd_jobs(args)
    if args.command == "store":
        return cmd_store(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "version":
        print(__version__)
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
