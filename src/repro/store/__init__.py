"""Persistent, content-addressed experiment store.

A sqlite-backed archive of completed :class:`~repro.analysis.batch.RunRecord`
rows, keyed by the canonical :meth:`ScenarioSpec.fingerprint`, the run
seed and the code-schema version.  Resubmitting work the store already
holds is served bit-for-bit from disk instead of re-simulated — the
cross-run memoisation behind ``repro batch --store``, the job service
and the incremental experiment reruns.

See :mod:`repro.store.store` for the full contract.
"""

from .store import (
    CODE_SCHEMA,
    STORE_VERSION,
    ExperimentStore,
    StoredScenario,
    code_schema,
)

__all__ = [
    "CODE_SCHEMA",
    "STORE_VERSION",
    "ExperimentStore",
    "StoredScenario",
    "code_schema",
]
