"""Persistent, content-addressed experiment store.

A sqlite-backed archive of completed :class:`~repro.analysis.batch.RunRecord`
rows, keyed by the canonical :meth:`ScenarioSpec.fingerprint`, the run
seed and the code-schema version.  Resubmitting work the store already
holds is served bit-for-bit from disk instead of re-simulated — the
cross-run memoisation behind ``repro batch --store``, the job service
and the incremental experiment reruns.

The package also houses the durable :class:`~repro.store.ledger.JobLedger`
— the same WAL/short-lived-connection discipline applied to submitted
*jobs* rather than run records, so the job service can recover its
queue after a crash.  Since layout version 2 the ledger doubles as the
worker fabric's lease-based work queue (atomic shard claims,
heartbeats, attempt-token fencing; see :mod:`repro.service.worker`).

See :mod:`repro.store.store` and :mod:`repro.store.ledger` for the
full contracts.
"""

from .ledger import (
    LEDGER_VERSION,
    JobLedger,
    LedgerEntry,
    ShardClaim,
    ShardEntry,
)
from .store import (
    CODE_SCHEMA,
    STORE_VERSION,
    ExperimentStore,
    StoredScenario,
    code_schema,
)

__all__ = [
    "CODE_SCHEMA",
    "LEDGER_VERSION",
    "STORE_VERSION",
    "ExperimentStore",
    "JobLedger",
    "LedgerEntry",
    "ShardClaim",
    "ShardEntry",
    "StoredScenario",
    "code_schema",
]
