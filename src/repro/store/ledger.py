"""Sqlite-backed durable job ledger and lease-based work queue.

The experiment store (:mod:`repro.store.store`) makes individual run
*records* durable; the ledger makes submitted *jobs* durable.  Every
job accepted by :class:`repro.service.jobs.JobService` is written here
— canonical spec, seed list, status, attempt count — **before** the
submission is acknowledged, so a service process can die at any point
(SIGKILL included) and the next ``serve --recover`` process finds the
queued/running jobs and re-enqueues them.  Re-running a recovered job
is cheap because execution goes through the store's read-through:
seeds that committed before the crash come back as hits and only the
in-flight remainder executes.

Leases: the distributed work queue
----------------------------------
Since layout version 2 the ledger is also the coordination point of
the worker fabric (:mod:`repro.service.worker`).  Each job is split at
submission into one or more **shards** — contiguous seed ranges that
independent worker processes lease and execute:

* :meth:`JobLedger.claim_next` — atomically claim the oldest claimable
  shard (``queued``, or ``running`` with an expired lease) for a
  worker id, bumping the shard's attempt counter.  The attempt count
  doubles as the **lease token**: every later write about the shard
  must present it, so a worker that lost its lease (expired, shard
  reclaimed) cannot corrupt the reclaiming worker's state — the same
  attempt-token guard the dispatcher watchdog uses in-process.
* :meth:`JobLedger.heartbeat` — extend a held lease (token-checked).
* :meth:`JobLedger.complete_shard` / :meth:`JobLedger.fail_shard` —
  token-checked terminal transitions; the parent job's status is
  recomputed from its shards in the same transaction.
* :meth:`JobLedger.expire_stale` — return expired-lease shards to
  ``queued`` and terminally fail shards that burned their attempt
  budget, so the death of a worker (SIGKILL included) costs at most
  one lease interval before another worker takes over.

Durability discipline mirrors the store: WAL mode, busy timeout, one
short-lived connection per operation, every status transition its own
committed transaction.  A claim is a single atomic ``UPDATE ...
RETURNING`` — two racing workers can never claim the same shard.

Status lifecycle (jobs and shards alike)::

    queued -> running -> done
                     \\-> failed   (terminal; carries an error code)

``error_code`` values come from the shared taxonomy in
:mod:`repro.service.errors` (the ledger itself stores plain strings to
stay free of service-layer imports).
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..analysis.scenarios import ScenarioSpec, canonical_spec_json
from ..chaos import sqlio
from ..chaos.clock import Clock, resolve_clock

__all__ = [
    "LEDGER_VERSION",
    "JobLedger",
    "LedgerEntry",
    "ShardClaim",
    "ShardEntry",
]

#: Version of the ledger's sqlite layout, recorded in ``meta`` and
#: checked on open.  Version 2 added the ``shards`` work-queue table
#: (lease columns ``claimed_by`` / ``lease_expires`` and the per-shard
#: attempt token); version-1 files are migrated in place on open.
LEDGER_VERSION = 2

_BUSY_TIMEOUT_S = 30.0

_STATUSES = ("queued", "running", "done", "failed")

#: Statuses that mean "work was accepted but never finished" — the
#: recovery set.
_RECOVERABLE = ("queued", "running")


@dataclass(frozen=True)
class LedgerEntry:
    """One ledger row, decoded."""

    id: str
    name: str
    fingerprint: str
    spec: dict
    seeds: tuple[int, ...]
    status: str
    attempts: int
    error_code: str | None
    error_message: str | None
    created_at: float
    updated_at: float


@dataclass(frozen=True)
class ShardEntry:
    """One shard row, decoded: a leasable seed range of a job."""

    job_id: str
    shard: int
    seeds: tuple[int, ...]
    status: str
    attempts: int
    claimed_by: str | None
    lease_expires: float | None
    error_code: str | None
    error_message: str | None
    updated_at: float


@dataclass(frozen=True)
class ShardClaim:
    """A successfully claimed shard: everything a worker needs to run it.

    ``token`` is the shard's attempt counter after the claim — present
    it to :meth:`JobLedger.heartbeat`, :meth:`JobLedger.complete_shard`
    and :meth:`JobLedger.fail_shard`; a stale token (the shard was
    reclaimed after a lease expiry) makes those calls no-ops.
    """

    job_id: str
    shard: int
    seeds: tuple[int, ...]
    spec: dict
    name: str
    fingerprint: str
    token: int
    worker_id: str
    lease_expires: float


def _decode_row(row: tuple) -> LedgerEntry:
    (
        job_id,
        name,
        fingerprint,
        spec_json,
        seeds_json,
        status,
        attempts,
        error_code,
        error_message,
        created_at,
        updated_at,
    ) = row
    return LedgerEntry(
        id=job_id,
        name=name,
        fingerprint=fingerprint,
        spec=json.loads(spec_json),
        seeds=tuple(json.loads(seeds_json)),
        status=status,
        attempts=attempts,
        error_code=error_code,
        error_message=error_message,
        created_at=created_at,
        updated_at=updated_at,
    )


def _decode_shard(row: tuple) -> ShardEntry:
    (
        job_id,
        shard,
        seeds_json,
        status,
        attempts,
        claimed_by,
        lease_expires,
        error_code,
        error_message,
        updated_at,
    ) = row
    return ShardEntry(
        job_id=job_id,
        shard=shard,
        seeds=tuple(json.loads(seeds_json)),
        status=status,
        attempts=attempts,
        claimed_by=claimed_by,
        lease_expires=lease_expires,
        error_code=error_code,
        error_message=error_message,
        updated_at=updated_at,
    )


_COLUMNS = (
    "id, name, fingerprint, spec, seeds, status, attempts,"
    " error_code, error_message, created_at, updated_at"
)

_SHARD_COLUMNS = (
    "job_id, shard, seeds, status, attempts, claimed_by, lease_expires,"
    " error_code, error_message, updated_at"
)


def shard_seeds(seeds: Sequence[int], shards: int) -> list[list[int]]:
    """Split ``seeds`` into ``shards`` contiguous, near-equal ranges.

    The first ``len(seeds) % shards`` ranges get one extra seed, so the
    split is deterministic and balanced; every seed lands in exactly
    one range, in the original order.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > len(seeds):
        raise ValueError(
            f"cannot split {len(seeds)} seed(s) into {shards} shards"
        )
    base, extra = divmod(len(seeds), shards)
    out: list[list[int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(list(seeds[start : start + size]))
        start += size
    return out


class JobLedger:
    """A durable record of every job the service ever accepted.

    Args:
        path: the sqlite file (created, WAL-mode, on first use;
            version-1 files are migrated to the lease-capable layout).
        clock: time source for lease arithmetic and row timestamps
            (``None`` = the real clock).  The seam both de-races the
            virtual-time tests and lets chaos runs skew each worker's
            view of lease expiry.
    """

    def __init__(
        self, path: "str | os.PathLike", *, clock: "Clock | None" = None
    ) -> None:
        self.path = Path(path)
        self._clock = resolve_clock(clock)
        self._write(self._init_db)

    # -- connection management -----------------------------------------
    @contextmanager
    def _connect(self, write: bool = False):
        """One short-lived connection per operation, committed and closed.

        Both ends are chaos fault points: ``connect`` may raise an
        injected ``database is locked`` for any caller; the ``commit``
        point (torn write / failed fsync, still inside the transaction
        scope, so sqlite rolls back) only arms on ``write``
        connections — those failure modes are writer phenomena, and
        only writers run under :meth:`_write`'s bounded backoff.
        """
        sqlio.fault_point("ledger", "connect")
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        try:
            with conn:
                yield conn
                if write:
                    sqlio.fault_point("ledger", "commit")
        finally:
            conn.close()

    def _write(self, op):
        """Run a write op, retrying transient sqlite failures.

        Safe by construction: every ledger write is either keyed
        ``INSERT OR IGNORE``, token-fenced, or a status transition
        guarded by its current status, so re-running a rolled-back
        transaction cannot double-apply.
        """
        return sqlio.run_with_retry(op, clock=self._clock)

    def _init_db(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect(write=True) as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            # ``seq`` preserves submission order across restarts; ``id``
            # is the service-visible handle ("j1", "j2", ...).
            conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " id TEXT NOT NULL UNIQUE,"
                " name TEXT NOT NULL,"
                " fingerprint TEXT NOT NULL,"
                " spec TEXT NOT NULL,"
                " seeds TEXT NOT NULL,"
                " status TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " error_code TEXT,"
                " error_message TEXT,"
                " created_at REAL NOT NULL,"
                " updated_at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS shards ("
                " job_id TEXT NOT NULL,"
                " shard INTEGER NOT NULL,"
                " seeds TEXT NOT NULL,"
                " status TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " claimed_by TEXT,"
                " lease_expires REAL,"
                " error_code TEXT,"
                " error_message TEXT,"
                " updated_at REAL NOT NULL,"
                " PRIMARY KEY (job_id, shard))"
            )
            # INSERT OR IGNORE, not check-then-insert: concurrent first
            # opens (N workers on a fresh ledger) must not race to a
            # UNIQUE-constraint failure.  A pre-existing row survives the
            # IGNORE, so version checks see the original value.
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value)"
                " VALUES ('ledger_version', ?)",
                (str(LEDGER_VERSION),),
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key='ledger_version'"
            ).fetchone()
            if int(row[0]) == 1:
                self._migrate_v1(conn)
            elif int(row[0]) != LEDGER_VERSION:
                raise ValueError(
                    f"ledger {self.path} has layout version {row[0]}, "
                    f"this code expects {LEDGER_VERSION}"
                )

    def _migrate_v1(self, conn: sqlite3.Connection) -> None:
        """In-place v1 -> v2: backfill one shard per existing job.

        Terminal jobs get a matching terminal shard (error fields
        copied); unfinished jobs get a ``queued`` shard covering their
        full seed list, immediately claimable by the worker fabric.
        """
        now = self._clock.time()
        for job_id, seeds_json, status, error_code, error_message in (
            conn.execute(
                "SELECT id, seeds, status, error_code, error_message"
                " FROM jobs ORDER BY seq"
            ).fetchall()
        ):
            shard_status = status if status in ("done", "failed") else "queued"
            conn.execute(
                "INSERT OR IGNORE INTO shards"
                " (job_id, shard, seeds, status, attempts, error_code,"
                "  error_message, updated_at)"
                " VALUES (?, 0, ?, ?, 0, ?, ?, ?)",
                (
                    job_id,
                    seeds_json,
                    shard_status,
                    error_code if shard_status == "failed" else None,
                    error_message if shard_status == "failed" else None,
                    now,
                ),
            )
        conn.execute(
            "UPDATE meta SET value=? WHERE key='ledger_version'",
            (str(LEDGER_VERSION),),
        )

    # -- writing --------------------------------------------------------
    def append(
        self,
        job_id: str,
        spec: "ScenarioSpec | dict",
        seeds: Iterable[int],
        *,
        shards: int = 1,
    ) -> LedgerEntry:
        """Persist a newly submitted job as ``queued``; return the entry.

        The spec is normalised through :class:`ScenarioSpec` so the
        stored form is canonical (same bytes a recovered service will
        re-submit).  ``shards`` splits the seed list into that many
        contiguous leasable ranges (see :func:`shard_seeds`) — one
        shard keeps the pre-fabric behaviour.  Raises ``ValueError``
        on a duplicate job id or an impossible shard count.
        """
        if isinstance(spec, ScenarioSpec):
            normalised = spec
        else:
            normalised = ScenarioSpec.from_dict(dict(spec))
        data = normalised.to_dict()
        seed_list = [int(s) for s in seeds]
        ranges = shard_seeds(seed_list, shards)
        now = self._clock.time()

        def op() -> None:
            with self._connect(write=True) as conn:
                conn.execute(
                    "INSERT INTO jobs"
                    " (id, name, fingerprint, spec, seeds, status, attempts,"
                    "  created_at, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, ?)",
                    (
                        job_id,
                        normalised.name,
                        normalised.fingerprint(),
                        canonical_spec_json(data),
                        json.dumps(seed_list),
                        now,
                        now,
                    ),
                )
                conn.executemany(
                    "INSERT INTO shards"
                    " (job_id, shard, seeds, status, attempts, updated_at)"
                    " VALUES (?, ?, ?, 'queued', 0, ?)",
                    [
                        (job_id, index, json.dumps(chunk), now)
                        for index, chunk in enumerate(ranges)
                    ],
                )

        try:
            self._write(op)
        except sqlite3.IntegrityError as exc:
            raise ValueError(f"job id already in ledger: {job_id}") from exc
        entry = self.get(job_id)
        assert entry is not None
        return entry

    def remove(self, job_id: str) -> bool:
        """Delete a ledger row and its shards (submit rollback)."""

        def op() -> bool:
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute("DELETE FROM jobs WHERE id=?", (job_id,))
                existed = conn.total_changes - before > 0
                conn.execute("DELETE FROM shards WHERE job_id=?", (job_id,))
                return existed

        return self._write(op)

    def set_status(
        self,
        job_id: str,
        status: str,
        *,
        attempts: "int | None" = None,
        error_code: "str | None" = None,
        error_message: "str | None" = None,
    ) -> None:
        """Record a status transition (its own committed transaction).

        ``attempts`` overwrites the attempt counter when given.  The
        error fields always reflect *this* transition: passing
        ``error_code=None`` clears whatever a prior failed attempt left
        behind, so a job can never report a stale error pair for a
        newer, different failure.  Shard rows follow the job: a
        terminal status cascades to every unfinished shard, and
        ``queued`` (recovery) resets the shards, dropping any leases.
        Raises ``KeyError`` for an unknown job id.
        """
        if status not in _STATUSES:
            raise ValueError(f"unknown job status: {status!r}")
        now = self._clock.time()
        sets = ["status=?", "updated_at=?", "error_code=?", "error_message=?"]
        params: list = [status, now, error_code, error_message]
        if attempts is not None:
            sets.append("attempts=?")
            params.append(int(attempts))
        params.append(job_id)

        def op() -> None:
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute(
                    f"UPDATE jobs SET {', '.join(sets)} WHERE id=?", params
                )
                if conn.total_changes - before == 0:
                    raise KeyError(f"no such job in ledger: {job_id}")
                if status in ("done", "failed"):
                    conn.execute(
                        "UPDATE shards SET status=?, claimed_by=NULL,"
                        " lease_expires=NULL, error_code=?, error_message=?,"
                        " updated_at=? WHERE job_id=?"
                        " AND status NOT IN ('done', 'failed')",
                        (status, error_code, error_message, now, job_id),
                    )
                elif status == "queued":
                    conn.execute(
                        "UPDATE shards SET status='queued', claimed_by=NULL,"
                        " lease_expires=NULL, error_code=NULL,"
                        " error_message=NULL, updated_at=? WHERE job_id=?"
                        " AND status NOT IN ('done', 'failed')",
                        (now, job_id),
                    )
                elif status == "running":
                    # The in-process dispatcher owns the job: mark its
                    # queued shards running *without* a lease, which makes
                    # them invisible to claim_next (a NULL lease never
                    # counts as expired).
                    conn.execute(
                        "UPDATE shards SET status='running', updated_at=?"
                        " WHERE job_id=? AND status='queued'",
                        (now, job_id),
                    )

        self._write(op)

    # -- the lease-based work queue -------------------------------------
    def claim_next(
        self,
        worker_id: str,
        *,
        lease: float = 30.0,
        max_attempts: "int | None" = None,
    ) -> ShardClaim | None:
        """Atomically lease the oldest claimable shard, or ``None``.

        Claimable: a ``queued`` shard, or a ``running`` shard whose
        lease expired (its worker died or hung past the lease), on a
        job that is not terminal.  The claim bumps the shard's attempt
        counter — the returned :attr:`ShardClaim.token` — and marks
        the parent job ``running``.  With ``max_attempts`` set, shards
        that already burned that many attempts are skipped (see
        :meth:`expire_stale` for their terminal failure).

        The whole claim is one ``UPDATE ... RETURNING`` statement:
        concurrent workers on one ledger can never lease the same
        shard attempt.
        """
        if lease <= 0:
            raise ValueError("lease must be positive")

        def op():
            now = self._clock.time()
            with self._connect(write=True) as conn:
                row = conn.execute(
                    "UPDATE shards SET status='running', attempts=attempts+1,"
                    " claimed_by=?, lease_expires=?, updated_at=?"
                    " WHERE (job_id, shard) = ("
                    "  SELECT s.job_id, s.shard FROM shards s"
                    "  JOIN jobs j ON j.id = s.job_id"
                    "  WHERE j.status IN ('queued', 'running')"
                    "   AND (s.status='queued'"
                    "        OR (s.status='running'"
                    "            AND s.lease_expires IS NOT NULL"
                    "            AND s.lease_expires <= ?))"
                    "   AND (? IS NULL OR s.attempts < ?)"
                    "  ORDER BY s.rowid LIMIT 1)"
                    " RETURNING job_id, shard, seeds, attempts, lease_expires",
                    (
                        worker_id,
                        now + lease,
                        now,
                        now,
                        max_attempts,
                        max_attempts,
                    ),
                ).fetchone()
                if row is None:
                    return None
                job_id, _shard, _seeds, _attempts, _expires = row
                conn.execute(
                    "UPDATE jobs SET status='running', error_code=NULL,"
                    " error_message=NULL, updated_at=?"
                    " WHERE id=? AND status='queued'",
                    (now, job_id),
                )
                meta = conn.execute(
                    "SELECT name, fingerprint, spec FROM jobs WHERE id=?",
                    (job_id,),
                ).fetchone()
                return row, meta

        result = self._write(op)
        if result is None:
            return None
        (job_id, shard, seeds_json, attempts, lease_expires), meta = result
        name, fingerprint, spec_json = meta
        return ShardClaim(
            job_id=job_id,
            shard=shard,
            seeds=tuple(json.loads(seeds_json)),
            spec=json.loads(spec_json),
            name=name,
            fingerprint=fingerprint,
            token=attempts,
            worker_id=worker_id,
            lease_expires=lease_expires,
        )

    def heartbeat(
        self,
        job_id: str,
        shard: int,
        worker_id: str,
        token: int,
        *,
        lease: float = 30.0,
    ) -> bool:
        """Extend a held lease; ``False`` means the lease was lost.

        Token-checked: a worker whose shard was reclaimed (lease
        expired, another worker bumped the attempt counter) gets
        ``False`` and must stop reporting about the shard.
        """
        def op() -> bool:
            now = self._clock.time()
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute(
                    "UPDATE shards SET lease_expires=?, updated_at=?"
                    " WHERE job_id=? AND shard=? AND claimed_by=?"
                    " AND attempts=? AND status='running'",
                    (now + lease, now, job_id, shard, worker_id, token),
                )
                return conn.total_changes - before > 0

        return self._write(op)

    def complete_shard(
        self, job_id: str, shard: int, worker_id: str, token: int
    ) -> bool:
        """Mark a leased shard ``done``; ``False`` if the lease was lost.

        When this was the job's last unfinished shard the job itself
        goes ``done`` in the same transaction, so readers never observe
        an all-shards-done job still ``running``.
        """
        def op() -> bool:
            now = self._clock.time()
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute(
                    "UPDATE shards SET status='done', claimed_by=NULL,"
                    " lease_expires=NULL, error_code=NULL, error_message=NULL,"
                    " updated_at=?"
                    " WHERE job_id=? AND shard=? AND claimed_by=?"
                    " AND attempts=? AND status='running'",
                    (now, job_id, shard, worker_id, token),
                )
                if conn.total_changes - before == 0:
                    return False
                self._refresh_job_status(conn, job_id, now)
                return True

        return self._write(op)

    def fail_shard(
        self,
        job_id: str,
        shard: int,
        worker_id: str,
        token: int,
        code: "str | None",
        message: "str | None",
        *,
        requeue: bool,
    ) -> bool:
        """Finish a leased shard attempt as failed (token-checked).

        ``requeue=True`` returns the shard to ``queued`` for another
        worker (the error pair is kept on the row for observability);
        ``requeue=False`` is terminal — the shard goes ``failed`` and
        the parent job follows in the same transaction.
        """
        status = "queued" if requeue else "failed"

        def op() -> bool:
            now = self._clock.time()
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute(
                    "UPDATE shards SET status=?, claimed_by=NULL,"
                    " lease_expires=NULL, error_code=?, error_message=?,"
                    " updated_at=?"
                    " WHERE job_id=? AND shard=? AND claimed_by=?"
                    " AND attempts=? AND status='running'",
                    (
                        status,
                        code,
                        message,
                        now,
                        job_id,
                        shard,
                        worker_id,
                        token,
                    ),
                )
                if conn.total_changes - before == 0:
                    return False
                if not requeue:
                    self._refresh_job_status(conn, job_id, now)
                return True

        return self._write(op)

    def expire_stale(self, *, max_attempts: "int | None" = None) -> tuple[int, int]:
        """Reap dead leases; returns ``(requeued, failed)`` shard counts.

        Expired-lease shards go back to ``queued`` (their worker died
        or hung; the attempt counter is kept, so the token guard stays
        intact).  With ``max_attempts`` set, claimable shards that
        already burned the budget go terminal ``failed`` with the
        ``attempts-exhausted`` taxonomy code, failing their job.
        Workers call this before claiming; any process may.
        """
        def op() -> tuple[int, int]:
            now = self._clock.time()
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.execute(
                    "UPDATE shards SET status='queued', claimed_by=NULL,"
                    " lease_expires=NULL, updated_at=?"
                    " WHERE status='running' AND lease_expires IS NOT NULL"
                    " AND lease_expires <= ?"
                    + (
                        " AND attempts < ?"
                        if max_attempts is not None
                        else ""
                    ),
                    (now, now, max_attempts)
                    if max_attempts is not None
                    else (now, now),
                )
                requeued = conn.total_changes - before
                failed = 0
                if max_attempts is not None:
                    rows = conn.execute(
                        "SELECT job_id, shard FROM shards"
                        " WHERE attempts >= ?"
                        " AND (status='queued'"
                        "      OR (status='running'"
                        "          AND lease_expires IS NOT NULL"
                        "          AND lease_expires <= ?))",
                        (max_attempts, now),
                    ).fetchall()
                    for job_id, shard in rows:
                        conn.execute(
                            "UPDATE shards SET status='failed',"
                            " claimed_by=NULL, lease_expires=NULL,"
                            " error_code=?, error_message=?, updated_at=?"
                            " WHERE job_id=? AND shard=?",
                            (
                                "attempts-exhausted",
                                f"gave up after {max_attempts} lease(s)",
                                now,
                                job_id,
                                shard,
                            ),
                        )
                        self._refresh_job_status(conn, job_id, now)
                    failed = len(rows)
                return requeued, failed

        return self._write(op)

    def _refresh_job_status(
        self, conn: sqlite3.Connection, job_id: str, now: float
    ) -> None:
        """Recompute a job's status from its shards (same transaction).

        Any failed shard fails the job (first shard's error pair wins);
        all-done completes it; otherwise the job stays ``running``.
        """
        rows = conn.execute(
            "SELECT status, error_code, error_message FROM shards"
            " WHERE job_id=? ORDER BY shard",
            (job_id,),
        ).fetchall()
        if not rows:
            return
        statuses = [row[0] for row in rows]
        if "failed" in statuses:
            code, message = next(
                (row[1], row[2]) for row in rows if row[0] == "failed"
            )
            conn.execute(
                "UPDATE jobs SET status='failed', error_code=?,"
                " error_message=?, updated_at=? WHERE id=?"
                " AND status NOT IN ('done', 'failed')",
                (code, message, now, job_id),
            )
        elif all(status == "done" for status in statuses):
            conn.execute(
                "UPDATE jobs SET status='done', error_code=NULL,"
                " error_message=NULL, updated_at=? WHERE id=?"
                " AND status NOT IN ('done', 'failed')",
                (now, job_id),
            )

    # -- reading --------------------------------------------------------
    def get(self, job_id: str) -> LedgerEntry | None:
        """Look one job up by id, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_COLUMNS} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        return _decode_row(row) if row is not None else None

    def jobs(self, status: "str | None" = None) -> list[LedgerEntry]:
        """All ledger entries in submission order, optionally filtered."""
        sql = f"SELECT {_COLUMNS} FROM jobs"
        params: Sequence = ()
        if status is not None:
            if status not in _STATUSES:
                raise ValueError(f"unknown job status: {status!r}")
            sql += " WHERE status=?"
            params = (status,)
        sql += " ORDER BY seq"
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [_decode_row(row) for row in rows]

    def shards(self, job_id: str) -> list[ShardEntry]:
        """A job's shard rows in shard order."""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {_SHARD_COLUMNS} FROM shards WHERE job_id=?"
                " ORDER BY shard",
                (job_id,),
            ).fetchall()
        return [_decode_shard(row) for row in rows]

    def shard_progress(self, job_id: str) -> dict[str, int]:
        """Per-status shard counts for one job (plus ``total``)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM shards WHERE job_id=?"
                " GROUP BY status",
                (job_id,),
            ).fetchall()
        counts = {status: 0 for status in _STATUSES}
        counts.update(dict(rows))
        counts["total"] = sum(n for _, n in rows)
        return counts

    def active_workers(self) -> list[str]:
        """Distinct worker ids currently holding a live lease."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT claimed_by FROM shards"
                " WHERE status='running' AND claimed_by IS NOT NULL"
                " AND lease_expires IS NOT NULL AND lease_expires > ?"
                " ORDER BY claimed_by",
                (self._clock.time(),),
            ).fetchall()
        return [row[0] for row in rows]

    def recoverable(self) -> list[LedgerEntry]:
        """Jobs that were accepted but never finished, submission order."""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {_COLUMNS} FROM jobs"
                f" WHERE status IN ({','.join('?' * len(_RECOVERABLE))})"
                " ORDER BY seq",
                _RECOVERABLE,
            ).fetchall()
        return [_decode_row(row) for row in rows]

    def backlog(self) -> dict[str, int]:
        """Per-status row counts (the readiness endpoint's backlog view)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in _STATUSES}
        counts.update(dict(rows))
        return counts

    def count(self) -> int:
        """Total ledger rows."""
        with self._connect() as conn:
            (n,) = conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
        return n

    def next_job_number(self) -> int:
        """First free number for the service's ``j<N>`` id sequence.

        Scans existing ids of that shape so a recovered service keeps
        counting where the dead one stopped (no id reuse, ever).
        """
        with self._connect() as conn:
            rows = conn.execute("SELECT id FROM jobs").fetchall()
        highest = 0
        for (job_id,) in rows:
            match = re.fullmatch(r"j(\d+)", job_id)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1
