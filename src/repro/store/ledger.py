"""Sqlite-backed durable job ledger for the simulation service.

The experiment store (:mod:`repro.store.store`) makes individual run
*records* durable; the ledger makes submitted *jobs* durable.  Every
job accepted by :class:`repro.service.jobs.JobService` is written here
— canonical spec, seed list, status, attempt count — **before** the
submission is acknowledged, so a service process can die at any point
(SIGKILL included) and the next ``serve --recover`` process finds the
queued/running jobs and re-enqueues them.  Re-running a recovered job
is cheap because execution goes through the store's read-through:
seeds that committed before the crash come back as hits and only the
in-flight remainder executes.

Durability discipline mirrors the store: WAL mode, busy timeout, one
short-lived connection per operation, every status transition its own
committed transaction.

Status lifecycle::

    queued -> running -> done
                     \\-> failed   (terminal; carries an error code)

``error_code`` values come from the shared taxonomy in
:mod:`repro.service.errors` (the ledger itself stores plain strings to
stay free of service-layer imports).
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..analysis.scenarios import ScenarioSpec, canonical_spec_json

__all__ = [
    "LEDGER_VERSION",
    "JobLedger",
    "LedgerEntry",
]

#: Version of the ledger's sqlite layout, recorded in ``meta`` and
#: checked on open (same scheme as the store's ``store_version``).
LEDGER_VERSION = 1

_BUSY_TIMEOUT_S = 30.0

_STATUSES = ("queued", "running", "done", "failed")

#: Statuses that mean "work was accepted but never finished" — the
#: recovery set.
_RECOVERABLE = ("queued", "running")


@dataclass(frozen=True)
class LedgerEntry:
    """One ledger row, decoded."""

    id: str
    name: str
    fingerprint: str
    spec: dict
    seeds: tuple[int, ...]
    status: str
    attempts: int
    error_code: str | None
    error_message: str | None
    created_at: float
    updated_at: float


def _decode_row(row: tuple) -> LedgerEntry:
    (
        job_id,
        name,
        fingerprint,
        spec_json,
        seeds_json,
        status,
        attempts,
        error_code,
        error_message,
        created_at,
        updated_at,
    ) = row
    return LedgerEntry(
        id=job_id,
        name=name,
        fingerprint=fingerprint,
        spec=json.loads(spec_json),
        seeds=tuple(json.loads(seeds_json)),
        status=status,
        attempts=attempts,
        error_code=error_code,
        error_message=error_message,
        created_at=created_at,
        updated_at=updated_at,
    )


_COLUMNS = (
    "id, name, fingerprint, spec, seeds, status, attempts,"
    " error_code, error_message, created_at, updated_at"
)


class JobLedger:
    """A durable record of every job the service ever accepted.

    Args:
        path: the sqlite file (created, WAL-mode, on first use).
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = Path(path)
        self._init_db()

    # -- connection management -----------------------------------------
    @contextmanager
    def _connect(self):
        """One short-lived connection per operation, committed and closed."""
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    def _init_db(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            # ``seq`` preserves submission order across restarts; ``id``
            # is the service-visible handle ("j1", "j2", ...).
            conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " id TEXT NOT NULL UNIQUE,"
                " name TEXT NOT NULL,"
                " fingerprint TEXT NOT NULL,"
                " spec TEXT NOT NULL,"
                " seeds TEXT NOT NULL,"
                " status TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " error_code TEXT,"
                " error_message TEXT,"
                " created_at REAL NOT NULL,"
                " updated_at REAL NOT NULL)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key='ledger_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta(key, value) VALUES ('ledger_version', ?)",
                    (str(LEDGER_VERSION),),
                )
            elif int(row[0]) != LEDGER_VERSION:
                raise ValueError(
                    f"ledger {self.path} has layout version {row[0]}, "
                    f"this code expects {LEDGER_VERSION}"
                )

    # -- writing --------------------------------------------------------
    def append(
        self, job_id: str, spec: "ScenarioSpec | dict", seeds: Iterable[int]
    ) -> LedgerEntry:
        """Persist a newly submitted job as ``queued``; return the entry.

        The spec is normalised through :class:`ScenarioSpec` so the
        stored form is canonical (same bytes a recovered service will
        re-submit).  Raises ``ValueError`` on a duplicate job id.
        """
        if isinstance(spec, ScenarioSpec):
            normalised = spec
        else:
            normalised = ScenarioSpec.from_dict(dict(spec))
        data = normalised.to_dict()
        seed_list = [int(s) for s in seeds]
        now = time.time()
        try:
            with self._connect() as conn:
                conn.execute(
                    "INSERT INTO jobs"
                    " (id, name, fingerprint, spec, seeds, status, attempts,"
                    "  created_at, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, ?)",
                    (
                        job_id,
                        normalised.name,
                        normalised.fingerprint(),
                        canonical_spec_json(data),
                        json.dumps(seed_list),
                        now,
                        now,
                    ),
                )
        except sqlite3.IntegrityError as exc:
            raise ValueError(f"job id already in ledger: {job_id}") from exc
        entry = self.get(job_id)
        assert entry is not None
        return entry

    def remove(self, job_id: str) -> bool:
        """Delete a ledger row (submit rollback); True if it existed."""
        with self._connect() as conn:
            before = conn.total_changes
            conn.execute("DELETE FROM jobs WHERE id=?", (job_id,))
            return conn.total_changes - before > 0

    def set_status(
        self,
        job_id: str,
        status: str,
        *,
        attempts: "int | None" = None,
        error_code: "str | None" = None,
        error_message: "str | None" = None,
    ) -> None:
        """Record a status transition (its own committed transaction).

        ``attempts`` overwrites the attempt counter when given;
        ``error_code``/``error_message`` are written as-is (pass values
        from :class:`repro.service.errors.ErrorCode`).  Raises
        ``KeyError`` for an unknown job id.
        """
        if status not in _STATUSES:
            raise ValueError(f"unknown job status: {status!r}")
        sets = ["status=?", "updated_at=?"]
        params: list = [status, time.time()]
        if attempts is not None:
            sets.append("attempts=?")
            params.append(int(attempts))
        if error_code is not None or status in ("done", "queued", "running"):
            # Terminal failures set a code; any forward transition
            # clears stale error fields from a prior failed attempt.
            sets.append("error_code=?")
            sets.append("error_message=?")
            params.extend([error_code, error_message])
        params.append(job_id)
        with self._connect() as conn:
            before = conn.total_changes
            conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id=?", params
            )
            if conn.total_changes - before == 0:
                raise KeyError(f"no such job in ledger: {job_id}")

    # -- reading --------------------------------------------------------
    def get(self, job_id: str) -> LedgerEntry | None:
        """Look one job up by id, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_COLUMNS} FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        return _decode_row(row) if row is not None else None

    def jobs(self, status: "str | None" = None) -> list[LedgerEntry]:
        """All ledger entries in submission order, optionally filtered."""
        sql = f"SELECT {_COLUMNS} FROM jobs"
        params: Sequence = ()
        if status is not None:
            if status not in _STATUSES:
                raise ValueError(f"unknown job status: {status!r}")
            sql += " WHERE status=?"
            params = (status,)
        sql += " ORDER BY seq"
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [_decode_row(row) for row in rows]

    def recoverable(self) -> list[LedgerEntry]:
        """Jobs that were accepted but never finished, submission order."""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {_COLUMNS} FROM jobs"
                f" WHERE status IN ({','.join('?' * len(_RECOVERABLE))})"
                " ORDER BY seq",
                _RECOVERABLE,
            ).fetchall()
        return [_decode_row(row) for row in rows]

    def backlog(self) -> dict[str, int]:
        """Per-status row counts (the readiness endpoint's backlog view)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in _STATUSES}
        counts.update(dict(rows))
        return counts

    def count(self) -> int:
        """Total ledger rows."""
        with self._connect() as conn:
            (n,) = conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
        return n

    def next_job_number(self) -> int:
        """First free number for the service's ``j<N>`` id sequence.

        Scans existing ids of that shape so a recovered service keeps
        counting where the dead one stopped (no id reuse, ever).
        """
        with self._connect() as conn:
            rows = conn.execute("SELECT id FROM jobs").fetchall()
        highest = 0
        for (job_id,) in rows:
            match = re.fullmatch(r"j(\d+)", job_id)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1
