"""Sqlite-backed experiment store with content-addressed run records.

Identity
--------
A stored run is keyed by three things:

* the **workload fingerprint** — the canonical
  :func:`repro.analysis.scenarios.spec_fingerprint` digest of the
  :class:`~repro.analysis.scenarios.ScenarioSpec` (pattern, algorithm,
  scheduler, frame policy, tuning parameters and the ``FaultPlan``
  spec all participate);
* the **seed**;
* the **code schema** — a digest over the :class:`RunRecord` field list
  and the journal encoding version, so records written by an
  incompatible earlier layout are never served as hits for current
  code (they stay in the file, invisible to lookups).

Bit-exactness
-------------
Records are persisted as their journal JSON encoding
(:func:`repro.analysis.journal.encode_record`): floats round-trip via
``repr`` and NaN/Inf are encoded as the same string sentinels the
journal uses, so a record read back from the store compares equal
field-for-field with the record that was written — the property the
``repro batch --store`` resubmission guarantee rests on.

Concurrency & durability
------------------------
The database runs in WAL mode with a busy timeout, and every operation
opens its own short-lived connection (never held across a fork, never
shared between threads), so the process pool's parent writer, the job
service's dispatcher thread and any number of CLI readers can touch one
store file concurrently.  Each ``put`` is its own committed
transaction: a SIGKILL loses at most rows that had not yet committed,
and WAL recovery on the next open preserves everything that had.
Writes are ``INSERT OR IGNORE`` — re-inserting an existing
``(fingerprint, seed, schema)`` key is a no-op, which makes journal
imports and resubmissions idempotent by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Sequence

from ..analysis.batch import BatchResult, RunRecord
from ..analysis.journal import JOURNAL_VERSION, decode_record, encode_record
from ..analysis.scenarios import ScenarioSpec, canonical_spec_json, spec_fingerprint
from ..chaos import sqlio
from ..chaos.clock import Clock, resolve_clock
from ..telemetry.frames import FRAME_SCHEMA_VERSION

__all__ = [
    "CODE_SCHEMA",
    "STORE_VERSION",
    "ExperimentStore",
    "StoredScenario",
    "code_schema",
]

#: Version of the sqlite layout itself (tables/columns), recorded in
#: ``meta`` and checked on open.
STORE_VERSION = 1

_BUSY_TIMEOUT_S = 30.0


def code_schema() -> str:
    """Digest of the run-record layout current code produces.

    Changes whenever :class:`RunRecord` gains/loses/renames a field or
    the journal encoding version moves, invalidating stored rows as
    cache hits without any manual migration step.
    """
    layout = ",".join(f.name for f in fields(RunRecord))
    basis = f"v{JOURNAL_VERSION}:{layout}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]


#: The digest for the interpreter's current RunRecord layout.
CODE_SCHEMA = code_schema()


@dataclass(frozen=True)
class StoredScenario:
    """One scenario row: identity, human name, spec and run count."""

    fingerprint: str
    name: str
    spec: dict
    runs: int


def _fingerprint_of(spec: "ScenarioSpec | dict | str") -> str:
    if isinstance(spec, str):
        return spec
    if isinstance(spec, ScenarioSpec):
        return spec.fingerprint()
    return spec_fingerprint(spec)


class ExperimentStore:
    """A durable, deduplicating archive of run records.

    Args:
        path: the sqlite file (created, WAL-mode, on first use).
        clock: time source for the writers' retry backoff (``None`` =
            the real clock; tests inject a virtual one).
    """

    def __init__(
        self, path: "str | os.PathLike", *, clock: "Clock | None" = None
    ) -> None:
        self.path = Path(path)
        self._clock = resolve_clock(clock)
        self._write(self._init_db)

    # -- connection management -----------------------------------------
    @contextmanager
    def _connect(self, write: bool = False):
        """One short-lived connection per operation, committed and closed.

        ``sqlite3``'s own context manager only scopes the transaction;
        closing explicitly keeps the per-operation discipline honest
        (no handle survives into a forked worker or another thread).
        Both ends are chaos fault points (see :mod:`repro.chaos.sqlio`):
        ``connect`` may raise an injected ``database is locked`` for
        any caller; the ``commit`` point (torn write / failed fsync —
        still inside the transaction scope, so sqlite rolls back and
        the operation can be retried whole) only arms on ``write``
        connections, because those failure modes are writer phenomena
        and only writers run under the retry wrapper.
        """
        sqlio.fault_point("store", "connect")
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        try:
            with conn:
                yield conn
                if write:
                    sqlio.fault_point("store", "commit")
        finally:
            conn.close()

    def _write(self, op):
        """Run a write op, retrying transient sqlite failures.

        Every store write is ``INSERT OR IGNORE`` on a content-derived
        key, so re-running a rolled-back transaction is idempotent by
        construction — a transient ``database is locked`` degrades to
        a short backoff instead of killing the writer's shard.
        """
        return sqlio.run_with_retry(op, clock=self._clock)

    def _init_db(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect(write=True) as conn:
            # WAL is a persistent database property: set once, every
            # later connection (any process) inherits it.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS scenarios ("
                " fingerprint TEXT PRIMARY KEY,"
                " name TEXT NOT NULL,"
                " spec TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                " fingerprint TEXT NOT NULL,"
                " seed INTEGER NOT NULL,"
                " schema TEXT NOT NULL,"
                " formed INTEGER NOT NULL,"
                " terminated INTEGER NOT NULL,"
                " reason TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " PRIMARY KEY (fingerprint, seed, schema))"
            )
            # Telemetry frame spool (PR 8).  Additive: an old reader
            # simply never touches the table, so STORE_VERSION stays 1.
            # ``version`` is the frame schema version, keying payload
            # shape the same way ``schema`` keys run payloads; rowid
            # stays implicit and monotonic, which is what the fabric
            # front-end's SSE tailing cursors over.
            conn.execute(
                "CREATE TABLE IF NOT EXISTS frames ("
                " fingerprint TEXT NOT NULL,"
                " seed INTEGER NOT NULL,"
                " version INTEGER NOT NULL,"
                " idx INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                " PRIMARY KEY (fingerprint, seed, version, idx))"
            )
            # INSERT OR IGNORE, not check-then-insert: concurrent first
            # opens of the same fresh store (N fabric workers) must not
            # race to a UNIQUE-constraint failure.  A pre-existing row
            # survives the IGNORE, so the version check still sees it.
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value)"
                " VALUES ('store_version', ?)",
                (str(STORE_VERSION),),
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key='store_version'"
            ).fetchone()
            if int(row[0]) != STORE_VERSION:
                raise ValueError(
                    f"store {self.path} has layout version {row[0]}, "
                    f"this code expects {STORE_VERSION}"
                )

    # -- writing --------------------------------------------------------
    def register(self, spec: "ScenarioSpec | dict") -> str:
        """Ensure the scenario row exists; return its fingerprint."""
        if isinstance(spec, ScenarioSpec):
            data, name = spec.to_dict(), spec.name
        else:
            normalised = ScenarioSpec.from_dict(spec)
            data, name = normalised.to_dict(), normalised.name
        fingerprint = _fingerprint_of(data)

        def op() -> None:
            with self._connect(write=True) as conn:
                conn.execute(
                    "INSERT OR IGNORE INTO scenarios(fingerprint, name, spec)"
                    " VALUES (?, ?, ?)",
                    (fingerprint, name, canonical_spec_json(data)),
                )

        self._write(op)
        return fingerprint

    def put(self, spec: "ScenarioSpec | dict | str", record: RunRecord) -> bool:
        """Persist one record; return True if it was new.

        Idempotent: an existing ``(fingerprint, seed, schema)`` row is
        left untouched (first write wins — identical content anyway,
        since the key pins the workload, the seed and the code schema).
        """
        return self.put_many(spec, [record]) == 1

    def put_many(
        self, spec: "ScenarioSpec | dict | str", records: Iterable[RunRecord]
    ) -> int:
        """Persist many records in one transaction; return the new-row count.

        Passing a full spec (rather than a bare fingerprint) also
        registers the scenario row, so records are always reachable
        from the inventory.
        """
        if isinstance(spec, str):
            fingerprint = spec
        else:
            fingerprint = self.register(spec)
        rows = [
            (
                fingerprint,
                record.seed,
                CODE_SCHEMA,
                int(record.formed),
                int(record.terminated),
                record.reason,
                encode_record(record),
            )
            for record in records
        ]

        def op() -> int:
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.executemany(
                    "INSERT OR IGNORE INTO runs"
                    " (fingerprint, seed, schema, formed, terminated, reason,"
                    "  payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
                return conn.total_changes - before

        return self._write(op)

    # -- frame spool ----------------------------------------------------
    def put_frames(
        self,
        spec: "ScenarioSpec | dict | str",
        seed: int,
        payloads: Sequence[str],
        *,
        start_idx: int = 0,
        version: int = FRAME_SCHEMA_VERSION,
    ) -> int:
        """Spool encoded telemetry frames; return the new-row count.

        ``payloads`` are :func:`repro.telemetry.frames.encode_frame`
        strings stored verbatim — replay serves the exact bytes the
        live stream emitted.  ``INSERT OR IGNORE`` on the
        ``(fingerprint, seed, version, idx)`` key makes worker retries
        and resubmissions no-ops (frames are deterministic, so the
        ignored duplicates are byte-identical to the kept rows).
        """
        fingerprint = _fingerprint_of(spec)
        rows = [
            (fingerprint, int(seed), int(version), start_idx + offset, payload)
            for offset, payload in enumerate(payloads)
        ]

        def op() -> int:
            with self._connect(write=True) as conn:
                before = conn.total_changes
                conn.executemany(
                    "INSERT OR IGNORE INTO frames"
                    " (fingerprint, seed, version, idx, payload)"
                    " VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
                return conn.total_changes - before

        return self._write(op)

    def frames(
        self,
        spec: "ScenarioSpec | dict | str",
        seed: int,
        *,
        start_idx: int = 0,
        limit: "int | None" = None,
        version: int = FRAME_SCHEMA_VERSION,
    ) -> list[str]:
        """A run's spooled frame payloads, in emission order."""
        fingerprint = _fingerprint_of(spec)
        sql = (
            "SELECT payload FROM frames"
            " WHERE fingerprint=? AND seed=? AND version=? AND idx>=?"
            " ORDER BY idx"
        )
        params: list = [fingerprint, int(seed), int(version), int(start_idx)]
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [row[0] for row in rows]

    def frame_seeds(
        self,
        spec: "ScenarioSpec | dict | str",
        *,
        version: int = FRAME_SCHEMA_VERSION,
    ) -> dict[int, int]:
        """``seed -> frame count`` for every spooled run of a workload."""
        fingerprint = _fingerprint_of(spec)
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT seed, COUNT(*) FROM frames"
                " WHERE fingerprint=? AND version=?"
                " GROUP BY seed ORDER BY seed",
                (fingerprint, int(version)),
            ).fetchall()
        return {seed: count for seed, count in rows}

    def frames_after(
        self,
        spec: "ScenarioSpec | dict | str",
        cursor: int = 0,
        *,
        limit: int = 1024,
        version: int = FRAME_SCHEMA_VERSION,
    ) -> list[tuple[int, int, int, str]]:
        """Spool rows past a rowid cursor: ``(rowid, seed, idx, payload)``.

        The tailing primitive behind fabric-mode SSE: the front-end
        holds the last rowid it forwarded and polls for what workers
        appended since.  Rowids are monotonic per insert, so the cursor
        never re-serves a row and never skips one.
        """
        fingerprint = _fingerprint_of(spec)
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT rowid, seed, idx, payload FROM frames"
                " WHERE fingerprint=? AND version=? AND rowid>?"
                " ORDER BY rowid LIMIT ?",
                (fingerprint, int(version), int(cursor), int(limit)),
            ).fetchall()
        return [(rowid, seed, idx, payload) for rowid, seed, idx, payload in rows]

    # -- reading --------------------------------------------------------
    def get(self, spec: "ScenarioSpec | dict | str", seed: int) -> RunRecord | None:
        """The stored record for ``(spec, seed)``, or ``None``."""
        fingerprint = _fingerprint_of(spec)
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM runs WHERE fingerprint=? AND seed=?"
                " AND schema=?",
                (fingerprint, int(seed), CODE_SCHEMA),
            ).fetchone()
        if row is None:
            return None
        return decode_record(json.loads(row[0]))

    def query(
        self,
        spec: "ScenarioSpec | dict | str",
        seeds: "Sequence[int] | None" = None,
    ) -> dict[int, RunRecord]:
        """All stored records of a workload, optionally seed-filtered.

        Returns a ``seed -> RunRecord`` mapping; records decode
        bit-for-bit equal to the ones originally committed.
        """
        fingerprint = _fingerprint_of(spec)
        sql = (
            "SELECT seed, payload FROM runs"
            " WHERE fingerprint=? AND schema=?"
        )
        params: list = [fingerprint, CODE_SCHEMA]
        if seeds is not None:
            wanted = [int(s) for s in seeds]
            if not wanted:
                return {}
            sql += f" AND seed IN ({','.join('?' * len(wanted))})"
            params.extend(wanted)
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return {seed: decode_record(json.loads(payload)) for seed, payload in rows}

    def seeds(self, spec: "ScenarioSpec | dict | str") -> set[int]:
        """The seeds a workload already has committed records for."""
        fingerprint = _fingerprint_of(spec)
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT seed FROM runs WHERE fingerprint=? AND schema=?",
                (fingerprint, CODE_SCHEMA),
            ).fetchall()
        return {row[0] for row in rows}

    def aggregate(self, spec: "ScenarioSpec | dict | str") -> BatchResult:
        """A :class:`BatchResult` over every stored record of a workload.

        Runs come back seed-ordered, so the aggregate of a fully stored
        batch equals the live batch's aggregate bit-for-bit.
        """
        records = self.query(spec)
        name = None
        if isinstance(spec, ScenarioSpec):
            name = spec.name
        elif isinstance(spec, dict):
            name = spec.get("name")
        else:
            scenario = self.scenario(spec)
            name = scenario.name if scenario else spec
        batch = BatchResult(name or "stored")
        batch.runs = [records[s] for s in sorted(records)]
        return batch

    def scenario(self, fingerprint: str) -> StoredScenario | None:
        """Look one scenario row up by fingerprint."""
        for scenario in self.scenarios():
            if scenario.fingerprint == fingerprint:
                return scenario
        return None

    def scenarios(self) -> list[StoredScenario]:
        """Every registered scenario with its stored-run count."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT s.fingerprint, s.name, s.spec,"
                " (SELECT COUNT(*) FROM runs r"
                "   WHERE r.fingerprint = s.fingerprint AND r.schema = ?)"
                " FROM scenarios s ORDER BY s.name, s.fingerprint",
                (CODE_SCHEMA,),
            ).fetchall()
        return [
            StoredScenario(
                fingerprint=fp, name=name, spec=json.loads(spec), runs=count
            )
            for fp, name, spec, count in rows
        ]

    def count(self) -> int:
        """Total stored run rows for the current code schema."""
        with self._connect() as conn:
            (n,) = conn.execute(
                "SELECT COUNT(*) FROM runs WHERE schema=?", (CODE_SCHEMA,)
            ).fetchone()
        return n

    # -- migration ------------------------------------------------------
    def import_journal(self, path: "str | os.PathLike") -> tuple[int, int]:
        """Ingest a JSONL run journal; return ``(new_rows, total_rows)``.

        Idempotent: re-importing the same journal adds zero rows.  The
        journal's own loader semantics apply — a truncated final line
        (killed writer) is tolerated, corruption anywhere else raises.
        The scenario identity is re-derived canonically from the
        metadata line's embedded spec when present, falling back to the
        recorded fingerprint for old journals without one.
        """
        from ..analysis.journal import RunJournal

        if not os.path.exists(path):
            raise FileNotFoundError(f"no such journal: {path}")
        state = RunJournal(path).load()
        if state.meta is None:
            raise ValueError(f"journal {path} has no metadata line")
        spec_data = state.meta.get("spec")
        if spec_data is not None:
            fingerprint = self.register(spec_data)
        else:
            fingerprint = state.meta.get("fingerprint")
            if not fingerprint:
                raise ValueError(
                    f"journal {path} metadata carries neither a spec "
                    "nor a fingerprint"
                )
            def op() -> None:
                with self._connect(write=True) as conn:
                    conn.execute(
                        "INSERT OR IGNORE INTO scenarios"
                        " (fingerprint, name, spec) VALUES (?, ?, ?)",
                        (
                            fingerprint,
                            state.meta.get("scenario", "imported"),
                            json.dumps(None),
                        ),
                    )

            self._write(op)
        records = [state.records[s] for s in sorted(state.records)]
        added = self.put_many(fingerprint, records)
        return added, len(records)
