"""The unified observation-hook protocol (``repro.hooks``).

Three hook shapes grew independently across the codebase:

* ``BatchConfig(on_record=...)`` — a bare callable fired per committed
  :class:`~repro.analysis.batch.RunRecord`;
* :func:`repro.analysis.profile.on_record` — a module-global registry
  of callables fired per :class:`ProfileRecord`;
* the per-step frame hook the telemetry layer adds.

This module consolidates them behind one documented *sink* protocol.
A sink is any object exposing a subset of three methods::

    class MySink:
        def on_record(self, record): ...    # per committed RunRecord
        def on_frame(self, frame): ...      # per TraceFrame (per step)
        def on_profile(self, record): ...   # per ProfileRecord

All methods are optional and presence-checked (duck typing, not
``isinstance``): a sink that lacks ``on_frame`` never pays the
per-step cost — the engine only emits frames when someone listens.
:class:`FunctionSink` adapts bare callables, :class:`CompositeSink`
fans one event out to several sinks, and :func:`as_sink` is the
resolver the facade uses to merge the new ``telemetry=`` argument with
the legacy keyword forms.

Legacy keyword forms keep working through these adapters but warn
**once per process** with a :class:`DeprecationWarning` (CI runs with
``-W error::DeprecationWarning``, so in-tree callers are migrated).
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Callable, Protocol

__all__ = [
    "CompositeSink",
    "FrameHook",
    "FunctionSink",
    "ProfileHook",
    "RecordHook",
    "TelemetrySink",
    "as_sink",
    "frame_hook",
    "profile_hook",
    "record_hook",
    "reset_deprecation_warnings",
    "spool_only_sink",
    "warn_once",
]

#: Per committed RunRecord (store hits included).
RecordHook = Callable[[Any], None]
#: Per applied scheduler action (a TraceFrame).
FrameHook = Callable[[Any], None]
#: Per emitted ProfileRecord.
ProfileHook = Callable[[Any], None]


class TelemetrySink(Protocol):
    """Documentation protocol for sinks — every method is optional.

    Consumers never ``isinstance``-check against this: they probe with
    :func:`record_hook` / :func:`frame_hook` / :func:`profile_hook`,
    which return the bound method when present and ``None`` otherwise.
    """

    def on_record(self, record) -> None: ...

    def on_frame(self, frame) -> None: ...

    def on_profile(self, record) -> None: ...


def _hook(sink, name: str) -> "Callable | None":
    if sink is None:
        return None
    candidate = getattr(sink, name, None)
    return candidate if callable(candidate) else None


def record_hook(sink) -> "RecordHook | None":
    """The sink's ``on_record`` method, or ``None`` if it has none."""
    return _hook(sink, "on_record")


def frame_hook(sink) -> "FrameHook | None":
    """The sink's ``on_frame`` method, or ``None`` if it has none."""
    return _hook(sink, "on_frame")


def profile_hook(sink) -> "ProfileHook | None":
    """The sink's ``on_profile`` method, or ``None`` if it has none."""
    return _hook(sink, "on_profile")


class FunctionSink:
    """Adapt bare callables into a sink.

    Only the hooks actually provided become attributes, so a
    ``FunctionSink(on_record=...)`` does *not* advertise ``on_frame``
    and therefore does not switch per-step frame emission on.
    """

    def __init__(
        self,
        *,
        on_record: "RecordHook | None" = None,
        on_frame: "FrameHook | None" = None,
        on_profile: "ProfileHook | None" = None,
    ) -> None:
        if on_record is not None:
            self.on_record = on_record
        if on_frame is not None:
            self.on_frame = on_frame
        if on_profile is not None:
            self.on_profile = on_profile

    def __repr__(self) -> str:
        hooks = [
            name
            for name in ("on_record", "on_frame", "on_profile")
            if hasattr(self, name)
        ]
        return f"FunctionSink({', '.join(hooks) or 'empty'})"


class CompositeSink:
    """Fan one event out to several sinks, in registration order.

    Advertises a hook only when at least one child does, preserving the
    "no listener, no cost" property of the probe helpers.
    """

    def __init__(self, *sinks) -> None:
        self.sinks = tuple(s for s in sinks if s is not None)
        for name in ("on_record", "on_frame", "on_profile"):
            hooks = [_hook(s, name) for s in self.sinks]
            hooks = [h for h in hooks if h is not None]
            if hooks:
                setattr(self, name, _fan_out(hooks))


def _fan_out(hooks):
    if len(hooks) == 1:
        return hooks[0]

    def dispatch(event, _hooks=tuple(hooks)):
        for hook in _hooks:
            hook(event)

    return dispatch


def as_sink(
    telemetry=None,
    *,
    on_record: "RecordHook | None" = None,
    on_frame: "FrameHook | None" = None,
    on_profile: "ProfileHook | None" = None,
):
    """Merge a sink object with loose callables into one sink (or None).

    This is the facade's resolver: ``telemetry=`` (a sink) and the
    callable keywords compose — every provided part observes every
    event.  Returns ``None`` when nothing was provided, so callers can
    skip the hook path entirely.
    """
    loose = {}
    if on_record is not None:
        loose["on_record"] = on_record
    if on_frame is not None:
        loose["on_frame"] = on_frame
    if on_profile is not None:
        loose["on_profile"] = on_profile
    parts = []
    if telemetry is not None:
        parts.append(telemetry)
    if loose:
        parts.append(FunctionSink(**loose))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return CompositeSink(*parts)


def _discard_frame(frame) -> None:
    """Advertise frame interest without observing frames."""


def spool_only_sink() -> FunctionSink:
    """A sink that turns frame emission on without consuming frames.

    Fabric workers use it: the facade spools frames to the shared store
    whenever the sink advertises ``on_frame`` and a store is attached,
    and the worker has no live subscriber of its own.
    """
    return FunctionSink(on_frame=_discard_frame)


# -- one-shot deprecation warnings --------------------------------------
_WARNED_LOCK = threading.Lock()
_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process.

    The legacy keyword adapters funnel through here so a tight loop
    constructing configs does not flood stderr, while CI's
    ``-W error::DeprecationWarning`` still fails fast on the first use.
    """
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which one-shot warnings fired (test isolation hook)."""
    with _WARNED_LOCK:
        _WARNED.clear()
