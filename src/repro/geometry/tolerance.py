"""Tolerant floating-point comparisons used by every geometric predicate.

Robots in the paper compute with exact real arithmetic.  A float-based
simulator must instead decide questions such as "are these two angles
equal?" or "is this point on that circle?" up to a tolerance.  All such
decisions in this library go through this module so that the notion of
equality is consistent everywhere.

The default absolute tolerance is chosen for configurations whose smallest
enclosing circle has radius O(1) (the library normalises configurations to
unit enclosing radius before running algorithms), which keeps round-trip
error through local-frame transforms several orders of magnitude below it.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: Default absolute tolerance for coordinates, distances and angles.
EPS = 1e-7

#: Tighter tolerance used when *snapping* computed destinations to their
#: canonical geometric value (exact radius, exact pattern point).
SNAP_EPS = 1e-9


def is_zero(value: float, eps: float = EPS) -> bool:
    """Return True when ``value`` is indistinguishable from zero."""
    return abs(value) <= eps


def approx_eq(a: float, b: float, eps: float = EPS) -> bool:
    """Return True when the two scalars are equal up to ``eps``."""
    return abs(a - b) <= eps


def approx_le(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a <= b`` (true also when a is slightly above b)."""
    return a <= b + eps


def approx_lt(a: float, b: float, eps: float = EPS) -> bool:
    """Strict tolerant ``a < b`` (false when the values are eps-equal)."""
    return a < b - eps


def approx_ge(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a >= b``."""
    return a >= b - eps


def approx_gt(a: float, b: float, eps: float = EPS) -> bool:
    """Strict tolerant ``a > b``."""
    return a > b + eps


def approx_cmp(a: float, b: float, eps: float = EPS) -> int:
    """Three-way tolerant comparison: -1, 0 or +1."""
    if abs(a - b) <= eps:  # approx_eq, inlined (hot path)
        return 0
    return -1 if a < b else 1


def lex_cmp(seq_a: Sequence[float], seq_b: Sequence[float], eps: float = EPS) -> int:
    """Tolerant lexicographic three-way comparison of two float sequences.

    The sequences are compared element by element with :func:`approx_cmp`;
    the first non-equal element decides.  A shorter sequence that is a
    prefix of the longer one compares as smaller.
    """
    for a, b in zip(seq_a, seq_b):
        c = approx_cmp(a, b, eps)
        if c != 0:
            return c
    return (len(seq_a) > len(seq_b)) - (len(seq_a) < len(seq_b))


def snap(value: float, target: float, eps: float = EPS) -> float:
    """Return ``target`` when ``value`` is eps-close to it, else ``value``."""
    return target if approx_eq(value, target, eps) else value


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    return max(low, min(high, value))


def all_approx_eq(values: Iterable[float], eps: float = EPS) -> bool:
    """Return True when all values in the iterable are pairwise eps-equal."""
    items = list(values)
    if not items:
        return True
    lo, hi = min(items), max(items)
    return approx_eq(lo, hi, 2 * eps)


def norm_angle(theta: float) -> float:
    """Normalise an angle into [0, 2*pi)."""
    two_pi = 2.0 * math.pi
    theta = math.fmod(theta, two_pi)
    if theta < 0.0:
        theta += two_pi
    if theta >= two_pi:  # fmod rounding can land exactly on 2*pi
        theta -= two_pi
    return theta


def norm_angle_signed(theta: float) -> float:
    """Normalise an angle into (-pi, pi]."""
    theta = norm_angle(theta)
    if theta > math.pi:
        theta -= 2.0 * math.pi
    return theta


def angle_approx_eq(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant equality of two angles modulo 2*pi."""
    return is_zero(norm_angle_signed(a - b), eps)
