"""Circles and circle-related predicates."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Vec2
from .tolerance import EPS, approx_eq, approx_le, approx_lt


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle with ``center`` and non-negative ``radius``."""

    center: Vec2
    radius: float

    def contains(self, p: Vec2, eps: float = EPS) -> bool:
        """True when ``p`` lies inside or on the circle (closed disc)."""
        return approx_le(self.center.dist(p), self.radius, eps)

    def strictly_contains(self, p: Vec2, eps: float = EPS) -> bool:
        """True when ``p`` lies strictly inside the circle (open disc)."""
        return approx_lt(self.center.dist(p), self.radius, eps)

    def on_circumference(self, p: Vec2, eps: float = EPS) -> bool:
        """True when ``p`` lies on the circumference."""
        return approx_eq(self.center.dist(p), self.radius, eps)

    def point_at(self, angle: float) -> Vec2:
        """The circumference point at polar ``angle`` around the center."""
        return self.center + Vec2.polar(self.radius, angle)

    def angle_of(self, p: Vec2) -> float:
        """Polar angle of ``p`` around the center, in [0, 2*pi)."""
        from .angles import direction_angle

        return direction_angle(self.center, p)

    def approx_eq(self, other: "Circle", eps: float = EPS) -> bool:
        """Tolerant equality of two circles."""
        return self.center.approx_eq(other.center, eps) and approx_eq(
            self.radius, other.radius, eps
        )

    def scaled(self, factor: float) -> "Circle":
        """Concentric circle with radius scaled by ``factor``."""
        return Circle(self.center, self.radius * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circle(c={self.center!r}, r={self.radius:.6g})"


def circle_from_two(a: Vec2, b: Vec2) -> Circle:
    """Smallest circle through two points (diameter circle)."""
    center = Vec2((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
    return Circle(center, center.dist(a))


def circle_from_three(a: Vec2, b: Vec2, c: Vec2) -> Circle | None:
    """Circumscribed circle of a triangle, or None when degenerate."""
    d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y))
    if abs(d) < 1e-14:
        return None
    a2, b2, c2 = a.norm_sq(), b.norm_sq(), c.norm_sq()
    ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d
    uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d
    center = Vec2(ux, uy)
    return Circle(center, center.dist(a))


def arc_length(radius: float, angle: float) -> float:
    """Arc length spanned by ``angle`` radians on a circle of ``radius``."""
    return abs(radius * angle)


def chord_angle(radius: float, chord: float) -> float:
    """Central angle subtended by a chord of the given length."""
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    half = min(1.0, max(-1.0, chord / (2.0 * radius)))
    return 2.0 * math.asin(half)
