"""Similarity transforms of the plane.

A *similarity* is a composition of translation, uniform scaling, rotation
and (optionally) a reflection.  Two point sets are "similar" in the paper's
sense (``A ~ B``) exactly when one maps onto the other under such a
transform.  Similarities are also the mathematical content of a robot's
local coordinate system: what a robot *sees* is the global configuration
pushed through the (unknown to us-as-robot) similarity that maps global
coordinates to its ego-centered frame.

A transform is stored as ``p -> s * R * p + t`` where ``R`` is a rotation
matrix optionally composed with the reflection ``(x, y) -> (x, -y)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .point import Vec2
from .tolerance import EPS, approx_eq


@dataclass(frozen=True, slots=True)
class Similarity:
    """An orientation-preserving-or-reversing similarity of the plane."""

    scale: float
    rotation: float
    reflect: bool
    translation: Vec2

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError("similarity scale must be positive")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "Similarity":
        """The identity transform."""
        return Similarity(1.0, 0.0, False, Vec2.zero())

    @staticmethod
    def translation_of(t: Vec2) -> "Similarity":
        """Pure translation by ``t``."""
        return Similarity(1.0, 0.0, False, t)

    @staticmethod
    def rotation_about(theta: float, center: Vec2 = Vec2.zero()) -> "Similarity":
        """Pure rotation by ``theta`` about ``center``."""
        return (
            Similarity.translation_of(center)
            .compose(Similarity(1.0, theta, False, Vec2.zero()))
            .compose(Similarity.translation_of(-center))
        )

    @staticmethod
    def scaling(factor: float, center: Vec2 = Vec2.zero()) -> "Similarity":
        """Pure uniform scaling by ``factor`` about ``center``."""
        return (
            Similarity.translation_of(center)
            .compose(Similarity(factor, 0.0, False, Vec2.zero()))
            .compose(Similarity.translation_of(-center))
        )

    @staticmethod
    def reflection_x() -> "Similarity":
        """Reflection across the x axis (flips chirality)."""
        return Similarity(1.0, 0.0, True, Vec2.zero())

    # ------------------------------------------------------------------
    # application and composition
    # ------------------------------------------------------------------
    def apply(self, p: Vec2) -> Vec2:
        """Image of point ``p`` under the transform.

        The reflection/rotation steps are inlined (same arithmetic as
        ``p.mirrored_x()`` / ``p.rotated(rotation)``): this runs for every
        point of every snapshot and path the engine builds.
        """
        x = p.x
        y = -p.y if self.reflect else p.y
        c, s = math.cos(self.rotation), math.sin(self.rotation)
        scale = self.scale
        t = self.translation
        return Vec2(
            scale * (c * x - s * y) + t.x, scale * (s * x + c * y) + t.y
        )

    def apply_vector(self, v: Vec2) -> Vec2:
        """Image of a *vector* (translation ignored)."""
        q = v.mirrored_x() if self.reflect else v
        return q.rotated(self.rotation) * self.scale

    def apply_all(self, points: "Sequence[Vec2]") -> list[Vec2]:
        """Image of every point in a list (cos/sin hoisted out of the loop)."""
        c, s = math.cos(self.rotation), math.sin(self.rotation)
        scale = self.scale
        tx, ty = self.translation.x, self.translation.y
        if self.reflect:
            return [
                Vec2(
                    scale * (c * p.x - s * -p.y) + tx,
                    scale * (s * p.x + c * -p.y) + ty,
                )
                for p in points
            ]
        return [
            Vec2(
                scale * (c * p.x - s * p.y) + tx,
                scale * (s * p.x + c * p.y) + ty,
            )
            for p in points
        ]

    def compose(self, inner: "Similarity") -> "Similarity":
        """The transform ``self o inner`` (apply ``inner`` first)."""
        # self(inner(p)) = s1*R1*(s2*R2*p + t2) + t1
        scale = self.scale * inner.scale
        if self.reflect:
            rotation = self.rotation - inner.rotation
        else:
            rotation = self.rotation + inner.rotation
        reflect = self.reflect != inner.reflect
        translation = self.apply(inner.translation)
        return Similarity(scale, rotation, reflect, translation)

    def inverse(self) -> "Similarity":
        """The inverse transform."""
        inv_scale = 1.0 / self.scale
        if self.reflect:
            inv_rotation = self.rotation
        else:
            inv_rotation = -self.rotation
        inv_reflect = self.reflect
        inv = Similarity(inv_scale, inv_rotation, inv_reflect, Vec2.zero())
        translation = -inv.apply(self.translation)
        return Similarity(inv_scale, inv_rotation, inv_reflect, translation)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def preserves_orientation(self) -> bool:
        """True for direct similarities (no reflection)."""
        return not self.reflect

    def is_identity(self, eps: float = EPS) -> bool:
        """Tolerant identity test."""
        return (
            not self.reflect
            and approx_eq(self.scale, 1.0, eps)
            and abs(math.remainder(self.rotation, 2.0 * math.pi)) <= eps
            and self.translation.approx_eq(Vec2.zero(), eps)
        )
