"""Polar coordinate systems.

The paper's global coordinate system ``Z`` (phase 1 of the deterministic
algorithm) is a polar frame: a center, a reference direction (the half-line
through ``r_max``) and an orientation (clockwise or counterclockwise — the
one that maximises the coordinates of the selected robot).  This module
provides that frame as a value object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Vec2
from .tolerance import norm_angle


@dataclass(frozen=True, slots=True)
class PolarCoord:
    """Polar coordinates ``(radius, angle)`` with angle in [0, 2*pi)."""

    radius: float
    angle: float

    def key(self) -> tuple[float, float]:
        """Sort key: lexicographic on (radius, angle).

        Matches the paper's ordering of robots by their polar coordinates
        in the global frame.
        """
        return (self.radius, self.angle)


@dataclass(frozen=True, slots=True)
class PolarFrame:
    """An oriented polar coordinate system of the plane.

    ``direct`` selects the orientation: True means angles grow
    counterclockwise (in global coordinates), False clockwise.
    """

    center: Vec2
    reference_angle: float
    direct: bool

    def to_polar(self, p: Vec2) -> PolarCoord:
        """Coordinates of global point ``p`` in this frame."""
        v = p - self.center
        radius = v.norm()
        if radius == 0.0:
            return PolarCoord(0.0, 0.0)
        raw = v.angle() - self.reference_angle
        angle = norm_angle(raw if self.direct else -raw)
        return PolarCoord(radius, angle)

    def to_point(self, coord: PolarCoord) -> Vec2:
        """Global point with the given frame coordinates."""
        angle = coord.angle if self.direct else -coord.angle
        return self.center + Vec2.polar(coord.radius, self.reference_angle + angle)

    def point_at(self, radius: float, angle: float) -> Vec2:
        """Convenience: global point at frame coordinates (radius, angle)."""
        return self.to_point(PolarCoord(radius, angle))

    def angle_of(self, p: Vec2) -> float:
        """Frame angle of a global point, in [0, 2*pi)."""
        return self.to_polar(p).angle

    def radius_of(self, p: Vec2) -> float:
        """Distance of a global point to the frame center."""
        return p.dist(self.center)

    def mirrored(self) -> "PolarFrame":
        """The frame with opposite orientation."""
        return PolarFrame(self.center, self.reference_angle, not self.direct)


def angular_distance_on_circle(a: float, b: float) -> float:
    """Shortest angular distance between two directions, in [0, pi]."""
    d = norm_angle(b - a)
    return min(d, 2.0 * math.pi - d)
