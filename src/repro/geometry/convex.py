"""Convex hull (Andrew's monotone chain).

Used for cross-checking smallest-enclosing-circle support points and by a
few tests; not on the algorithm's hot path.
"""

from __future__ import annotations

from typing import Sequence

from .memo import Memo, points_key
from .point import Vec2
from .tolerance import EPS

_HULL_MEMO = Memo("geometry.convex_hull")


def convex_hull(points: Sequence[Vec2], eps: float = EPS) -> list[Vec2]:
    """Vertices of the convex hull in counterclockwise order.

    Collinear boundary points are dropped.  Returns the input (deduplicated)
    when it has fewer than three distinct points.  Memoised per bit-exact
    point tuple; a fresh list is returned on every call.
    """
    if _HULL_MEMO.active():
        key = (points_key(points), eps)
        hit, cached = _HULL_MEMO.lookup(key)
        if hit:
            return list(cached)
    else:
        key = None
    pts = sorted(set((p.x, p.y) for p in points))
    unique = [Vec2(x, y) for x, y in pts]
    if len(unique) <= 2:
        if key is not None:
            _HULL_MEMO.store(key, tuple(unique))
        return unique

    def cross(o: Vec2, a: Vec2, b: Vec2) -> float:
        return (a - o).cross(b - o)

    lower: list[Vec2] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= eps:
            lower.pop()
        lower.append(p)

    upper: list[Vec2] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= eps:
            upper.pop()
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if key is not None:
        _HULL_MEMO.store(key, tuple(hull))
    return hull


def is_inside_hull(hull: Sequence[Vec2], p: Vec2, eps: float = EPS) -> bool:
    """Whether ``p`` lies inside or on the given CCW convex polygon."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return hull[0].approx_eq(p, eps)
    if n == 2:
        a, b = hull
        if abs((b - a).cross(p - a)) > eps:
            return False
        t = (p - a).dot(b - a)
        return -eps <= t <= (b - a).norm_sq() + eps
    for i in range(n):
        a, b = hull[i], hull[(i + 1) % n]
        if (b - a).cross(p - a) < -eps:
            return False
    return True
