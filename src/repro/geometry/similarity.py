"""Point-set similarity: the paper's ``A ~ B`` relation.

Two multisets of points are *similar* when one can be obtained from the
other by translation, uniform scaling, rotation, or symmetry (reflection).
Deciding similarity (and, when wanted, recovering a witness transform) is
how the simulator detects that the pattern has been formed.

The decision procedure normalises both sets (translate centroid to the
origin, scale the maximum radius to 1), then tries every candidate rotation
that maps one extremal point of ``A`` to an extremal point of ``B``, with
and without a prior reflection.  Candidate count is O(n), each check is
O(n^2), so the whole test is O(n^3) — ample for robot-swarm sizes.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from .memo import Memo, points_key
from .point import Vec2, centroid
from .tolerance import EPS, approx_eq
from .transform import Similarity

_NORM_MEMO = Memo("geometry.normalize")

#: Sentinel distinguishing a cached "no similarity exists" verdict from
#: a cache miss in the array engine's memo (which stores both outcomes).
_NO_SIMILARITY = object()


def normalize_points(points: Sequence[Vec2]) -> tuple[list[Vec2], Vec2, float]:
    """Translate centroid to origin and scale max radius to 1.

    Returns ``(normalised points, original centroid, original max radius)``.
    A set whose points all coincide gets scale 1 (it stays a single point).

    Memoised per bit-exact input tuple: similarity tests against the
    (fixed) target pattern renormalise the same pattern-side point list
    on every single activation.
    """
    if _NORM_MEMO.active() and points:
        key = points_key(points)
        hit, cached = _NORM_MEMO.lookup(key)
        if hit:
            return list(cached[0]), cached[1], cached[2]
    else:
        key = None
    c = centroid(points)
    # Scalarized (same arithmetic as ``p - c``, ``p.norm()``, ``p / scale``
    # on Vec2 operands, without the operator-call overhead).
    cx, cy = c.x, c.y
    shifted = [Vec2(p.x - cx, p.y - cy) for p in points]
    scale = max((math.hypot(p.x, p.y) for p in shifted), default=0.0)
    if scale < 1e-12:
        result = shifted, c, 1.0
    else:
        result = [Vec2(p.x / scale, p.y / scale) for p in shifted], c, scale
    if key is not None:
        _NORM_MEMO.store(key, (tuple(result[0]), result[1], result[2]))
    return result


def _match_multisets(a: Sequence[Vec2], b: Sequence[Vec2], eps: float) -> bool:
    """Greedy bipartite matching of two equal-size point multisets."""
    used = [False] * len(b)
    for p in a:
        found = False
        for j, q in enumerate(b):
            if not used[j] and p.approx_eq(q, eps):
                used[j] = True
                found = True
                break
        if not found:
            return False
    return True


def _match_coords(
    a: Sequence[tuple[float, float]],
    b: Sequence[tuple[float, float]],
    eps: float,
) -> bool:
    """:func:`_match_multisets` on raw coordinate pairs (hot path)."""
    used = [False] * len(b)
    for px, py in a:
        found = False
        for j, (qx, qy) in enumerate(b):
            if not used[j] and abs(px - qx) <= eps and abs(py - qy) <= eps:
                used[j] = True
                found = True
                break
        if not found:
            return False
    return True


def similar(a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS) -> bool:
    """Whether the two point multisets are similar (``A ~ B``)."""
    return find_similarity(a, b, eps) is not None


def _similarity_candidates(a: Sequence[Vec2], b: Sequence[Vec2], eps: float):
    """The shared pre-candidate stage of the similarity decision.

    Runs the cheap gates (size, degenerate single-location, radii
    multiset) and the anchor selection.  Returns a decided result —
    a :class:`Similarity` or ``None`` — when a gate settles the answer,
    otherwise the tuple ``(norm_a, norm_b, cen_a, cen_b, scale_a,
    scale_b, anchor_r, anchor_angle, norms_b)`` for the candidate scan.
    Shared verbatim by the scalar scan below and the vectorized one in
    :mod:`repro.fastsim.kernels`, so both walk identical candidates.
    """
    if len(a) != len(b):
        return None
    if not a:
        return Similarity.identity()

    norm_a, cen_a, scale_a = normalize_points(a)
    norm_b, cen_b, scale_b = normalize_points(b)

    # Norms are needed repeatedly (spread, radii multiset, anchor
    # matching); compute each exactly once.
    norms_a = [p.norm() for p in norm_a]
    norms_b = [p.norm() for p in norm_b]

    # Degenerate: single location (possibly with multiplicity).
    spread_a = max(norms_a)
    spread_b = max(norms_b)
    if spread_a < eps and spread_b < eps:
        return (
            Similarity.translation_of(cen_b)
            .compose(Similarity.identity())
            .compose(Similarity.translation_of(-cen_a))
        )
    if (spread_a < eps) != (spread_b < eps):
        return None

    # Radii multisets must agree.
    radii_a = sorted(norms_a)
    radii_b = sorted(norms_b)
    if any(not approx_eq(ra, rb, eps) for ra, rb in zip(radii_a, radii_b)):
        return None

    anchor_i = max(range(len(norm_a)), key=norms_a.__getitem__)
    anchor_r = norms_a[anchor_i]
    anchor_angle = norm_a[anchor_i].angle()
    return (
        norm_a,
        norm_b,
        cen_a,
        cen_b,
        scale_a,
        scale_b,
        anchor_r,
        anchor_angle,
        norms_b,
    )


def find_similarity(
    a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS
) -> Similarity | None:
    """A witness similarity mapping ``a`` onto ``b``, or None.

    The returned transform satisfies ``transform.apply_all(a)`` being a
    permutation of ``b`` up to ``eps`` (after accounting for the relative
    scale of the two sets).
    """
    kernel = _KERNELS.find_similarity
    if kernel is not None:
        return kernel(a, b, eps)
    return _find_similarity_scalar(a, b, eps)


def _find_similarity_scalar(
    a: Sequence[Vec2], b: Sequence[Vec2], eps: float
) -> Similarity | None:
    """The candidate scan itself, bypassing kernel dispatch.

    Split out so installed kernels can reuse the scalar search (the
    array engine's kernel adds memoisation on top of this exact body:
    the early-exit greedy matcher beat a vectorized all-pairs
    feasibility scan at every measured size up to n=64).
    """
    prepared = _similarity_candidates(a, b, eps)
    if not isinstance(prepared, tuple):
        return prepared
    (
        norm_a,
        norm_b,
        cen_a,
        cen_b,
        scale_a,
        scale_b,
        anchor_r,
        anchor_angle,
        norms_b,
    ) = prepared

    b_coords = [(q.x, q.y) for q in norm_b]
    match_eps = 4 * eps
    for reflect in (False, True):
        # Reflection and rotation applied to raw coordinate pairs: the
        # arithmetic matches ``p.mirrored_x()`` / ``p.rotated(theta)``
        # exactly, with cos/sin hoisted out of the per-point loop.
        if reflect:
            source = [(p.x, -p.y) for p in norm_a]
        else:
            source = [(p.x, p.y) for p in norm_a]
        src_anchor_angle = -anchor_angle if reflect else anchor_angle
        for j, q in enumerate(norm_b):
            if not abs(norms_b[j] - anchor_r) <= eps:
                continue
            theta = q.angle() - src_anchor_angle
            c, s = math.cos(theta), math.sin(theta)
            rotated = [(c * x - s * y, s * x + c * y) for x, y in source]
            if _match_coords(rotated, b_coords, match_eps):
                inner = Similarity(1.0, theta, reflect, Vec2.zero())
                transform = (
                    Similarity.translation_of(cen_b)
                    .compose(Similarity.scaling(scale_b))
                    .compose(inner)
                    .compose(Similarity.scaling(1.0 / scale_a))
                    .compose(Similarity.translation_of(-cen_a))
                )
                return transform
    return None


def congruent(a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS) -> bool:
    """Similarity with equal scale (isometry up to reflection)."""
    transform = find_similarity(a, b, eps)
    if transform is None:
        return False
    return approx_eq(transform.scale, 1.0, 1e-6)
