"""Point-set similarity: the paper's ``A ~ B`` relation.

Two multisets of points are *similar* when one can be obtained from the
other by translation, uniform scaling, rotation, or symmetry (reflection).
Deciding similarity (and, when wanted, recovering a witness transform) is
how the simulator detects that the pattern has been formed.

The decision procedure normalises both sets (translate centroid to the
origin, scale the maximum radius to 1), then tries every candidate rotation
that maps one extremal point of ``A`` to an extremal point of ``B``, with
and without a prior reflection.  Candidate count is O(n), each check is
O(n^2), so the whole test is O(n^3) — ample for robot-swarm sizes.
"""

from __future__ import annotations

from typing import Sequence

from .point import Vec2, centroid
from .tolerance import EPS, approx_eq
from .transform import Similarity


def normalize_points(points: Sequence[Vec2]) -> tuple[list[Vec2], Vec2, float]:
    """Translate centroid to origin and scale max radius to 1.

    Returns ``(normalised points, original centroid, original max radius)``.
    A set whose points all coincide gets scale 1 (it stays a single point).
    """
    c = centroid(points)
    shifted = [p - c for p in points]
    scale = max((p.norm() for p in shifted), default=0.0)
    if scale < 1e-12:
        return shifted, c, 1.0
    return [p / scale for p in shifted], c, scale


def _match_multisets(a: Sequence[Vec2], b: Sequence[Vec2], eps: float) -> bool:
    """Greedy bipartite matching of two equal-size point multisets."""
    used = [False] * len(b)
    for p in a:
        found = False
        for j, q in enumerate(b):
            if not used[j] and p.approx_eq(q, eps):
                used[j] = True
                found = True
                break
        if not found:
            return False
    return True


def similar(a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS) -> bool:
    """Whether the two point multisets are similar (``A ~ B``)."""
    return find_similarity(a, b, eps) is not None


def find_similarity(
    a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS
) -> Similarity | None:
    """A witness similarity mapping ``a`` onto ``b``, or None.

    The returned transform satisfies ``transform.apply_all(a)`` being a
    permutation of ``b`` up to ``eps`` (after accounting for the relative
    scale of the two sets).
    """
    if len(a) != len(b):
        return None
    if not a:
        return Similarity.identity()

    norm_a, cen_a, scale_a = normalize_points(a)
    norm_b, cen_b, scale_b = normalize_points(b)

    # Degenerate: single location (possibly with multiplicity).
    spread_a = max(p.norm() for p in norm_a)
    spread_b = max(p.norm() for p in norm_b)
    if spread_a < eps and spread_b < eps:
        return (
            Similarity.translation_of(cen_b)
            .compose(Similarity.identity())
            .compose(Similarity.translation_of(-cen_a))
        )
    if (spread_a < eps) != (spread_b < eps):
        return None

    # Radii multisets must agree.
    radii_a = sorted(p.norm() for p in norm_a)
    radii_b = sorted(p.norm() for p in norm_b)
    if any(not approx_eq(ra, rb, eps) for ra, rb in zip(radii_a, radii_b)):
        return None

    anchor = max(norm_a, key=lambda p: p.norm())
    anchor_r = anchor.norm()
    anchor_angle = anchor.angle()

    for reflect in (False, True):
        source = [p.mirrored_x() for p in norm_a] if reflect else norm_a
        src_anchor_angle = -anchor_angle if reflect else anchor_angle
        for q in norm_b:
            if not approx_eq(q.norm(), anchor_r, eps):
                continue
            theta = q.angle() - src_anchor_angle
            rotated = [p.rotated(theta) for p in source]
            if _match_multisets(rotated, norm_b, 4 * eps):
                inner = Similarity(1.0, theta, reflect, Vec2.zero())
                transform = (
                    Similarity.translation_of(cen_b)
                    .compose(Similarity.scaling(scale_b))
                    .compose(inner)
                    .compose(Similarity.scaling(1.0 / scale_a))
                    .compose(Similarity.translation_of(-cen_a))
                )
                return transform
    return None


def congruent(a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS) -> bool:
    """Similarity with equal scale (isometry up to reflection)."""
    transform = find_similarity(a, b, eps)
    if transform is None:
        return False
    return approx_eq(transform.scale, 1.0, 1e-6)
