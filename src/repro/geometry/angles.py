"""Angle algebra used by the paper's predicates.

The paper manipulates three kinds of angles:

* ``ang(u, v, w)`` — the angle at vertex ``v`` from ``u`` to ``w`` measured
  in a fixed orientation, in [0, 2*pi);
* ``angmin(u, v, w)`` — the minimum of the two orientations, in [0, pi];
* angular *gaps* between consecutive half-lines out of a center, used to
  recognise equiangular (m-regular) and biangular sets.
"""

from __future__ import annotations

import math
from typing import Sequence

from .point import Vec2
from .tolerance import EPS, is_zero, norm_angle


_TWO_PI = 2.0 * math.pi


def direction_angle(center: Vec2, p: Vec2) -> float:
    """Direction of ``p`` as seen from ``center``, in [0, 2*pi).

    The body is ``norm_angle((p - center).angle())`` with both calls
    inlined: this runs for every (point, center) pair of every polar
    table, so the two extra Python frames are measurable.
    """
    theta = math.fmod(math.atan2(p.y - center.y, p.x - center.x), _TWO_PI)
    if theta < 0.0:
        theta += _TWO_PI
    if theta >= _TWO_PI:  # fmod rounding can land exactly on 2*pi
        theta -= _TWO_PI
    return theta


def ang(u: Vec2, v: Vec2, w: Vec2, clockwise: bool = False) -> float:
    """The angle ``ang(u, v, w)`` at vertex ``v``, in [0, 2*pi).

    By default the angle is measured counterclockwise from ray ``v->u`` to
    ray ``v->w``; pass ``clockwise=True`` for the other orientation.
    """
    a = direction_angle(v, u)
    b = direction_angle(v, w)
    ccw = norm_angle(b - a)
    return norm_angle(-ccw) if clockwise else ccw


def angmin(u: Vec2, v: Vec2, w: Vec2) -> float:
    """``angmin(u, v, w)``: the smaller of the two orientations, in [0, pi]."""
    ccw = ang(u, v, w)
    return min(ccw, 2.0 * math.pi - ccw)


def angle_gaps(angles: Sequence[float]) -> list[float]:
    """Consecutive gaps of a set of directions, sorted around the circle.

    Given ``k`` direction angles, returns the ``k`` gaps between successive
    directions (including the wrap-around gap), in the order induced by the
    sorted directions.  Gaps sum to 2*pi.
    """
    if not angles:
        return []
    ordered = sorted(norm_angle(a) for a in angles)
    gaps = [
        norm_angle(ordered[(i + 1) % len(ordered)] - ordered[i])
        for i in range(len(ordered) - 1)
    ]
    gaps.append(2.0 * math.pi - sum(gaps))
    return gaps


def half_line_angles(center: Vec2, points: Sequence[Vec2], eps: float = EPS) -> list[float]:
    """Directions of the half-lines ``H_c(M)`` out of ``center``.

    Points eps-equal in direction collapse to a single half-line (several
    robots on the same half-line count once), matching the paper's
    ``H_c(M)`` definition.  Returns sorted angles in [0, 2*pi).

    Raises:
        ValueError: if some point coincides with the center.
    """
    raw: list[float] = []
    for p in points:
        if p.approx_eq(center, eps):
            raise ValueError("half-line undefined: point coincides with center")
        raw.append(direction_angle(center, p))
    raw.sort()
    merged: list[float] = []
    for a in raw:
        if not merged or not is_zero(norm_angle(a - merged[-1]), eps):
            merged.append(a)
    # The first and last may also be the same half-line across the wrap.
    if len(merged) > 1 and is_zero(2.0 * math.pi - (merged[-1] - merged[0]) % (2 * math.pi), eps):
        if is_zero(norm_angle(merged[0] - merged[-1]), eps):
            merged.pop()
    return merged


def min_angle_at(center: Vec2, p: Vec2, points: Sequence[Vec2]) -> float:
    """``alpha_min,c(p, M)``: minimum non-null angle at ``center`` between
    ``p`` and any other point of ``points``.

    Returns ``math.inf`` when no other point forms a non-null angle.
    """
    theta_p = direction_angle(center, p)
    best = math.inf
    for q in points:
        if q.approx_eq(p):
            continue
        theta_q = direction_angle(center, q)
        delta = norm_angle(theta_q - theta_p)
        delta = min(delta, 2.0 * math.pi - delta)
        if is_zero(delta):
            continue
        best = min(best, delta)
    return best


def min_angle(center: Vec2, points: Sequence[Vec2]) -> float:
    """``alpha_min,c(M)``: minimum angle between two half-lines of ``points``.

    Returns ``math.inf`` for fewer than two half-lines.
    """
    angles = half_line_angles(center, points)
    if len(angles) < 2:
        return math.inf
    gaps = angle_gaps(angles)
    return min(gaps)


def bisector_angle(a: float, b: float) -> float:
    """Direction bisecting the counterclockwise arc from ``a`` to ``b``."""
    return norm_angle(a + norm_angle(b - a) / 2.0)
