"""2-D points/vectors.

``Vec2`` is the single plane-point type used throughout the library.  It is
an immutable value object with the usual vector algebra, tolerant equality,
and a few plane-geometry helpers (perpendicular, cross product, rotation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .tolerance import EPS, is_zero


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable point (or vector) in the Euclidean plane."""

    x: float
    y: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Vec2":
        """The origin."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def unit(angle: float) -> "Vec2":
        """Unit vector pointing in direction ``angle`` (radians)."""
        return Vec2(math.cos(angle), math.sin(angle))

    @staticmethod
    def polar(radius: float, angle: float) -> "Vec2":
        """Point at the given polar coordinates around the origin."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def perp(self) -> "Vec2":
        """The vector rotated by +90 degrees."""
        return Vec2(-self.y, self.x)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (cheaper, exact for comparisons)."""
        return self.x * self.x + self.y * self.y

    def dist(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def dist_sq(self, other: "Vec2") -> float:
        """Squared Euclidean distance to ``other``."""
        dx, dy = self.x - other.x, self.y - other.y
        return dx * dx + dy * dy

    def normalized(self) -> "Vec2":
        """Unit vector with the same direction.

        Raises:
            ZeroDivisionError: when called on the (near-)zero vector.
        """
        n = self.norm()
        if is_zero(n, 1e-15):
            raise ZeroDivisionError("cannot normalise a zero vector")
        return Vec2(self.x / n, self.y / n)

    def angle(self) -> float:
        """Direction of the vector in [-pi, pi] (``atan2`` convention)."""
        return math.atan2(self.y, self.x)

    def rotated(self, theta: float, about: "Vec2 | None" = None) -> "Vec2":
        """The point rotated by ``theta`` radians about ``about`` (origin)."""
        c, s = math.cos(theta), math.sin(theta)
        if about is None:
            return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)
        dx, dy = self.x - about.x, self.y - about.y
        return Vec2(about.x + c * dx - s * dy, about.y + s * dx + c * dy)

    def mirrored_x(self) -> "Vec2":
        """The point reflected across the x axis (chirality flip)."""
        return Vec2(self.x, -self.y)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def approx_eq(self, other: "Vec2", eps: float = EPS) -> bool:
        """Tolerant equality of two points (per-coordinate, as in
        :func:`repro.geometry.tolerance.approx_eq`; inlined — this is the
        single most called predicate of the simulator)."""
        return abs(self.x - other.x) <= eps and abs(self.y - other.y) <= eps

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec2({self.x:.6g}, {self.y:.6g})"


def centroid(points: Sequence[Vec2]) -> Vec2:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Vec2(sx / len(points), sy / len(points))


def lerp(a: Vec2, b: Vec2, t: float) -> Vec2:
    """Linear interpolation between ``a`` (t=0) and ``b`` (t=1)."""
    return Vec2(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)


def midpoint(a: Vec2, b: Vec2) -> Vec2:
    """The midpoint of segment ``ab``."""
    return lerp(a, b, 0.5)


def without_point(points: Iterable[Vec2], target: Vec2, eps: float = EPS) -> list[Vec2]:
    """A copy of ``points`` with one occurrence of ``target`` removed.

    Raises:
        ValueError: when no point eps-matches ``target``.
    """
    out = list(points)
    for i, p in enumerate(out):
        if p.approx_eq(target, eps):
            del out[i]
            return out
    raise ValueError(f"point {target!r} not found in collection")


def without_points(
    points: Iterable[Vec2], targets: Iterable[Vec2], eps: float = EPS
) -> list[Vec2]:
    """A copy of ``points`` with one occurrence of each target removed."""
    out = list(points)
    for t in targets:
        out = without_point(out, t, eps)
    return out


def contains_point(points: Iterable[Vec2], target: Vec2, eps: float = EPS) -> bool:
    """Whether some point of the collection eps-matches ``target``."""
    return any(p.approx_eq(target, eps) for p in points)


def dedupe_points(points: Iterable[Vec2], eps: float = EPS) -> list[Vec2]:
    """Remove eps-duplicate points, keeping first occurrences in order.

    Quadratic, which is fine for the configuration sizes this library
    simulates (tens of robots).
    """
    unique: list[Vec2] = []
    for p in points:
        if not any(p.approx_eq(q, eps) for q in unique):
            unique.append(p)
    return unique
