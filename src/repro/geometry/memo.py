"""Exact-key memoisation for hot-path geometry.

The simulator recomputes the same pure geometric quantities constantly:
one activation of the paper's algorithm derives the smallest enclosing
circle, local views, the Weber point and symmetry data of the *same*
normalised point tuple over and over across its predicates, and the
engine's terminal probe re-runs the whole pipeline for every robot,
coin bit and chirality over one unchanged configuration.

This module provides the shared cache substrate:

* :class:`Memo` — a bounded LRU map from a *bit-exact* configuration
  fingerprint to a previously computed value;
* :func:`points_key` — the canonical fingerprint: the IEEE-754 bit
  pattern of every coordinate, so ``-0.0`` and ``0.0`` (equal under
  ``==`` but distinguishable through ``atan2``) never alias;
* a process-wide enable switch (:func:`set_cache_enabled`, env var
  ``REPRO_GEOMETRY_CACHE``) mirrored into ``os.environ`` so worker
  processes of the parallel runner inherit it under any start method;
* per-cache hit/miss counters (:func:`cache_stats`) surfaced by the
  profiling layer (:mod:`repro.analysis.profile`).

Because keys are bit-exact and every memoised function is pure, a cache
hit returns a value computed from bit-identical inputs by the identical
code path: simulation results with caching enabled are bit-for-bit equal
to results with caching disabled (pinned by
``tests/analysis/test_cache_equivalence.py``).
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

__all__ = [
    "CacheStats",
    "Memo",
    "cache_disabled",
    "cache_enabled",
    "cache_stats",
    "clear_caches",
    "points_key",
    "reset_cache_stats",
    "set_cache_enabled",
]

_ENV_VAR = "REPRO_GEOMETRY_CACHE"

_enabled = os.environ.get(_ENV_VAR, "1").strip().lower() not in (
    "0",
    "off",
    "false",
    "no",
)

#: Default per-cache entry bound.  Configurations are small (tens of
#: points) so even thousands of entries are a few MB at most.
DEFAULT_MAXSIZE = 8192


#: struct format strings per coordinate count (computed once per length).
_PACK_FMT: dict[int, str] = {}


def points_key(points: Sequence, *extra) -> bytes:
    """Bit-exact fingerprint of a point sequence (plus optional points).

    Packs the raw IEEE-754 doubles of every coordinate, in order.  Two
    sequences share a key iff every coordinate is the same bit pattern —
    stricter than ``==`` (which identifies ``-0.0`` with ``0.0``), which
    is what makes cache hits bit-for-bit reproducible.
    """
    flat: list[float] = []
    ext = flat.extend
    for p in points:
        ext((p.x, p.y))
    for p in extra:
        ext((p.x, p.y))
    n = len(flat)
    fmt = _PACK_FMT.get(n)
    if fmt is None:
        fmt = _PACK_FMT[n] = f"<{n}d"
    return struct.pack(fmt, *flat)


@dataclass
class CacheStats:
    """Hit/miss counters of one named cache (shared by all its users)."""

    name: str
    hits: int = 0
    misses: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
        }


#: name -> shared counters (several Memo instances may share a name,
#: e.g. the per-Simulation terminal-probe caches).
_stats: "OrderedDict[str, CacheStats]" = OrderedDict()

#: module-level (long-lived) memos, for clear_caches().
_registry: list["Memo"] = []


def stats_for(name: str) -> CacheStats:
    """The shared counter object for ``name`` (created on first use)."""
    if name not in _stats:
        _stats[name] = CacheStats(name)
    return _stats[name]


class Memo:
    """A bounded LRU cache with shared named counters.

    ``lookup``/``store`` are no-ops while caching is disabled, so every
    call site reads as::

        hit, value = _MEMO.lookup(key)
        if hit:
            return value
        value = ...compute...
        _MEMO.store(key, value)
    """

    __slots__ = ("stats", "maxsize", "_data")

    def __init__(
        self,
        name: str,
        maxsize: int = DEFAULT_MAXSIZE,
        register: bool = True,
    ) -> None:
        self.stats = stats_for(name)
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        if register:
            _registry.append(self)

    def active(self) -> bool:
        """Whether caching is enabled process-wide.

        Call sites check this before building a key, so a disabled cache
        costs nothing at all (not even the fingerprint packing).
        """
        return _enabled

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        if not _enabled:
            return False, None
        data = self._data
        if key in data:
            data.move_to_end(key)
            self.stats.hits += 1
            return True, data[key]
        self.stats.misses += 1
        return False, None

    def store(self, key: Hashable, value: Any) -> None:
        if not _enabled:
            return
        data = self._data
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def cache_enabled() -> bool:
    """Whether the geometry/terminal-probe caches are active."""
    return _enabled


def set_cache_enabled(enabled: bool) -> None:
    """Turn the caches on or off process-wide.

    The setting is mirrored into ``os.environ[REPRO_GEOMETRY_CACHE]`` so
    worker processes started afterwards (fork *or* spawn) agree with the
    parent.  Disabling does not drop existing entries; use
    :func:`clear_caches` for that.
    """
    global _enabled
    _enabled = bool(enabled)
    os.environ[_ENV_VAR] = "1" if _enabled else "0"


@contextmanager
def cache_disabled():
    """Context manager: run a block with all caches off."""
    previous = _enabled
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def clear_caches() -> None:
    """Drop every entry of every registered (module-level) cache."""
    for memo in _registry:
        memo.clear()


def reset_cache_stats() -> None:
    """Zero all hit/miss counters (entries are kept)."""
    for stats in _stats.values():
        stats.hits = 0
        stats.misses = 0


def cache_stats() -> dict[str, CacheStats]:
    """Snapshot of all named cache counters."""
    return dict(_stats)
