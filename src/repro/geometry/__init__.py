"""Planar geometry substrate.

Everything the robot model and the paper's algorithm need from the plane:
points, angles, circles, the smallest enclosing circle, similarity
transforms and the point-set similarity relation, convex hulls, and Weber
points.
"""

from .angles import (
    ang,
    angle_gaps,
    angmin,
    bisector_angle,
    direction_angle,
    half_line_angles,
    min_angle,
    min_angle_at,
)
from .circle import Circle, arc_length, chord_angle, circle_from_three, circle_from_two
from .convex import convex_hull, is_inside_hull
from .memo import (
    CacheStats,
    Memo,
    cache_disabled,
    cache_enabled,
    cache_stats,
    clear_caches,
    points_key,
    reset_cache_stats,
    set_cache_enabled,
)
from .point import (
    Vec2,
    centroid,
    contains_point,
    dedupe_points,
    lerp,
    midpoint,
    without_point,
    without_points,
)
from .polar import PolarCoord, PolarFrame, angular_distance_on_circle
from .sec import (
    boundary_points,
    holds_sec,
    point_holds_sec,
    smallest_enclosing_circle,
)
from .similarity import congruent, find_similarity, normalize_points, similar
from .tolerance import (
    EPS,
    SNAP_EPS,
    all_approx_eq,
    angle_approx_eq,
    approx_cmp,
    approx_eq,
    approx_ge,
    approx_gt,
    approx_le,
    approx_lt,
    clamp,
    is_zero,
    lex_cmp,
    norm_angle,
    norm_angle_signed,
    snap,
)
from .transform import Similarity
from .weber import is_weber_point, weber_objective, weber_point

__all__ = [
    "EPS",
    "SNAP_EPS",
    "CacheStats",
    "Circle",
    "Memo",
    "PolarCoord",
    "PolarFrame",
    "Similarity",
    "Vec2",
    "all_approx_eq",
    "cache_disabled",
    "cache_enabled",
    "cache_stats",
    "clear_caches",
    "points_key",
    "reset_cache_stats",
    "set_cache_enabled",
    "ang",
    "angle_approx_eq",
    "angle_gaps",
    "angmin",
    "angular_distance_on_circle",
    "approx_cmp",
    "approx_eq",
    "approx_ge",
    "approx_gt",
    "approx_le",
    "approx_lt",
    "arc_length",
    "bisector_angle",
    "boundary_points",
    "centroid",
    "chord_angle",
    "circle_from_three",
    "circle_from_two",
    "clamp",
    "congruent",
    "contains_point",
    "convex_hull",
    "dedupe_points",
    "direction_angle",
    "find_similarity",
    "half_line_angles",
    "holds_sec",
    "is_inside_hull",
    "is_weber_point",
    "is_zero",
    "lerp",
    "lex_cmp",
    "midpoint",
    "min_angle",
    "min_angle_at",
    "norm_angle",
    "norm_angle_signed",
    "normalize_points",
    "point_holds_sec",
    "similar",
    "smallest_enclosing_circle",
    "snap",
    "without_point",
    "without_points",
    "weber_objective",
    "weber_point",
]
