"""Smallest enclosing circle ``C(P)`` (Welzl's algorithm).

The paper normalises every configuration so that ``C(P) = C(F)``; the
smallest enclosing circle is therefore the single most used geometric
primitive.  This implementation is the iterative randomized-order Welzl
variant (expected linear time), made deterministic by a fixed shuffle seed
so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from .circle import Circle, circle_from_three, circle_from_two
from .point import Vec2
from .tolerance import EPS

_SHUFFLE_SEED = 0x5EC5EC


def smallest_enclosing_circle(points: Sequence[Vec2]) -> Circle:
    """The smallest circle containing all ``points``.

    Raises:
        ValueError: on an empty input.
    """
    if not points:
        raise ValueError("smallest enclosing circle of an empty set is undefined")
    pts = list(points)
    rng = random.Random(_SHUFFLE_SEED)
    rng.shuffle(pts)

    circle = Circle(pts[0], 0.0)
    for i, p in enumerate(pts):
        if circle.contains(p, EPS):
            continue
        circle = _circle_with_point(pts[: i + 1], p)
    return circle


def _circle_with_point(pts: Sequence[Vec2], p: Vec2) -> Circle:
    """Smallest circle of ``pts`` with ``p`` known to be on the boundary."""
    circle = Circle(p, 0.0)
    for i, q in enumerate(pts):
        if q is p or circle.contains(q, EPS):
            continue
        circle = _circle_with_two_points(pts[: i + 1], p, q)
    return circle


def _circle_with_two_points(pts: Sequence[Vec2], p: Vec2, q: Vec2) -> Circle:
    """Smallest circle of ``pts`` with ``p`` and ``q`` on the boundary."""
    circle = circle_from_two(p, q)
    for r in pts:
        if circle.contains(r, EPS):
            continue
        candidate = circle_from_three(p, q, r)
        if candidate is not None:
            circle = candidate
    return circle


def boundary_points(points: Sequence[Vec2], circle: Circle | None = None) -> list[Vec2]:
    """Points of ``points`` lying on the circumference of ``circle``.

    When ``circle`` is None the smallest enclosing circle is used.
    """
    if circle is None:
        circle = smallest_enclosing_circle(points)
    return [p for p in points if circle.on_circumference(p)]


def holds_sec(points: Sequence[Vec2], subset: Sequence[Vec2]) -> bool:
    """Whether removing ``subset`` (or any part of it) changes ``C(P)``.

    This implements the paper's "A holds C(P)": a set of points ``A`` holds
    the enclosing circle when there exists ``B`` contained in ``A`` with
    ``C(P \\ B) != C(P)``.  For a single point this reduces to "removing the
    point shrinks or moves the enclosing circle".  We check single-point
    removals and the whole-subset removal, which is sufficient because SEC
    support sets have at most three essential points.
    """
    sec = smallest_enclosing_circle(points)
    remaining_all = _without(points, subset)
    if remaining_all:
        if not smallest_enclosing_circle(remaining_all).approx_eq(sec):
            return True
    for p in subset:
        remaining = _without(points, [p])
        if remaining and not smallest_enclosing_circle(remaining).approx_eq(sec):
            return True
    return False


def point_holds_sec(points: Sequence[Vec2], p: Vec2) -> bool:
    """Whether a single point holds the smallest enclosing circle."""
    remaining = _without(points, [p])
    if not remaining:
        return True
    sec = smallest_enclosing_circle(points)
    return not smallest_enclosing_circle(remaining).approx_eq(sec)


def _without(points: Sequence[Vec2], subset: Sequence[Vec2]) -> list[Vec2]:
    """``points`` minus one occurrence of each element of ``subset``."""
    remaining = list(points)
    for s in subset:
        for i, p in enumerate(remaining):
            if p.approx_eq(s):
                del remaining[i]
                break
    return remaining
