"""Smallest enclosing circle ``C(P)`` (Welzl's algorithm).

The paper normalises every configuration so that ``C(P) = C(F)``; the
smallest enclosing circle is therefore the single most used geometric
primitive.  This implementation is the iterative randomized-order Welzl
variant (expected linear time), made deterministic by a fixed shuffle seed
so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from .circle import Circle, circle_from_three, circle_from_two
from .memo import Memo, points_key
from .point import Vec2
from .tolerance import EPS

_SHUFFLE_SEED = 0x5EC5EC

_SEC_MEMO = Memo("geometry.sec")

#: The deterministic shuffle permutation per point count.  The permutation
#: ``random.Random(_SHUFFLE_SEED).shuffle`` produces depends only on the
#: list *length*, so it is computed once per size instead of constructing
#: a fresh ``Random`` for every call.
_PERMS: dict[int, list[int]] = {}


def _shuffled(points: Sequence[Vec2]) -> list[Vec2]:
    n = len(points)
    perm = _PERMS.get(n)
    if perm is None:
        perm = list(range(n))
        random.Random(_SHUFFLE_SEED).shuffle(perm)
        _PERMS[n] = perm
    return [points[i] for i in perm]


def smallest_enclosing_circle(points: Sequence[Vec2]) -> Circle:
    """The smallest circle containing all ``points``.

    Results are memoised on the bit-exact coordinate fingerprint (see
    :mod:`repro.geometry.memo`): one activation of the algorithm asks
    for the SEC of the same point tuple many times over.

    Raises:
        ValueError: on an empty input.
    """
    if not points:
        raise ValueError("smallest enclosing circle of an empty set is undefined")
    if _SEC_MEMO.active():
        key = points_key(points)
        hit, circle = _SEC_MEMO.lookup(key)
        if hit:
            return circle
    else:
        key = None
    kernel = _KERNELS.sec
    circle = _welzl(points) if kernel is None else kernel(points)
    if key is not None:
        _SEC_MEMO.store(key, circle)
    return circle


def _welzl(points: Sequence[Vec2]) -> Circle:
    """The scalar Welzl solve (memo and kernel dispatch live above)."""
    pts = _shuffled(points)

    # ``Circle.contains`` is inlined throughout the Welzl loops as a
    # squared-distance comparison (``dist^2 <= (radius + EPS)^2``, the
    # same tolerant predicate without the square root): this runs for
    # every point at every level of the incremental construction.
    circle = Circle(pts[0], 0.0)
    cx, cy = circle.center.x, circle.center.y
    bound = circle.radius + EPS
    bound_sq = bound * bound
    for i, p in enumerate(pts):
        dx, dy = cx - p.x, cy - p.y
        if dx * dx + dy * dy <= bound_sq:
            continue
        circle = _circle_with_point(pts[: i + 1], p)
        cx, cy = circle.center.x, circle.center.y
        bound = circle.radius + EPS
        bound_sq = bound * bound
    return circle


def _circle_with_point(pts: Sequence[Vec2], p: Vec2) -> Circle:
    """Smallest circle of ``pts`` with ``p`` known to be on the boundary."""
    circle = Circle(p, 0.0)
    cx, cy = p.x, p.y
    bound = circle.radius + EPS
    bound_sq = bound * bound
    for i, q in enumerate(pts):
        if q is p:
            continue
        dx, dy = cx - q.x, cy - q.y
        if dx * dx + dy * dy <= bound_sq:
            continue
        circle = _circle_with_two_points(pts[: i + 1], p, q)
        cx, cy = circle.center.x, circle.center.y
        bound = circle.radius + EPS
        bound_sq = bound * bound
    return circle


def _circle_with_two_points(pts: Sequence[Vec2], p: Vec2, q: Vec2) -> Circle:
    """Smallest circle of ``pts`` with ``p`` and ``q`` on the boundary.

    The bare "replace with the circumcircle of (p, q, r)" step is only
    valid under Welzl's invariant: this function is reached with the
    promise that some circle through ``p`` and ``q`` encloses ``pts``.
    Circles through p and q form a one-parameter family (centers on the
    bisector of pq); each point contributes a half-line constraint on
    that parameter and the radius is convex in it, so when ``r`` falls
    outside the current optimum, the new optimum has ``r`` on its
    boundary — exactly the circumcircle taken here.  Without the
    invariant (adversarial direct calls) the constraints can be
    infeasible and the returned circle non-enclosing; the brute-force
    cross-check in ``tests/geometry/test_sec_bruteforce.py`` pins that
    the full algorithm, which always establishes the invariant before
    recursing, never hits that case on random, collinear, cocircular or
    duplicate-point inputs.
    """
    circle = circle_from_two(p, q)
    cx, cy = circle.center.x, circle.center.y
    bound = circle.radius + EPS
    bound_sq = bound * bound
    for r in pts:
        dx, dy = cx - r.x, cy - r.y
        if dx * dx + dy * dy <= bound_sq:
            continue
        candidate = circle_from_three(p, q, r)
        if candidate is not None:
            circle = candidate
            cx, cy = circle.center.x, circle.center.y
            bound = circle.radius + EPS
            bound_sq = bound * bound
    return circle


def boundary_points(points: Sequence[Vec2], circle: Circle | None = None) -> list[Vec2]:
    """Points of ``points`` lying on the circumference of ``circle``.

    When ``circle`` is None the smallest enclosing circle is used.
    """
    if circle is None:
        circle = smallest_enclosing_circle(points)
    return [p for p in points if circle.on_circumference(p)]


def holds_sec(points: Sequence[Vec2], subset: Sequence[Vec2]) -> bool:
    """Whether removing ``subset`` (or any part of it) changes ``C(P)``.

    This implements the paper's "A holds C(P)": a set of points ``A`` holds
    the enclosing circle when there exists ``B`` contained in ``A`` with
    ``C(P \\ B) != C(P)``.  For a single point this reduces to "removing the
    point shrinks or moves the enclosing circle".  We check single-point
    removals and the whole-subset removal, which is sufficient because SEC
    support sets have at most three essential points.
    """
    sec = smallest_enclosing_circle(points)
    remaining_all = _without(points, subset)
    if remaining_all:
        if not smallest_enclosing_circle(remaining_all).approx_eq(sec):
            return True
    for p in subset:
        remaining = _without(points, [p])
        if remaining and not smallest_enclosing_circle(remaining).approx_eq(sec):
            return True
    return False


def point_holds_sec(points: Sequence[Vec2], p: Vec2) -> bool:
    """Whether a single point holds the smallest enclosing circle."""
    remaining = _without(points, [p])
    if not remaining:
        return True
    sec = smallest_enclosing_circle(points)
    return not smallest_enclosing_circle(remaining).approx_eq(sec)


def _without(points: Sequence[Vec2], subset: Sequence[Vec2]) -> list[Vec2]:
    """``points`` minus one occurrence of each element of ``subset``."""
    remaining = list(points)
    for s in subset:
        for i, p in enumerate(remaining):
            if p.approx_eq(s):
                del remaining[i]
                break
    return remaining
