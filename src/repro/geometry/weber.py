"""Weber point (geometric median) computation.

The center of an m-regular (equiangular or biangular) set is its Weber
point (Anderegg, Cieliebak & Prencipe 2003, cited as [1] in the paper), and
the Weber point is invariant under straight-line movement of a point toward
it — which is why radial movements preserve regular sets.

The paper relies on the *existence* of a linear-time exact algorithm for
biangular configurations; for the simulator we only ever need a numerical
center good enough to *verify* equiangularity from it, so we use Weiszfeld
iteration with a robust start and a Newton-style polish of the
equiangularity residual performed by the callers in :mod:`repro.regular`.
"""

from __future__ import annotations

from typing import Sequence

from .point import Vec2, centroid
from .tolerance import EPS


def weber_point(
    points: Sequence[Vec2],
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> Vec2:
    """Geometric median of ``points`` by damped Weiszfeld iteration.

    The iteration handles the classical degenerate case (current iterate
    coinciding with an input point) by Vardi-Zhang correction.

    Raises:
        ValueError: on an empty input.
    """
    if not points:
        raise ValueError("Weber point of an empty set is undefined")
    if len(points) == 1:
        return points[0]
    if len(points) == 2:
        return Vec2(
            (points[0].x + points[1].x) / 2.0, (points[0].y + points[1].y) / 2.0
        )

    current = centroid(points)
    for _ in range(max_iter):
        nxt = _weiszfeld_step(points, current)
        if nxt.dist(current) <= tol:
            return nxt
        current = nxt
    return current


def _weiszfeld_step(points: Sequence[Vec2], y: Vec2) -> Vec2:
    """One Weiszfeld step with Vardi-Zhang handling of coincidence."""
    num_x = num_y = denom = 0.0
    coincident: Vec2 | None = None
    for p in points:
        d = p.dist(y)
        if d < 1e-14:
            coincident = p
            continue
        w = 1.0 / d
        num_x += p.x * w
        num_y += p.y * w
        denom += w
    if denom == 0.0:
        return y
    t = Vec2(num_x / denom, num_y / denom)
    if coincident is None:
        return t
    # Vardi-Zhang: pull toward the plain Weiszfeld target but keep the
    # iterate from being stuck exactly on a data point.
    r_vec = Vec2(num_x - y.x * denom, num_y - y.y * denom)
    r = r_vec.norm()
    if r < 1e-14:
        return y
    step = min(1.0, 1.0 / r)
    return Vec2(y.x + step * (t.x - y.x), y.y + step * (t.y - y.y))


def weber_objective(points: Sequence[Vec2], y: Vec2) -> float:
    """Sum of distances from ``y`` to the points (the Weber objective)."""
    return sum(p.dist(y) for p in points)


def is_weber_point(points: Sequence[Vec2], y: Vec2, eps: float = EPS) -> bool:
    """Check first-order optimality of ``y`` for the Weber objective.

    The gradient of the objective at a non-data point is the sum of unit
    vectors toward ``y``; at an optimum it (nearly) vanishes.  At a data
    point the condition is that the residual of the others is at most 1.
    """
    grad = Vec2.zero()
    at_data_point = False
    for p in points:
        d = p.dist(y)
        if d < eps:
            at_data_point = True
            continue
        grad = grad + (y - p) / d
    if at_data_point:
        return grad.norm() <= 1.0 + eps
    return grad.norm() <= len(points) * eps * 100
