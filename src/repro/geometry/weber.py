"""Weber point (geometric median) computation.

The center of an m-regular (equiangular or biangular) set is its Weber
point (Anderegg, Cieliebak & Prencipe 2003, cited as [1] in the paper), and
the Weber point is invariant under straight-line movement of a point toward
it — which is why radial movements preserve regular sets.

The paper relies on the *existence* of a linear-time exact algorithm for
biangular configurations; for the simulator we only ever need a numerical
center good enough to *verify* equiangularity from it, so we use Weiszfeld
iteration with a robust start and a Newton-style polish of the
equiangularity residual performed by the callers in :mod:`repro.regular`.
"""

from __future__ import annotations

from math import hypot
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from .point import Vec2, centroid
from .tolerance import EPS


def weber_point(
    points: Sequence[Vec2],
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> Vec2:
    """Geometric median of ``points`` by damped Weiszfeld iteration.

    The iteration handles the classical degenerate case (current iterate
    coinciding with an input point) by Vardi-Zhang correction.

    Deliberately *not* memoised: the hit rate is under 10% on the E1
    workload (regular-set predicates mostly see fresh configurations),
    so the fingerprint packing on every miss costs more than the few
    hits save now that the solve itself runs on raw coordinates with a
    relaxed caller-side tolerance (``repro.regular.WEBER_TOL``).

    The array engine installs a kernel here (memoised + vectorized for
    large inputs; see :mod:`repro.fastsim.kernels`) — under its
    canonical frames the memo hit rate is high, which is what makes the
    memo worthwhile there and not here.

    Raises:
        ValueError: on an empty input.
    """
    if not points:
        raise ValueError("Weber point of an empty set is undefined")
    kernel = _KERNELS.weber
    if kernel is not None:
        return kernel(points, tol, max_iter)
    return _weiszfeld_solve(points, tol, max_iter)


def _weiszfeld_solve(
    points: Sequence[Vec2], tol: float, max_iter: int
) -> Vec2:
    """The scalar Weiszfeld solve (kernel dispatch lives above)."""
    if len(points) == 1:
        return points[0]
    if len(points) == 2:
        return Vec2(
            (points[0].x + points[1].x) / 2.0, (points[0].y + points[1].y) / 2.0
        )

    # The iteration runs on raw coordinate pairs: the arithmetic is the
    # same as with Vec2 operands, without an object allocation per step.
    # The step body (``_weiszfeld_step``) is inlined: at hundreds of
    # iterations per solve the call overhead alone is measurable.
    start = centroid(points)
    coords = [(p.x, p.y) for p in points]
    yx, yy = start.x, start.y
    _hypot = hypot
    tol_sq = tol * tol
    for _ in range(max_iter):
        num_x = num_y = denom = 0.0
        coincident = False
        for px, py in coords:
            d = _hypot(px - yx, py - yy)
            if d < 1e-14:
                coincident = True
                continue
            w = 1.0 / d
            num_x += px * w
            num_y += py * w
            denom += w
        if denom == 0.0:
            nx, ny = yx, yy
        else:
            tx, ty = num_x / denom, num_y / denom
            if not coincident:
                nx, ny = tx, ty
            else:
                # Vardi-Zhang: pull toward the plain Weiszfeld target but
                # keep the iterate from being stuck exactly on a data point.
                r = hypot(num_x - yx * denom, num_y - yy * denom)
                if r < 1e-14:
                    nx, ny = yx, yy
                else:
                    step = min(1.0, 1.0 / r)
                    nx, ny = yx + step * (tx - yx), yy + step * (ty - yy)
        # Convergence on the squared step length (one fewer hypot per
        # iteration; the iterate is within tol of a fixed point either way).
        dx, dy = nx - yx, ny - yy
        done = dx * dx + dy * dy <= tol_sq
        yx, yy = nx, ny
        if done:
            break
    return Vec2(yx, yy)


def _weiszfeld_step(
    coords: Sequence[tuple[float, float]], yx: float, yy: float
) -> tuple[float, float]:
    """One Weiszfeld step with Vardi-Zhang handling of coincidence."""
    num_x = num_y = denom = 0.0
    coincident = False
    for px, py in coords:
        d = hypot(px - yx, py - yy)
        if d < 1e-14:
            coincident = True
            continue
        w = 1.0 / d
        num_x += px * w
        num_y += py * w
        denom += w
    if denom == 0.0:
        return yx, yy
    tx, ty = num_x / denom, num_y / denom
    if not coincident:
        return tx, ty
    # Vardi-Zhang: pull toward the plain Weiszfeld target but keep the
    # iterate from being stuck exactly on a data point.
    r = hypot(num_x - yx * denom, num_y - yy * denom)
    if r < 1e-14:
        return yx, yy
    step = min(1.0, 1.0 / r)
    return yx + step * (tx - yx), yy + step * (ty - yy)


def weber_objective(points: Sequence[Vec2], y: Vec2) -> float:
    """Sum of distances from ``y`` to the points (the Weber objective)."""
    return sum(p.dist(y) for p in points)


def is_weber_point(points: Sequence[Vec2], y: Vec2, eps: float = EPS) -> bool:
    """Check first-order optimality of ``y`` for the Weber objective.

    The gradient of the objective at a non-data point is the sum of unit
    vectors toward ``y``; at an optimum it (nearly) vanishes.  At a data
    point the condition is that the residual of the others is at most 1.
    """
    grad = Vec2.zero()
    at_data_point = False
    for p in points:
        d = p.dist(y)
        if d < eps:
            at_data_point = True
            continue
        grad = grad + (y - p) / d
    if at_data_point:
        return grad.norm() <= 1.0 + eps
    return grad.norm() <= len(points) * eps * 100
