"""Simulation job service: JSON-over-HTTP batches over the store.

``python -m repro serve`` starts it; ``python -m repro submit`` talks
to it.  Architecture (all stdlib):

* :mod:`repro.service.jobs` — bounded submission queue + dispatcher
  thread executing jobs through :func:`repro.analysis.run` with the
  experiment store attached (admission control, live progress,
  kill-tolerant per-seed write-through), a durable
  :class:`~repro.store.ledger.JobLedger` with ``--recover`` startup
  replay, and a watchdog (per-job wall budgets, bounded re-dispatch of
  hung attempts);
* :mod:`repro.service.http` — ``ThreadingHTTPServer`` routes
  (``POST /jobs``, ``GET /jobs[/<id>]``, ``GET /results``,
  ``GET /healthz`` liveness, ``GET /readyz`` readiness);
* :mod:`repro.service.worker` — the distributed fabric: N
  :class:`Worker` processes (``python -m repro worker``) lease shards
  from the ledger's work queue (atomic claims, heartbeats, attempt-
  token fencing) and execute them through the batch facade, while a
  stateless front-end (``serve --no-dispatch``) answers reads purely
  from ledger + store;
* :mod:`repro.service.client` — resilient stdlib client
  (:class:`ServiceClient` with split timeouts, seeded-jitter retry
  backoff and a circuit breaker);
* :mod:`repro.service.errors` — the structured error taxonomy
  (:class:`ErrorCode`) shared by ledger rows, HTTP error payloads and
  client exceptions.
"""

from .client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    get_json,
    post_json,
    submit_job,
    wait_for_job,
)
from .errors import CircuitOpen, ErrorCode, JobTimeout, ServiceError
from .http import ServiceServer, make_server
from .jobs import Job, JobService, QueueFull
from .worker import Worker, default_worker_id

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "ErrorCode",
    "Job",
    "JobService",
    "JobTimeout",
    "QueueFull",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Worker",
    "default_worker_id",
    "get_json",
    "make_server",
    "post_json",
    "submit_job",
    "wait_for_job",
]
