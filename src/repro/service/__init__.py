"""Simulation job service: JSON-over-HTTP batches over the store.

``python -m repro serve`` starts it; ``python -m repro submit`` talks
to it.  Architecture (all stdlib):

* :mod:`repro.service.jobs` — bounded submission queue + dispatcher
  thread executing jobs through :func:`repro.analysis.run` with the
  experiment store attached (admission control, live progress,
  kill-tolerant per-seed write-through);
* :mod:`repro.service.http` — ``ThreadingHTTPServer`` routes
  (``POST /jobs``, ``GET /jobs[/<id>]``, ``GET /results``,
  ``GET /healthz``);
* :mod:`repro.service.client` — ``urllib`` helpers used by the CLI and
  tests.
"""

from .client import ServiceError, get_json, post_json, submit_job, wait_for_job
from .http import ServiceServer, make_server
from .jobs import Job, JobService, QueueFull

__all__ = [
    "Job",
    "JobService",
    "QueueFull",
    "ServiceError",
    "ServiceServer",
    "get_json",
    "make_server",
    "post_json",
    "submit_job",
    "wait_for_job",
]
