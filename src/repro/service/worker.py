"""Lease-based worker process for the distributed execution fabric.

A :class:`Worker` turns the job ledger (:mod:`repro.store.ledger`)
into a work queue: it claims one shard at a time with
:meth:`~repro.store.ledger.JobLedger.claim_next`, executes the shard's
seed range through the unified batch facade with the experiment store
attached, and reports the outcome back with the claim's lease token.
N workers against one ledger + one store form the fabric:

* every claim is atomic in sqlite, so two workers never run the same
  shard attempt;
* a background heartbeat thread extends the lease while the shard
  executes, so a *slow* shard is never stolen while its worker lives;
* a *dead* worker (SIGKILL included) simply stops heartbeating — the
  lease expires and :meth:`~repro.store.ledger.JobLedger.expire_stale`
  (run by every worker before claiming) returns the shard to the
  queue.  Per-seed store write-through makes the recovery cheap: the
  seeds the dead worker committed come back as cache hits and only
  the remainder re-executes, bit-identically;
* a worker that lost its lease anyway (e.g. a stop-the-world pause
  longer than the lease) is fenced by the attempt token: its late
  ``complete_shard`` / ``fail_shard`` are no-ops, and the records it
  wrote to the store are idempotent duplicates of the reclaiming
  worker's.

``python -m repro worker --ledger L --store S`` runs one; start as
many as you like, on as many hosts as can see the two sqlite files.
"""

from __future__ import annotations

import os
import socket
import threading
import traceback

from .. import hooks as _hooks
from ..analysis import BatchConfig, ScenarioSpec, run
from ..chaos.clock import Clock, resolve_clock
from ..store.ledger import JobLedger, ShardClaim
from .errors import ErrorCode

__all__ = ["Worker", "default_worker_id"]


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per live process, stable within one."""
    return f"{socket.gethostname()}-{os.getpid()}"


class Worker:
    """One worker process of the fabric: claim, execute, report, repeat.

    Args:
        ledger: path of the shared job ledger (the work queue).
        store: path of the shared experiment store (results +
            read-through memoisation).
        worker_id: identity written into claims; defaults to
            ``<hostname>-<pid>``.
        lease: seconds a claim stays fenced without a heartbeat.  The
            heartbeat thread renews at ``lease / 3``, so only a dead
            or badly stalled worker ever loses one.
        poll: idle sleep between empty claim attempts.
        max_attempts: shard attempts before the queue declares the
            shard (and its job) terminally failed.
        batch_workers: process count for the batch facade *inside*
            this worker (default 1 — fabric parallelism comes from
            running more workers).
        timeout: per-seed wall-clock budget forwarded to the batch.
        telemetry: spool per-step trace frames into the shared store
            while executing (``repro worker --telemetry``).  A fabric
            front-end tails that spool to serve
            ``GET /v1/jobs/<id>/events``; observe-only, records are
            bit-identical either way.
        log: callable for one-line progress events (``None`` = silent).
        clock: time source for lease bookkeeping (``None`` = the real
            clock).  Virtual-time tests inject a
            :class:`~repro.chaos.clock.VirtualClock`; chaos runs give
            each worker a :class:`~repro.chaos.clock.SkewedClock`
            (``repro worker`` reads ``REPRO_CHAOS_CLOCK_SKEW``), so
            lease timestamps written by different workers disagree —
            the attempt-token fence, not clock agreement, is what
            keeps the ledger consistent.
    """

    def __init__(
        self,
        ledger: str,
        store: str,
        *,
        worker_id: "str | None" = None,
        lease: float = 15.0,
        poll: float = 0.5,
        max_attempts: int = 3,
        batch_workers: int = 1,
        timeout: "float | None" = None,
        telemetry: bool = False,
        log=None,
        clock: "Clock | None" = None,
    ) -> None:
        if lease <= 0:
            raise ValueError("lease must be positive")
        if poll <= 0:
            raise ValueError("poll must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.clock = resolve_clock(clock)
        self.ledger = JobLedger(ledger, clock=self.clock)
        self.store = str(store)
        self.worker_id = worker_id or default_worker_id()
        self.lease = lease
        self.poll = poll
        self.max_attempts = max_attempts
        self.batch_workers = batch_workers
        self.timeout = timeout
        self.telemetry = bool(telemetry)
        self._log = log
        self._stop = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def stop(self) -> None:
        """Ask the loop to exit after the current shard (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run_forever(self, *, drain: bool = False) -> int:
        """Claim-and-execute until stopped; returns shards processed.

        ``drain=True`` exits as soon as no shard is claimable instead
        of idling — the mode tests and one-shot CLI invocations use to
        empty a queue deterministically.
        """
        processed = 0
        while not self._stop.is_set():
            if self.run_once():
                processed += 1
                continue
            if drain:
                break
            self._stop.wait(self.poll)
        return processed

    def run_once(self) -> bool:
        """Reap stale leases, then claim and execute at most one shard."""
        self.ledger.expire_stale(max_attempts=self.max_attempts)
        claim = self.ledger.claim_next(
            self.worker_id, lease=self.lease, max_attempts=self.max_attempts
        )
        if claim is None:
            return False
        self._execute(claim)
        return True

    # -- shard execution ------------------------------------------------
    def _execute(self, claim: ShardClaim) -> None:
        self._emit(
            f"claimed {claim.job_id}/{claim.shard}"
            f" ({len(claim.seeds)} seeds, attempt {claim.token})"
        )
        hb_stop = threading.Event()
        heartbeats = threading.Thread(
            target=self._heartbeat_loop,
            args=(claim, hb_stop),
            name=f"repro-hb-{claim.job_id}-{claim.shard}",
            daemon=True,
        )
        heartbeats.start()
        try:
            batch = run(
                ScenarioSpec.from_dict(dict(claim.spec)),
                list(claim.seeds),
                BatchConfig(
                    workers=self.batch_workers,
                    timeout=self.timeout,
                    store=self.store,
                    # A frame-listening sink switches the facade's store
                    # spooling on; workers have no live subscribers, so
                    # the sink itself discards — the front-end tails
                    # the spool over SSE instead.
                    telemetry=_hooks.spool_only_sink()
                    if self.telemetry
                    else None,
                ),
            )
        except Exception as exc:  # noqa: BLE001 — a bad shard must not kill the loop
            hb_stop.set()
            heartbeats.join()
            self._report_failure(claim, exc)
            return
        hb_stop.set()
        heartbeats.join()
        if self.ledger.complete_shard(
            claim.job_id, claim.shard, self.worker_id, claim.token
        ):
            self._emit(
                f"done {claim.job_id}/{claim.shard}"
                f" ({batch.store_hits} hits / {batch.store_misses} misses)"
            )
        else:
            # Fenced: the lease expired and another worker reclaimed
            # the shard.  Our records are already in the store (write-
            # through is idempotent), so nothing is lost — only this
            # report is discarded.
            self._emit(
                f"[{ErrorCode.LEASE_LOST}] {claim.job_id}/{claim.shard}:"
                " completed after losing the lease; results kept in store"
            )

    def _report_failure(self, claim: ShardClaim, exc: Exception) -> None:
        message = f"{type(exc).__name__}: {exc}"
        requeue = claim.token < self.max_attempts
        if requeue:
            applied = self.ledger.fail_shard(
                claim.job_id,
                claim.shard,
                self.worker_id,
                claim.token,
                ErrorCode.EXEC_ERROR.value,
                message,
                requeue=True,
            )
            outcome = "requeued" if applied else "fenced"
        else:
            applied = self.ledger.fail_shard(
                claim.job_id,
                claim.shard,
                self.worker_id,
                claim.token,
                ErrorCode.ATTEMPTS_EXHAUSTED.value,
                f"gave up after {claim.token} attempt(s); last: {message}",
                requeue=False,
            )
            outcome = "failed" if applied else "fenced"
        self._emit(f"{outcome} {claim.job_id}/{claim.shard}: {message}")
        if self._log is None and not requeue:
            # Terminal shard failures should not vanish silently in
            # embedded (log-less) workers either; keep the traceback
            # reachable for debugging.
            traceback.clear_frames(exc.__traceback__)

    def _heartbeat_loop(self, claim: ShardClaim, stop: threading.Event) -> None:
        interval = self.lease / 3.0
        while not stop.wait(interval):
            if not self.ledger.heartbeat(
                claim.job_id,
                claim.shard,
                self.worker_id,
                claim.token,
                lease=self.lease,
            ):
                # Lease lost; the token guard already fences our final
                # report, so just stop renewing.
                return

    def _emit(self, message: str) -> None:
        if self._log is not None:
            self._log(f"worker {self.worker_id}: {message}")
