"""JSON-over-HTTP front end for the job service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web
framework.  Routes:

``POST /jobs``
    Submit a workload.  Body: ``{"spec": {...}, "seeds": [...]}`` or
    ``{"spec": {...}, "seed_start": 0, "runs": 16}``, plus an optional
    ``"shards": N`` (fabric front-ends only) that splits the seed list
    into N leasable ranges executed concurrently by ``repro worker``
    processes.  Replies 202 with the job snapshot, 400 on a malformed
    spec, 429 once the admission queue is full, 503 while shutting
    down.  Error replies drain (or close) the request stream, so a
    persistent connection never desyncs on an unread body.
``GET /jobs``
    Snapshots of every known job, submission-ordered.
``GET /jobs/<id>``
    One job's live progress: status, done/total, store hits/misses and
    a partial aggregate over the records committed so far.  Jobs that
    finished before a restart are answered from the durable ledger
    (aggregate re-derived from the store).
``GET /results``
    The store's scenario inventory; with ``?fingerprint=<fp>`` the
    aggregate row for that workload, plus per-seed records when
    ``&records=1``.
``GET /healthz``
    Liveness probe: 200 as long as the process can serve requests.
``GET /readyz``
    Readiness probe: 200 with the drain/queue/ledger-backlog view
    while accepting work, 503 (same payload) once draining.

Error responses carry a structured ``"code"`` from the shared taxonomy
(:class:`repro.service.errors.ErrorCode`) next to the human-readable
``"error"`` message.

Responses are strict JSON: non-finite floats (an aggregate over zero
successes is NaN) are encoded as the same ``"NaN"`` / ``"Infinity"``
string sentinels the run journal uses.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..analysis.journal import encode_record
from ..store import ExperimentStore
from .errors import ErrorCode
from .jobs import JobService, QueueFull

__all__ = ["ServiceServer", "make_server"]


def _json_safe(value):
    """Recursively replace non-finite floats with string sentinels."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + store for its handlers."""

    daemon_threads = True

    def __init__(self, address, service: JobService) -> None:
        self.service = service
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer  # narrowed for the route helpers

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # polling GET /jobs/<id> would flood stderr

    # -- plumbing -------------------------------------------------------
    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(
            _json_safe(payload), ensure_ascii=False, allow_nan=False
        ).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, code: ErrorCode, message: str) -> None:
        self._reply(status, {"error": message, "code": code.value})

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            # Unknown body length: it cannot be drained, so the 400
            # reply must not keep this connection alive.
            self.close_connection = True
            raise ValueError("bad Content-Length header") from None
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ValueError("empty request body")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _drain_body(self) -> None:
        """Consume an unread request body before replying on an error path.

        HTTP/1.1 connections are persistent: replying without reading
        the body leaves its bytes in the stream, and the *next*
        request parse on the same connection would start mid-body —
        a keep-alive desync that turns one bad request into garbage
        responses for every request after it.  Bodies we cannot cheaply
        drain (chunked, oversized) close the connection instead.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
                self.close_connection = True
            return
        if length > 16 * 1024 * 1024:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            self._reply(200, {"ok": True, "store": self.server.service.store})
        elif parts == ["readyz"]:
            info = self.server.service.health()
            self._reply(200 if info["ready"] else 503, info)
        elif parts == ["jobs"]:
            self._reply(200, {"jobs": self.server.service.snapshots()})
        elif len(parts) == 2 and parts[0] == "jobs":
            snapshot = self.server.service.lookup(parts[1])
            if snapshot is None:
                self._error(
                    404, ErrorCode.NOT_FOUND, f"no such job {parts[1]!r}"
                )
            else:
                self._reply(200, snapshot)
        elif parts == ["results"]:
            self._get_results(parse_qs(url.query))
        else:
            self._error(404, ErrorCode.NOT_FOUND, f"no route {url.path!r}")

    def _get_results(self, query: dict) -> None:
        store = ExperimentStore(self.server.service.store)
        fingerprint = query.get("fingerprint", [None])[0]
        if fingerprint is None:
            self._reply(
                200,
                {
                    "scenarios": [
                        {
                            "fingerprint": s.fingerprint,
                            "name": s.name,
                            "runs": s.runs,
                        }
                        for s in store.scenarios()
                    ]
                },
            )
            return
        batch = store.aggregate(fingerprint)
        payload: dict = {
            "fingerprint": fingerprint,
            "runs": batch.n_runs(),
            "aggregate": batch.row() if batch.runs else None,
        }
        if query.get("records", ["0"])[0] not in ("0", ""):
            payload["records"] = [
                json.loads(encode_record(r)) for r in batch.runs
            ]
        self._reply(200, payload)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        if url.path.rstrip("/") != "/jobs":
            # Error replies must still drain the request body, or the
            # unread bytes desync the next request on this connection.
            self._drain_body()
            self._error(404, ErrorCode.NOT_FOUND, f"no route {url.path!r}")
            return
        try:
            body = self._read_body()
            spec = body["spec"]
            if "seeds" in body:
                seeds = body["seeds"]
            else:
                start = int(body.get("seed_start", 0))
                seeds = range(start, start + int(body["runs"]))
            shards = body.get("shards")
            job = self.server.service.submit(
                spec, seeds, shards=None if shards is None else int(shards)
            )
        except QueueFull as exc:
            self._error(429, ErrorCode.QUEUE_FULL, str(exc))
            return
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._error(400, ErrorCode.SPEC_INVALID, f"bad request: {exc}")
            return
        except RuntimeError as exc:  # shutting down
            self._error(503, ErrorCode.SHUTTING_DOWN, str(exc))
            return
        self._reply(202, job.snapshot())


def make_server(
    service: JobService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind a :class:`ServiceServer`; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` (from another thread or a signal handler) to stop
    accepting, then ``service.stop()`` to drain the dispatcher.
    """
    return ServiceServer((host, port), service)
