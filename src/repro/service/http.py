"""JSON-over-HTTP front end for the job service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web
framework.  The wire surface is **versioned**: every route lives under
``/v1/`` and is matched against the single :data:`ROUTES` table below
(one place, no per-handler string matching).  The historical unprefixed
paths remain as deprecated aliases that answer byte-identically but
carry a ``Deprecation: true`` response header (plus a ``Link``
``successor-version`` pointer), so existing clients keep working while
new ones migrate.  See DESIGN.md "Wire API v1" for the full contract.

``POST /v1/jobs``
    Submit a workload.  Body: ``{"spec": {...}, "seeds": [...]}`` or
    ``{"spec": {...}, "seed_start": 0, "runs": 16}``, plus an optional
    ``"shards": N`` (fabric front-ends only) that splits the seed list
    into N leasable ranges executed concurrently by ``repro worker``
    processes.  Replies 202 with the job snapshot, 400 on a malformed
    spec, 429 once the admission queue is full, 503 while shutting
    down.  Error replies drain (or close) the request stream, so a
    persistent connection never desyncs on an unread body.
``GET /v1/jobs``
    Snapshots of every known job, submission-ordered.
``GET /v1/jobs/<id>``
    One job's live progress: status, done/total, store hits/misses and
    a partial aggregate over the records committed so far.  Fabric
    jobs additionally carry per-shard detail (``shards.states``).
``GET /v1/jobs/<id>/events``
    Server-Sent Events stream of the job's telemetry: ``frame`` events
    (one per applied scheduler action, when the service runs with
    telemetry enabled), ``record`` / ``aggregate`` rolling progress,
    ``status`` transitions, and a terminal ``end`` event.  A running
    dispatch-mode job streams live off the in-process bus; fabric jobs
    and finished jobs stream from the store's frame spool.
``GET /v1/runs/<fingerprint>/<seed>/replay``
    SSE replay of one finished run's spooled frames — byte-identical
    ``data:`` payloads to what the live stream emitted for the same
    ``(fingerprint, seed)``.
``GET /v1/results``
    The store's scenario inventory; with ``?fingerprint=<fp>`` the
    aggregate row for that workload, plus per-seed records when
    ``&records=1``.
``GET /v1/ui``
    The static HTML telemetry viewer (canvas + stats panel).
``GET /v1/healthz`` / ``GET /v1/readyz``
    Liveness / readiness probes; ``readyz`` carries the telemetry bus
    and frame-spool counters.

Error responses carry a structured ``"code"`` from the shared taxonomy
(:class:`repro.service.errors.ErrorCode`) next to the human-readable
``"error"`` message.

Responses are strict JSON: non-finite floats (an aggregate over zero
successes is NaN) are encoded as the same ``"NaN"`` / ``"Infinity"``
string sentinels the run journal uses.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..analysis.journal import encode_record
from ..store import ExperimentStore
from ..telemetry.viewer import VIEWER_HTML
from .errors import ErrorCode
from .jobs import JobService, QueueFull

__all__ = ["API_VERSION", "ROUTES", "ServiceServer", "make_server", "match_route"]

#: The current wire API version — the path prefix of every route.
API_VERSION = "v1"

#: The route table: ``(method, path pattern, handler method name)``.
#: ``*`` segments are wildcards whose values are passed to the handler
#: in order.  This is the *only* place routes are defined; the legacy
#: unprefixed aliases are derived (same table, minus the version
#: segment, plus a ``Deprecation`` header).
ROUTES: tuple[tuple[str, tuple[str, ...], str], ...] = (
    ("GET", ("healthz",), "_get_healthz"),
    ("GET", ("readyz",), "_get_readyz"),
    ("GET", ("jobs",), "_get_jobs"),
    ("GET", ("jobs", "*"), "_get_job"),
    ("GET", ("jobs", "*", "events"), "_get_job_events"),
    ("GET", ("runs", "*", "*", "replay"), "_get_replay"),
    ("GET", ("results",), "_get_results"),
    ("GET", ("ui",), "_get_ui"),
    ("POST", ("jobs",), "_post_jobs"),
)

#: How long an SSE wait on the bus may block before the handler probes
#: the connection (disconnect detection) and the job's terminal state.
_SSE_POLL_S = 0.5
#: Fabric-mode spool tailing interval while no new frames arrive.
_SSE_TAIL_IDLE_S = 0.25


def match_route(
    method: str, parts: "tuple[str, ...]"
) -> "tuple[str, list[str]] | None":
    """Resolve ``(method, path segments)`` against :data:`ROUTES`.

    Returns ``(handler name, wildcard values)`` or ``None``.  The
    caller strips the ``/v1`` prefix first; this function is agnostic
    of versioning by design (aliases answer identically).
    """
    for route_method, pattern, handler in ROUTES:
        if route_method != method or len(pattern) != len(parts):
            continue
        if all(p == "*" or p == seg for p, seg in zip(pattern, parts)):
            return handler, [
                seg for p, seg in zip(pattern, parts) if p == "*"
            ]
    return None


def _json_safe(value):
    """Recursively replace non-finite floats with string sentinels."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _encode_json(payload: dict) -> str:
    return json.dumps(_json_safe(payload), ensure_ascii=False, allow_nan=False)


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + store for its handlers."""

    daemon_threads = True

    def __init__(self, address, service: JobService) -> None:
        self.service = service
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer  # narrowed for the route helpers

    protocol_version = "HTTP/1.1"

    #: Set per request by :meth:`_dispatch`: the request arrived on a
    #: legacy unversioned path, so every reply (success *and* error)
    #: must carry the deprecation headers.
    _deprecated = False

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # polling GET /jobs/<id> would flood stderr

    # -- plumbing -------------------------------------------------------
    def _deprecation_headers(self) -> None:
        if self._deprecated:
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link",
                f"</{API_VERSION}{urlparse(self.path).path}>; "
                'rel="successor-version"',
            )

    def _reply(self, code: int, payload: dict) -> None:
        body = _encode_json(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._deprecation_headers()
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, code: ErrorCode, message: str) -> None:
        self._reply(status, {"error": message, "code": code.value})

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            # Unknown body length: it cannot be drained, so the 400
            # reply must not keep this connection alive.
            self.close_connection = True
            raise ValueError("bad Content-Length header") from None
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ValueError("empty request body")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _drain_body(self) -> None:
        """Consume an unread request body before replying on an error path.

        HTTP/1.1 connections are persistent: replying without reading
        the body leaves its bytes in the stream, and the *next*
        request parse on the same connection would start mid-body —
        a keep-alive desync that turns one bad request into garbage
        responses for every request after it.  Bodies we cannot cheaply
        drain (chunked, oversized) close the connection instead.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
                self.close_connection = True
            return
        if length > 16 * 1024 * 1024:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    # -- dispatch -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        versioned = bool(parts) and parts[0] == API_VERSION
        if versioned:
            parts = parts[1:]
        # Any unversioned request is on the deprecated surface — error
        # replies included, so a legacy client's monitoring sees the
        # header too.
        self._deprecated = not versioned
        matched = match_route(method, tuple(parts))
        if matched is None:
            if method == "POST":
                # Error replies must still drain the request body, or
                # the unread bytes desync the next request on this
                # connection.
                self._drain_body()
            self._error(404, ErrorCode.NOT_FOUND, f"no route {url.path!r}")
            return
        handler, params = matched
        getattr(self, handler)(params, parse_qs(url.query))

    # -- plain JSON routes ----------------------------------------------
    def _get_healthz(self, params, query) -> None:
        self._reply(200, {"ok": True, "store": self.server.service.store})

    def _get_readyz(self, params, query) -> None:
        info = self.server.service.health()
        self._reply(200 if info["ready"] else 503, info)

    def _get_jobs(self, params, query) -> None:
        self._reply(200, {"jobs": self.server.service.snapshots()})

    def _get_job(self, params, query) -> None:
        (job_id,) = params
        snapshot = self.server.service.lookup(job_id)
        if snapshot is None:
            self._error(404, ErrorCode.NOT_FOUND, f"no such job {job_id!r}")
        else:
            self._reply(200, snapshot)

    def _get_results(self, params, query) -> None:
        store = ExperimentStore(self.server.service.store)
        fingerprint = query.get("fingerprint", [None])[0]
        if fingerprint is None:
            self._reply(
                200,
                {
                    "scenarios": [
                        {
                            "fingerprint": s.fingerprint,
                            "name": s.name,
                            "runs": s.runs,
                        }
                        for s in store.scenarios()
                    ]
                },
            )
            return
        batch = store.aggregate(fingerprint)
        payload: dict = {
            "fingerprint": fingerprint,
            "runs": batch.n_runs(),
            "aggregate": batch.row() if batch.runs else None,
        }
        if query.get("records", ["0"])[0] not in ("0", ""):
            payload["records"] = [
                json.loads(encode_record(r)) for r in batch.runs
            ]
        self._reply(200, payload)

    def _get_ui(self, params, query) -> None:
        body = VIEWER_HTML.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self._deprecation_headers()
        self.end_headers()
        self.wfile.write(body)

    def _post_jobs(self, params, query) -> None:
        try:
            body = self._read_body()
            spec = body["spec"]
            if "seeds" in body:
                seeds = body["seeds"]
            else:
                start = int(body.get("seed_start", 0))
                seeds = range(start, start + int(body["runs"]))
            shards = body.get("shards")
            job = self.server.service.submit(
                spec, seeds, shards=None if shards is None else int(shards)
            )
        except QueueFull as exc:
            self._error(429, ErrorCode.QUEUE_FULL, str(exc))
            return
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._error(400, ErrorCode.SPEC_INVALID, f"bad request: {exc}")
            return
        except RuntimeError as exc:  # shutting down
            self._error(503, ErrorCode.SHUTTING_DOWN, str(exc))
            return
        self._reply(202, job.snapshot())

    # -- SSE streaming routes -------------------------------------------
    def _sse_start(self) -> None:
        # No Content-Length: the stream ends when the handler closes
        # the connection, so keep-alive must be off for this exchange.
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self._deprecation_headers()
        self.end_headers()

    def _sse_emit(self, event: str, data: str) -> None:
        self.wfile.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
        self.wfile.flush()

    def _sse_json(self, event: str, payload: dict) -> None:
        self._sse_emit(event, _encode_json(payload))

    def _sse_ping(self) -> None:
        """SSE comment line: ignored by clients, detects dead sockets.

        A disconnected client does not interrupt a blocked read on the
        server side — only a *write* raises.  Pinging on every idle
        poll bounds how long a vanished subscriber can pin its handler
        thread and bus subscription.
        """
        self.wfile.write(b": ping\n\n")
        self.wfile.flush()

    @staticmethod
    def _terminal(snapshot: "dict | None") -> bool:
        return snapshot is None or snapshot.get("status") in ("done", "failed")

    def _get_job_events(self, params, query) -> None:
        (job_id,) = params
        service = self.server.service
        snapshot = service.lookup(job_id)
        if snapshot is None:
            self._error(404, ErrorCode.NOT_FOUND, f"no such job {job_id!r}")
            return
        if service.dispatch and not self._terminal(snapshot):
            self._stream_live(service, job_id)
        else:
            # Fabric front-ends have no in-process bus to the workers,
            # and finished jobs have no live events left — both stream
            # from the store's frame spool (tailing it while a fabric
            # job still runs).
            self._stream_spool(service, job_id, snapshot)

    def _stream_live(self, service: JobService, job_id: str) -> None:
        """Live SSE off the telemetry bus (dispatch mode, job running)."""
        subscription = service.bus.subscribe()
        try:
            self._sse_start()
            self._sse_json("status", service.lookup(job_id) or {})
            while True:
                event = subscription.get(timeout=_SSE_POLL_S)
                if event is not None:
                    if event.get("job") != job_id:
                        continue
                    self._emit_bus_event(event)
                    continue
                # Idle: probe the socket, then the job's state.
                self._sse_ping()
                current = service.lookup(job_id)
                if self._terminal(current) or service.stopping:
                    # Drain what the bus already queued before closing
                    # (the terminal status event races the poll).
                    while True:
                        event = subscription.get(timeout=0.05)
                        if event is None:
                            break
                        if event.get("job") == job_id:
                            self._emit_bus_event(event)
                    self._sse_json("status", current or {})
                    self._sse_emit("end", "{}")
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; unsubscribe below
        finally:
            service.bus.unsubscribe(subscription)

    def _emit_bus_event(self, event: dict) -> None:
        data = event.get("data")
        if isinstance(data, str):
            # Frames arrive pre-encoded (the byte-exact spool payload);
            # re-serializing would be a second, divergent encoder.
            self._sse_emit(event["event"], data)
        else:
            self._sse_json(event["event"], data or {})

    def _stream_spool(
        self, service: JobService, job_id: str, snapshot: dict
    ) -> None:
        """SSE from the store's frame spool (fabric mode / finished jobs).

        Tails ``frames_after`` with a rowid cursor, filtered to the
        job's seed set (several jobs may share one workload
        fingerprint), until the job goes terminal and the spool is
        drained.
        """
        workload = service.job_workload(job_id)
        if workload is None:
            self._error(404, ErrorCode.NOT_FOUND, f"no such job {job_id!r}")
            return
        spec, seeds = workload
        wanted = set(seeds)
        fingerprint = service.workload_fingerprint(spec)
        store = ExperimentStore(service.store)
        cursor = 0
        last_done = None
        self._sse_start()
        try:
            self._sse_json("status", snapshot)
            while True:
                # Status before drain: workers flush their spool before
                # marking a shard complete, so a terminal state observed
                # *here* guarantees the drain below sees every frame.
                # The other order loses the final flush when it lands
                # between an empty drain and the terminal check.
                current = service.lookup(job_id)
                ending = self._terminal(current) or service.stopping
                rows = store.frames_after(fingerprint, cursor)
                for rowid, seed, _idx, payload in rows:
                    cursor = rowid
                    if seed in wanted:
                        self._sse_emit("frame", payload)
                if current is not None and current.get("done") != last_done:
                    last_done = current.get("done")
                    self._sse_json("aggregate", current)
                if not rows:
                    if ending:
                        self._sse_json("status", current or {})
                        self._sse_emit("end", "{}")
                        return
                    self._sse_ping()
                    time.sleep(_SSE_TAIL_IDLE_S)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away

    def _get_replay(self, params, query) -> None:
        fingerprint, seed_text = params
        try:
            seed = int(seed_text)
        except ValueError:
            self._error(
                400, ErrorCode.SPEC_INVALID, f"bad seed {seed_text!r}"
            )
            return
        store = ExperimentStore(self.server.service.store)
        payloads = store.frames(fingerprint, seed)
        if not payloads:
            self._error(
                404,
                ErrorCode.NOT_FOUND,
                f"no spooled frames for ({fingerprint!r}, {seed})",
            )
            return
        self._sse_start()
        try:
            for payload in payloads:
                self._sse_emit("frame", payload)
            self._sse_emit("end", "{}")
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away mid-replay


def make_server(
    service: JobService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind a :class:`ServiceServer`; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` (from another thread or a signal handler) to stop
    accepting, then ``service.stop()`` to drain the dispatcher.
    """
    return ServiceServer((host, port), service)
