"""Job management behind the simulation service.

A :class:`JobService` owns a bounded submission queue and a single
dispatcher thread.  Submitting a job validates its spec, assigns an id
and enqueues it; the dispatcher pulls jobs in order and executes each
through the unified batch facade (:func:`repro.analysis.run`) with the
experiment store attached, so

* seeds the store already holds complete instantly as cache hits,
* every newly simulated seed is written through to the store the
  moment it commits — a killed service (even SIGKILL) loses at most
  the seeds that were in flight.

Durability (the job ledger)
---------------------------
With a :class:`~repro.store.ledger.JobLedger` attached, every job is
persisted — canonical spec, seeds, status, attempts — *before* submit
returns, and every status transition is written through.  A service
constructed with ``recover=True`` re-enqueues the ledger's
``queued``/``running`` jobs ahead of new submissions; recovered jobs
keep their original ids and complete via store read-through, so a
SIGKILL mid-campaign costs at most the in-flight seeds.

Watchdog supervision
--------------------
When ``job_budget`` is set, each execution attempt runs on its own
runner thread and the dispatcher waits at most ``job_budget`` seconds
for it.  A hung attempt is abandoned (the daemon thread is left to
die with the process; an attempt token keeps its late results from
corrupting the job) and the job is re-dispatched up to
``max_attempts`` times, after which it goes terminal ``failed`` with
the ``attempts-exhausted`` code from the shared error taxonomy.

Admission control is the queue bound: :meth:`JobService.submit` raises
:class:`QueueFull` once ``max_queue`` jobs are waiting (the HTTP layer
maps that to 429).  Recovered jobs bypass the bound — they were
admitted by a previous incarnation and sit in an internal backlog that
drains first.

Progress is observable while a job runs: the facade's ``on_record``
hook records each committed seed under the job's lock, and
:meth:`Job.snapshot` serves done/total counts plus a partial aggregate
over the records committed so far.

Fabric front-end mode
---------------------
Constructed with ``dispatch=False`` (CLI: ``serve --no-dispatch``) the
service stops executing anything itself: submissions become leasable
ledger shards for external :mod:`repro.service.worker` processes, and
every read is answered purely from ledger + store.  See
:mod:`repro.service.worker` for the fabric's claim/heartbeat/fencing
protocol.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
from collections import deque
from dataclasses import dataclass, field

from .. import hooks as _hooks
from ..analysis import BatchConfig, BatchResult, ScenarioSpec, run
from ..analysis.batch import RunRecord
from ..analysis.journal import encode_record
from ..chaos.clock import Clock, resolve_clock
from ..store.ledger import JobLedger
from ..telemetry import TelemetryBus, encode_frame
from ..telemetry.spool import spool_stats
from .errors import ErrorCode

__all__ = ["Job", "JobService", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised when the submission queue is at its admission bound."""


_SENTINEL = object()


@dataclass
class Job:
    """One submitted ``(spec, seeds)`` workload and its live progress."""

    id: str
    spec: dict
    seeds: list[int]
    status: str = "queued"  # queued | running | done | failed
    attempts: int = 0
    hits: int = 0
    misses: int = 0
    error: str | None = None
    error_code: str | None = None
    records: dict[int, RunRecord] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def total(self) -> int:
        return len(self.seeds)

    def begin_attempt(self) -> "int | None":
        """Mark the start of an execution attempt; return its token.

        The token is checked by :meth:`add_record` and the completion
        methods so that a previously abandoned (hung) attempt that
        wakes up late cannot touch the job's state anymore.  Returns
        ``None`` without side effects when the job is already terminal
        — a re-dispatch that raced a late completion must not resurrect
        a finished job.
        """
        with self._lock:
            if self.status not in ("queued", "running"):
                return None
            self.attempts += 1
            self.status = "running"
            return self.attempts

    def add_record(self, record: RunRecord, token: "int | None" = None) -> None:
        with self._lock:
            if token is not None and token != self.attempts:
                return  # stale attempt; the store has the record anyway
            self.records[record.seed] = record

    def complete_success(self, token: int, batch: BatchResult) -> bool:
        """Finish the attempt as ``done``; False if the token is stale."""
        with self._lock:
            if token != self.attempts or self.status not in ("running",):
                return False
            self.hits = batch.store_hits
            self.misses = batch.store_misses
            self.status = "done"
            return True

    def complete_failure(self, token: int, code: str, message: str) -> bool:
        """Finish the attempt as ``failed``; False if the token is stale."""
        with self._lock:
            if token != self.attempts or self.status not in ("running",):
                return False
            self.error_code = code
            self.error = message
            self.status = "failed"
            return True

    def fail(self, code: str, message: str, token: "int | None" = None) -> bool:
        """Force the job terminal ``failed`` (watchdog/recovery path).

        Status-aware: a job that already went terminal (the runner won
        the race against the watchdog's ``done.wait`` timeout) is left
        untouched.  With ``token`` given the call additionally applies
        only while that attempt is the current one, so an abandoned
        watchdog cannot fail a job a newer attempt owns.  Returns
        whether the transition applied.
        """
        with self._lock:
            if self.status not in ("queued", "running"):
                return False
            if token is not None and token != self.attempts:
                return False
            self.error_code = code
            self.error = message
            self.status = "failed"
            return True

    def _partial_locked(self) -> BatchResult:
        """Build the partial aggregate; caller must hold ``_lock``."""
        batch = BatchResult(self.spec.get("name", self.id))
        batch.runs = sorted(self.records.values(), key=lambda r: r.seed)
        batch.store_hits = self.hits
        batch.store_misses = self.misses
        return batch

    def partial_result(self) -> BatchResult:
        """Aggregate over the records committed so far (seed-ordered)."""
        with self._lock:
            return self._partial_locked()

    def snapshot(self) -> dict:
        """A JSON-ready progress view (what ``GET /jobs/<id>`` serves).

        All fields are read in one critical section, so the view is
        internally consistent: a snapshot can never pair
        ``status="done"`` with the counters or records of an earlier
        moment (the torn read the per-field reads used to allow).
        """
        with self._lock:
            partial = self._partial_locked()
            status = self.status
            attempts = self.attempts
            hits = self.hits
            misses = self.misses
            error = self.error
            error_code = self.error_code
        return {
            "id": self.id,
            "status": status,
            "done": partial.n_runs(),
            "total": self.total,
            "attempts": attempts,
            "hits": hits,
            "misses": misses,
            "error": error,
            "error_code": error_code,
            "aggregate": partial.row() if partial.runs else None,
        }


class JobService:
    """Bounded job queue + dispatcher over the batch facade and store.

    Args:
        store: path of the experiment store every job reads and writes
            through (required — the store is what makes the service
            kill-tolerant and deduplicating).
        workers: worker processes per batch (``BatchConfig.workers``).
        timeout: per-seed wall-clock budget forwarded to the batch.
        max_queue: admission bound on *waiting* jobs.
        auto_start: start the dispatcher thread immediately (tests pass
            ``False`` to inspect queue behaviour deterministically).
        ledger: path of the durable job ledger; ``None`` keeps the
            pre-ledger in-memory-only behaviour.
        recover: re-enqueue the ledger's unfinished jobs at startup
            (requires ``ledger``).
        job_budget: per-attempt wall budget in seconds; ``None``
            disables the watchdog.
        max_attempts: execution attempts per job before it goes
            terminal ``failed`` with ``attempts-exhausted``.
        dispatch: ``True`` (default) runs the classic in-process
            dispatcher thread.  ``False`` turns the service into a
            pure **fabric front-end**: submissions are persisted to
            the ledger as leasable shards and picked up by external
            ``repro worker`` processes; every read
            (``GET /jobs/<id>``, listings) is answered purely from
            ledger + store, so the front-end itself is stateless and
            restartable at will.  Requires ``ledger``.
        telemetry: enable per-step frame telemetry for dispatched jobs
            (``repro serve --telemetry``).  Frames flow through the
            in-process :class:`~repro.telemetry.TelemetryBus` to SSE
            subscribers and are spooled into the store for replay.
            Observe-only: records and determinism are unaffected.  The
            bus itself always exists — record/aggregate/status events
            are published for every dispatched job regardless — the
            flag only switches the (per-step, higher-volume) frames on.
        clock: time source threaded into the attached ledger (``None``
            = the real clock); the seam virtual-time tests and chaos
            runs inject through.
    """

    def __init__(
        self,
        store: str,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        max_queue: int = 8,
        auto_start: bool = True,
        ledger: "str | None" = None,
        recover: bool = False,
        job_budget: "float | None" = None,
        max_attempts: int = 3,
        dispatch: bool = True,
        telemetry: bool = False,
        clock: "Clock | None" = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if job_budget is not None and job_budget <= 0:
            raise ValueError("job_budget must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if recover and ledger is None:
            raise ValueError("recover=True requires a ledger path")
        if not dispatch and ledger is None:
            raise ValueError("dispatch=False (fabric mode) requires a ledger")
        if not dispatch and recover:
            raise ValueError(
                "recover is a dispatcher feature; fabric workers lease "
                "unfinished shards from the ledger on their own"
            )
        self.dispatch = dispatch
        self.telemetry = bool(telemetry)
        self.bus = TelemetryBus()
        self.store = str(store)
        self.workers = workers
        self.timeout = timeout
        self.job_budget = job_budget
        self.max_attempts = max_attempts
        self.clock = resolve_clock(clock)
        self.ledger: JobLedger | None = (
            JobLedger(ledger, clock=self.clock) if ledger is not None else None
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._backlog: "deque[Job]" = deque()  # recovered jobs, run first
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        start_id = 1 if self.ledger is None else self.ledger.next_job_number()
        self._ids = itertools.count(start_id)
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        self._current: Job | None = None
        self.recovered: list[str] = []
        if recover:
            self._recover()
        if auto_start:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if not self.dispatch:
            return  # fabric mode: external workers execute, nothing to start
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self, wait: bool = True, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new jobs, drain the running one.

        The currently executing job runs to completion (its records
        were being written through to the store per seed anyway, so
        nothing committed is ever at risk); jobs still queued stay
        ``queued`` — with a ledger attached they are already durable
        and the next ``serve --recover`` picks them up verbatim.
        """
        self._stopping.set()
        try:
            self._queue.put_nowait(_SENTINEL)  # fast wake-up, best-effort
        except queue.Full:
            pass  # the dispatcher polls _stopping between jobs anyway
        if wait and self._thread is not None:
            self._thread.join(timeout)

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        """Re-enqueue the ledger's unfinished jobs (startup, pre-dispatch).

        Jobs come back in original submission order with their original
        ids; ones that already burned ``max_attempts`` go terminal
        instead of looping forever, and ones whose stored spec no
        longer validates (code drift) go terminal ``spec-invalid``.
        """
        assert self.ledger is not None
        for entry in self.ledger.recoverable():
            job = Job(
                id=entry.id,
                spec=dict(entry.spec),
                seeds=list(entry.seeds),
                attempts=entry.attempts,
            )
            with self._lock:
                self._jobs[job.id] = job
                self._order.append(job.id)
            try:
                ScenarioSpec.from_dict(dict(entry.spec))
            except Exception as exc:  # noqa: BLE001 — classify, don't crash startup
                message = f"{type(exc).__name__}: {exc}"
                job.fail(ErrorCode.SPEC_INVALID.value, message)
                self._ledger_sync(job)
                continue
            if entry.attempts >= self.max_attempts:
                job.fail(
                    ErrorCode.ATTEMPTS_EXHAUSTED.value,
                    f"gave up after {entry.attempts} attempt(s) "
                    "across previous service runs",
                )
                self._ledger_sync(job)
                continue
            job.status = "queued"
            self.ledger.set_status(
                entry.id, "queued", attempts=entry.attempts
            )
            self.recovered.append(job.id)
            self._backlog.append(job)

    # -- submission -----------------------------------------------------
    def submit(self, spec_data: dict, seeds, *, shards: "int | None" = None) -> Job:
        """Validate, persist (ledger), enqueue and return a new job.

        The ledger row is written *before* the job is acknowledged or
        enqueued — a crash in the enqueue window leaves a ``queued``
        row that the next ``--recover`` run picks up.  A queue-full
        rejection rolls the row back.

        ``shards`` (fabric mode only) splits the seed list into that
        many contiguous leasable ranges, so several workers execute
        one job concurrently; the in-process dispatcher runs whole
        jobs and rejects ``shards > 1``.

        Raises:
            QueueFull: the admission bound is reached.
            ValueError: the spec, seed list or shard count is malformed.
            RuntimeError: the service is shutting down.
        """
        if self._stopping.is_set():
            raise RuntimeError("service is shutting down")
        spec = ScenarioSpec.from_dict(dict(spec_data))
        seed_list = [int(s) for s in seeds]
        if not seed_list:
            raise ValueError("a job needs at least one seed")
        if len(set(seed_list)) != len(seed_list):
            raise ValueError("duplicate seeds in job")
        n_shards = 1 if shards is None else int(shards)
        if self.dispatch and n_shards != 1:
            raise ValueError(
                "sharded jobs need the worker fabric "
                "(serve --no-dispatch + repro worker)"
            )
        if not self.dispatch:
            return self._submit_fabric(spec, seed_list, n_shards)
        job = Job(
            id=f"j{next(self._ids)}", spec=spec.to_dict(), seeds=seed_list
        )
        if self.ledger is not None:
            self.ledger.append(job.id, spec, seed_list)
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                self._order.remove(job.id)
            if self.ledger is not None:
                self.ledger.remove(job.id)
            raise QueueFull(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        return job

    def _submit_fabric(self, spec, seed_list: list[int], shards: int) -> Job:
        """Fabric-mode submission: ledger row + shards, no in-memory job.

        The returned :class:`Job` is only the 202 acknowledgment body;
        it is *not* registered in ``_jobs``, so every subsequent read
        resolves through :meth:`lookup`'s ledger + store path — the
        single source of truth the workers write to.
        """
        assert self.ledger is not None
        backlog = self.ledger.backlog()
        if backlog["queued"] >= self._queue.maxsize:
            raise QueueFull(
                f"job queue is full ({self._queue.maxsize} waiting)"
            )
        job = Job(
            id=f"j{next(self._ids)}", spec=spec.to_dict(), seeds=seed_list
        )
        self.ledger.append(job.id, spec, seed_list, shards=shards)
        return job

    # -- inspection -----------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    def snapshots(self) -> list[dict]:
        """Submission-ordered snapshots of every known job.

        Dispatch mode serves the in-memory jobs; fabric mode derives
        everything from the ledger (+ store), because the front-end
        keeps no execution state of its own.
        """
        if self.dispatch or self.ledger is None:
            return [job.snapshot() for job in self.jobs()]
        snapshots = []
        for entry in self.ledger.jobs():
            snapshot = self.lookup(entry.id)
            if snapshot is not None:
                snapshots.append(snapshot)
        return snapshots

    def lookup(self, job_id: str) -> dict | None:
        """A snapshot for any known job, live or ledger-only.

        Jobs that finished before a restart are gone from memory but
        still in the ledger; this synthesises a snapshot for them
        (done-count and aggregate re-derived from the store) so
        ``GET /jobs/<id>`` stays answerable across restarts.
        """
        job = self.get(job_id)
        if job is not None:
            return job.snapshot()
        if self.ledger is None:
            return None
        entry = self.ledger.get(job_id)
        if entry is None:
            return None
        from ..store import ExperimentStore

        stored = ExperimentStore(self.store).query(
            entry.fingerprint, entry.seeds
        )
        batch = BatchResult(entry.name)
        batch.runs = [stored[s] for s in sorted(stored)]
        snapshot = {
            "id": entry.id,
            "status": entry.status,
            "done": len(stored),
            "total": len(entry.seeds),
            "attempts": entry.attempts,
            "hits": None,
            "misses": None,
            "error": entry.error_message,
            "error_code": entry.error_code,
            "aggregate": batch.row() if batch.runs else None,
        }
        progress = self.ledger.shard_progress(entry.id)
        if progress["total"]:
            # Per-shard detail next to the counts: which worker holds
            # which seed range, in what state, after how many attempts
            # (documented in DESIGN.md "Wire API v1").
            progress = dict(progress)
            progress["states"] = [
                {
                    "shard": s.shard,
                    "status": s.status,
                    "seeds": len(s.seeds),
                    "attempts": s.attempts,
                    "worker": s.claimed_by,
                    "error_code": s.error_code,
                }
                for s in self.ledger.shards(entry.id)
            ]
            snapshot["shards"] = progress
        return snapshot

    def job_workload(self, job_id: str) -> "tuple[dict, list[int]] | None":
        """The ``(spec, seeds)`` a job was submitted with, or ``None``.

        Resolves live jobs from memory and everything else from the
        ledger — the SSE spool-replay path needs both to locate a
        job's frames in the store.
        """
        job = self.get(job_id)
        if job is not None:
            return dict(job.spec), list(job.seeds)
        if self.ledger is None:
            return None
        entry = self.ledger.get(job_id)
        if entry is None:
            return None
        return dict(entry.spec), list(entry.seeds)

    def workload_fingerprint(self, spec_data: dict) -> str:
        """The store fingerprint a job's records and frames live under.

        Matches the facade's namespacing: the canonical spec digest
        plus an ``-array`` suffix when the environment's engine is the
        array engine (``REPRO_ENGINE``), so telemetry reads hit the
        same rows the executing batch wrote.
        """
        from ..accel import resolved_engine

        spec = ScenarioSpec.from_dict(dict(spec_data))
        suffix = "-array" if resolved_engine(None) == "array" else ""
        return spec.fingerprint() + suffix

    def health(self) -> dict:
        """The readiness view: drain state, queue depth, ledger backlog."""
        if self.dispatch:
            with self._lock:
                queued = sum(
                    1
                    for jid in self._order
                    if self._jobs[jid].status == "queued"
                )
                running = (
                    self._current.id if self._current is not None else None
                )
        else:
            backlog = self.ledger.backlog()  # type: ignore[union-attr]
            queued, running = backlog["queued"], None
        info: dict = {
            "ready": not self._stopping.is_set(),
            "draining": self._stopping.is_set(),
            "mode": "dispatch" if self.dispatch else "fabric",
            "queued": queued,
            "running": running,
        }
        if self.ledger is not None:
            info["ledger"] = {
                "path": str(self.ledger.path),
                "backlog": self.ledger.backlog(),
            }
            if not self.dispatch:
                info["workers"] = self.ledger.active_workers()
        bus = self.bus.stats()
        info["telemetry"] = {
            "enabled": self.telemetry,
            "subscribers": bus["subscribers"],
            "published": bus["published"],
            "dropped": bus["dropped"],
            "spool": spool_stats(),
        }
        return info

    # -- execution ------------------------------------------------------
    def _dispatch(self) -> None:
        while True:
            if self._stopping.is_set():
                break
            if self._backlog:
                self._run_job(self._backlog.popleft())
                continue
            try:
                item = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if item is _SENTINEL:
                break
            if self._stopping.is_set():
                # Drain: leave the job queued — it is durable in the
                # ledger and the next --recover run picks it up.
                break
            self._run_job(item)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            # Under the same lock health() reads it with, so /readyz
            # can never report a stale running-job id.
            self._current = job
        try:
            while True:
                token = job.begin_attempt()
                if token is None:
                    # A previous attempt went terminal in the window
                    # between the watchdog timeout and this re-dispatch
                    # — the job is finished, not hung.
                    self._ledger_sync(job)
                    return
                self._ledger_sync(job)
                done = threading.Event()
                runner = threading.Thread(
                    target=self._execute,
                    args=(job, token, done),
                    name=f"repro-job-{job.id}-a{token}",
                    daemon=True,
                )
                runner.start()
                if self.job_budget is None:
                    done.wait()
                elif not done.wait(self.job_budget):
                    # The runner may have finished in the instant the
                    # wait timed out; completion always wins over the
                    # watchdog — never re-run or fail a finished job.
                    if not done.is_set():
                        if job.attempts < self.max_attempts:
                            continue
                        # fail() is token/status-aware: if the runner
                        # completed the attempt after the is_set()
                        # check above, this is a no-op.
                        job.fail(
                            ErrorCode.ATTEMPTS_EXHAUSTED.value,
                            f"hung: {job.attempts} attempt(s) exceeded the "
                            f"{self.job_budget:g}s job budget",
                            token=token,
                        )
                self._ledger_sync(job)
                return
        finally:
            with self._lock:
                self._current = None

    def _execute(self, job: Job, token: int, done: threading.Event) -> None:
        try:
            batch = run(
                ScenarioSpec.from_dict(job.spec),
                job.seeds,
                BatchConfig(
                    workers=self.workers,
                    timeout=self.timeout,
                    store=self.store,
                    telemetry=self._job_sink(job, token),
                ),
            )
        except Exception as exc:  # noqa: BLE001 — a bad job must not kill the loop
            job.complete_failure(
                token, ErrorCode.EXEC_ERROR.value, f"{type(exc).__name__}: {exc}"
            )
        else:
            job.complete_success(token, batch)
        finally:
            self._publish(job, "status", job.snapshot())
            done.set()

    # -- telemetry ------------------------------------------------------
    def _job_sink(self, job: Job, token: int) -> "_hooks.FunctionSink":
        """The :mod:`repro.hooks` sink one execution attempt runs under.

        ``on_record`` keeps the pre-telemetry behaviour (progress under
        the job lock, token-fenced) and additionally publishes a
        ``record`` plus a rolling ``aggregate`` event.  ``on_frame`` is
        only attached when telemetry is enabled — its mere presence is
        what switches the engine's per-step frame emission (and the
        facade's store spooling) on.
        """

        def on_record(record: RunRecord) -> None:
            job.add_record(record, token)
            self._publish(
                job, "record", json.loads(encode_record(record))
            )
            self._publish(job, "aggregate", job.snapshot())

        hooks = {"on_record": on_record}
        if self.telemetry:
            hooks["on_frame"] = lambda frame: self._publish(
                job, "frame", encode_frame(frame)
            )
        return _hooks.FunctionSink(**hooks)

    def _publish(self, job: Job, event: str, data) -> None:
        """Fan one telemetry event out to the bus (never blocks).

        ``data`` is either an already-encoded JSON string (frames — the
        byte-exact payload the spool stores and replay re-serves) or a
        JSON-ready dict the HTTP layer serializes.
        """
        self.bus.publish({"event": event, "job": job.id, "data": data})

    def _ledger_sync(self, job: Job) -> None:
        """Write the job's current status through to the ledger."""
        if self.ledger is None:
            return
        with job._lock:
            status = job.status
            attempts = job.attempts
            code = job.error_code
            message = job.error
        try:
            self.ledger.set_status(
                job.id,
                status,
                attempts=attempts,
                error_code=code,
                error_message=message,
            )
        except KeyError:
            pass  # ledger row vanished (manual surgery); job still runs
