"""Job management behind the simulation service.

A :class:`JobService` owns a bounded submission queue and a single
dispatcher thread.  Submitting a job validates its spec, assigns an id
and enqueues it; the dispatcher pulls jobs in order and executes each
through the unified batch facade (:func:`repro.analysis.run`) with the
experiment store attached, so

* seeds the store already holds complete instantly as cache hits,
* every newly simulated seed is written through to the store the
  moment it commits — a killed service (even SIGKILL) loses at most
  the seeds that were in flight, and a restart + resubmit finishes the
  remainder without re-running anything committed.

Admission control is the queue bound: :meth:`JobService.submit` raises
:class:`QueueFull` once ``max_queue`` jobs are waiting (the HTTP layer
maps that to 429), so a flood of submissions degrades into fast
rejections instead of unbounded memory growth.

Progress is observable while a job runs: the facade's ``on_record``
hook appends each committed record to the job under its lock, and
:meth:`Job.snapshot` serves done/total counts plus a partial aggregate
over the records committed so far.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field

from ..analysis import BatchConfig, BatchResult, ScenarioSpec, run
from ..analysis.batch import RunRecord

__all__ = ["Job", "JobService", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised when the submission queue is at its admission bound."""


_SENTINEL = object()


@dataclass
class Job:
    """One submitted ``(spec, seeds)`` workload and its live progress."""

    id: str
    spec: dict
    seeds: list[int]
    status: str = "queued"  # queued | running | done | failed
    hits: int = 0
    misses: int = 0
    error: str | None = None
    records: list[RunRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def total(self) -> int:
        return len(self.seeds)

    def add_record(self, record: RunRecord) -> None:
        with self._lock:
            self.records.append(record)

    def partial_result(self) -> BatchResult:
        """Aggregate over the records committed so far (seed-ordered)."""
        with self._lock:
            committed = list(self.records)
        batch = BatchResult(self.spec.get("name", self.id))
        batch.runs = sorted(committed, key=lambda r: r.seed)
        batch.store_hits = self.hits
        batch.store_misses = self.misses
        return batch

    def snapshot(self) -> dict:
        """A JSON-ready progress view (what ``GET /jobs/<id>`` serves)."""
        partial = self.partial_result()
        return {
            "id": self.id,
            "status": self.status,
            "done": partial.n_runs(),
            "total": self.total,
            "hits": self.hits,
            "misses": self.misses,
            "error": self.error,
            "aggregate": partial.row() if partial.runs else None,
        }


class JobService:
    """Bounded job queue + dispatcher over the batch facade and store.

    Args:
        store: path of the experiment store every job reads and writes
            through (required — the store is what makes the service
            kill-tolerant and deduplicating).
        workers: worker processes per batch (``BatchConfig.workers``).
        timeout: per-seed wall-clock budget forwarded to the batch.
        max_queue: admission bound on *waiting* jobs.
        auto_start: start the dispatcher thread immediately (tests pass
            ``False`` to inspect queue behaviour deterministically).
    """

    def __init__(
        self,
        store: str,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        max_queue: int = 8,
        auto_start: bool = True,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.store = str(store)
        self.workers = workers
        self.timeout = timeout
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        if auto_start:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self, wait: bool = True, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new jobs, drain the running one.

        The currently executing job runs to completion (its records
        were being written through to the store per seed anyway, so
        nothing committed is ever at risk); jobs still queued stay
        ``queued`` and can simply be resubmitted after a restart — the
        store turns their finished portion into instant hits.
        """
        self._stopping.set()
        try:
            self._queue.put_nowait(_SENTINEL)  # fast wake-up, best-effort
        except queue.Full:
            pass  # the dispatcher polls _stopping between jobs anyway
        if wait and self._thread is not None:
            self._thread.join(timeout)

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    # -- submission -----------------------------------------------------
    def submit(self, spec_data: dict, seeds) -> Job:
        """Validate, enqueue and return a new job.

        Raises:
            QueueFull: the admission bound is reached.
            ValueError: the spec or seed list is malformed.
            RuntimeError: the service is shutting down.
        """
        if self._stopping.is_set():
            raise RuntimeError("service is shutting down")
        spec = ScenarioSpec.from_dict(dict(spec_data))
        seed_list = [int(s) for s in seeds]
        if not seed_list:
            raise ValueError("a job needs at least one seed")
        if len(set(seed_list)) != len(seed_list):
            raise ValueError("duplicate seeds in job")
        job = Job(
            id=f"j{next(self._ids)}", spec=spec.to_dict(), seeds=seed_list
        )
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                self._order.remove(job.id)
            raise QueueFull(
                f"job queue is full ({self._queue.maxsize} waiting)"
            ) from None
        return job

    # -- inspection -----------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    # -- execution ------------------------------------------------------
    def _dispatch(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopping.is_set():
                    break
                continue
            if item is _SENTINEL:
                break
            self._run_job(item)

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        try:
            batch = run(
                ScenarioSpec.from_dict(job.spec),
                job.seeds,
                BatchConfig(
                    workers=self.workers,
                    timeout=self.timeout,
                    store=self.store,
                    on_record=job.add_record,
                ),
            )
        except Exception as exc:  # noqa: BLE001 — a bad job must not kill the loop
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
            return
        job.hits = batch.store_hits
        job.misses = batch.store_misses
        job.status = "done"
