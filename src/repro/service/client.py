"""Resilient stdlib HTTP client for the job service.

``http.client`` only — the same no-new-dependencies constraint the
server obeys.  Three layers:

* :class:`RetryPolicy` — split connect/read timeouts plus retries with
  capped exponential backoff and *deterministic seeded jitter*: two
  clients built with the same ``seed`` sleep the same schedule, so
  resilience behaviour is reproducible in tests the same way the
  simulations themselves are.
* :class:`CircuitBreaker` — a consecutive-failure counter; after
  ``failure_threshold`` transport failures in a row the breaker opens
  and calls fail fast with :class:`CircuitOpen` (no network touched)
  until ``reset_after`` elapses, when one half-open trial is let
  through.
* :class:`ServiceClient` — ties both together and offers ``get`` /
  ``post`` / ``submit`` / ``wait``.

Retry semantics are verb-aware: a GET is idempotent and retries on
connect failures, read timeouts and retryable HTTP statuses (429/5xx);
a POST retries **only** when the connection itself could not be
established (nothing was sent, so a retry cannot double-submit).

The module-level helpers (:func:`get_json`, :func:`post_json`,
:func:`submit_job`, :func:`wait_for_job`) keep their historical
signatures and now route through the same machinery.
:func:`wait_for_job` polls with jittered exponential backoff under an
overall deadline and raises the typed
:class:`~repro.service.errors.JobTimeout` (a ``TimeoutError``
subclass) instead of spinning at a fixed interval forever.

Error replies surface as :class:`ServiceError` carrying the HTTP
status *and* the structured ``code`` from the shared taxonomy, so
callers can branch on admission rejection (``queue-full``) versus a
malformed spec (``spec-invalid``) without string matching.
"""

from __future__ import annotations

import json
import random
import socket
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from urllib.parse import urlsplit

from ..chaos.clock import Clock, resolve_clock
from .errors import CircuitOpen, ErrorCode, JobTimeout, ServiceError

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "JobTimeout",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "get_json",
    "post_json",
    "submit_job",
    "wait_for_job",
]

#: HTTP statuses worth retrying for idempotent requests: admission
#: pressure and transient server-side failures.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """Timeouts, retry count and backoff schedule for one client.

    ``seed`` makes the jitter deterministic; ``None`` seeds from the
    system RNG (still bounded, just not reproducible).
    """

    connect_timeout: float = 5.0
    read_timeout: float = 30.0
    retries: int = 3
    backoff: float = 0.2
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: "int | None" = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered.

        Exponential (``backoff * 2**(attempt-1)``), capped at
        ``backoff_cap``, then scaled by a jitter factor drawn from
        ``[1 - jitter, 1 + jitter]``.
        """
        base = min(self.backoff * (2.0 ** (attempt - 1)), self.backoff_cap)
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))


class _ConnectFailed(ConnectionError):
    """The TCP connection could not be established (nothing was sent)."""


def _raw_request(
    url: str, method: str, data: "bytes | None", policy: RetryPolicy
) -> tuple[int, bytes]:
    """One HTTP exchange with split connect/read timeouts.

    The connection is opened under ``connect_timeout``; once the socket
    exists, the deadline is widened to ``read_timeout`` for the
    request/response exchange.  A fresh connection per call keeps the
    client fork- and thread-safe, matching the store's discipline.
    """
    parts = urlsplit(url)
    conn_cls = HTTPSConnection if parts.scheme == "https" else HTTPConnection
    conn = conn_cls(
        parts.hostname or "127.0.0.1",
        parts.port,
        timeout=policy.connect_timeout,
    )
    try:
        try:
            conn.connect()
        except OSError as exc:
            raise _ConnectFailed(str(exc) or type(exc).__name__) from exc
        if conn.sock is not None:
            conn.sock.settimeout(policy.read_timeout)
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _parse_reply(status: int, body: bytes) -> dict:
    if status >= 400:
        message, code = "", None
        try:
            payload = json.loads(body.decode("utf-8"))
            message = payload.get("error", "")
            code = payload.get("code")
        except Exception:  # noqa: BLE001 — error body is best-effort
            message = body.decode("utf-8", "replace").strip()
        raise ServiceError(status, message, code)
    return json.loads(body.decode("utf-8"))


def _request_json(
    url: str,
    method: str,
    payload: "dict | None",
    policy: RetryPolicy,
    rng: random.Random,
    clock: "Clock | None" = None,
) -> dict:
    """The retry loop: verb-aware, capped-backoff, seeded jitter.

    Backoff sleeps go through the clock seam, so virtual-time tests
    assert the whole schedule without real waiting.
    """
    clock = resolve_clock(clock)
    data = None
    if payload is not None:
        data = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    idempotent = method == "GET"
    attempt = 0
    while True:
        attempt += 1
        try:
            status, body = _raw_request(url, method, data, policy)
            return _parse_reply(status, body)
        except ServiceError as exc:
            retryable = idempotent and exc.status in RETRYABLE_STATUSES
            if not retryable or attempt > policy.retries:
                raise
        except _ConnectFailed as exc:
            # Nothing reached the server — safe to retry any verb.
            if attempt > policy.retries:
                raise ConnectionError(
                    f"[{ErrorCode.UNREACHABLE}] {url}: {exc}"
                ) from exc
        except (socket.timeout, HTTPException, OSError) as exc:
            # The request may have been received; only idempotent
            # calls are safe to re-send.
            if not idempotent or attempt > policy.retries:
                raise
        clock.sleep(policy.delay(attempt, rng))


class CircuitBreaker:
    """Consecutive-failure circuit breaker (thread-safe).

    Closed: calls pass through.  After ``failure_threshold``
    consecutive transport failures the breaker opens: calls raise
    :class:`CircuitOpen` without touching the network until
    ``reset_after`` seconds pass, when a single half-open trial is
    allowed — success closes the breaker, failure re-opens it for
    another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        *,
        clock: "Clock | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        import threading

        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = resolve_clock(clock)
        self._failures = 0
        self._opened_at: "float | None" = None
        self._lock = threading.Lock()

    @property
    def failures(self) -> int:
        return self._failures

    @property
    def open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    def before_call(self) -> None:
        """Gate a call: raise :class:`CircuitOpen` or admit a trial."""
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock.monotonic() - self._opened_at
            if elapsed >= self.reset_after:
                # Half-open: let this one call probe the server.  The
                # window slides forward so concurrent callers don't
                # stampede.
                self._opened_at = self._clock.monotonic()
                return
            raise CircuitOpen(self._failures, self.reset_after - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock.monotonic()


class ServiceClient:
    """A job-service client with retries, backoff and a circuit breaker.

    Args:
        base_url: e.g. ``http://127.0.0.1:8765``.
        policy: timeouts/retry schedule (default :class:`RetryPolicy`).
        breaker: circuit breaker; pass ``None`` for a fresh default one.
        clock: time source for backoff sleeps, the breaker cooldown
            and the ``wait`` deadline (``None`` = the real clock).
    """

    def __init__(
        self,
        base_url: str,
        *,
        policy: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.policy = policy or RetryPolicy()
        self._clock = resolve_clock(clock)
        self.breaker = breaker or CircuitBreaker(clock=self._clock)
        self._rng = random.Random(self.policy.seed)

    # -- transport ------------------------------------------------------
    def _call(self, method: str, path: str, payload: "dict | None") -> dict:
        self.breaker.before_call()
        url = f"{self.base_url}{path}"
        try:
            result = _request_json(
                url, method, payload, self.policy, self._rng, self._clock
            )
        except ServiceError as exc:
            # The server answered: transport is healthy.  Only
            # retryable (server-side/overload) statuses count against
            # the breaker; a 404 or 400 is the caller's problem.
            if exc.status in RETRYABLE_STATUSES:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            raise
        except (ConnectionError, OSError):
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def get(self, path: str) -> dict:
        """GET a service path (idempotent: full retry schedule)."""
        return self._call("GET", path, None)

    def post(self, path: str, payload: dict) -> dict:
        """POST a JSON document (retried only on connect failures)."""
        return self._call("POST", path, payload)

    # -- job workflow ---------------------------------------------------
    def submit(self, spec: dict, seeds, *, shards: "int | None" = None) -> dict:
        """``POST /v1/jobs`` and return the accepted job snapshot.

        ``shards`` asks a fabric front-end to split the seed list into
        that many leasable ranges for the worker pool; leave it ``None``
        against a classic dispatcher.
        """
        payload: dict = {"spec": spec, "seeds": [int(s) for s in seeds]}
        if shards is not None:
            payload["shards"] = int(shards)
        return self.post("/v1/jobs", payload)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 0.2,
        poll_cap: float = 2.0,
    ) -> dict:
        """Poll ``GET /v1/jobs/<id>`` until the job goes terminal.

        The poll interval starts at ``poll`` and doubles (jittered by
        the policy, capped at ``poll_cap``) so a long-running job is
        not hammered; raises :class:`JobTimeout` when the overall
        deadline passes with the job still pending.
        """
        deadline = self._clock.monotonic() + timeout
        interval = poll
        last_status: "str | None" = None
        while True:
            snapshot = self.get(f"/v1/jobs/{job_id}")
            last_status = snapshot.get("status")
            if last_status in ("done", "failed"):
                return snapshot
            now = self._clock.monotonic()
            if now >= deadline:
                raise JobTimeout(job_id, timeout, last_status)
            jittered = interval
            if self.policy.jitter > 0:
                jittered *= 1.0 + self.policy.jitter * self._rng.uniform(
                    -1.0, 1.0
                )
            self._clock.sleep(max(0.0, min(jittered, deadline - now)))
            interval = min(interval * 2.0, poll_cap)


# -- module-level helpers (historical surface) --------------------------
def get_json(
    url: str, timeout: float = 30.0, *, policy: "RetryPolicy | None" = None
) -> dict:
    """GET a JSON document (retries per ``policy``)."""
    policy = policy or RetryPolicy(read_timeout=timeout)
    return _request_json(url, "GET", None, policy, random.Random(policy.seed))


def post_json(
    url: str,
    payload: dict,
    timeout: float = 30.0,
    *,
    policy: "RetryPolicy | None" = None,
) -> dict:
    """POST a JSON document, return the parsed JSON reply."""
    policy = policy or RetryPolicy(read_timeout=timeout)
    return _request_json(
        url, "POST", payload, policy, random.Random(policy.seed)
    )


def submit_job(
    base_url: str,
    spec: dict,
    seeds,
    *,
    shards: "int | None" = None,
    policy: "RetryPolicy | None" = None,
) -> dict:
    """``POST /v1/jobs`` and return the accepted job snapshot."""
    payload: dict = {"spec": spec, "seeds": [int(s) for s in seeds]}
    if shards is not None:
        payload["shards"] = int(shards)
    return post_json(f"{base_url.rstrip('/')}/v1/jobs", payload, policy=policy)


def wait_for_job(
    base_url: str,
    job_id: str,
    *,
    poll: float = 0.2,
    timeout: float = 600.0,
    poll_cap: float = 2.0,
    policy: "RetryPolicy | None" = None,
) -> dict:
    """Poll a job to completion with backoff; raises :class:`JobTimeout`.

    Kept as a convenience wrapper over :meth:`ServiceClient.wait` for
    callers that don't hold a client.
    """
    client = ServiceClient(base_url, policy=policy)
    return client.wait(job_id, timeout=timeout, poll=poll, poll_cap=poll_cap)
