"""Tiny stdlib HTTP client for the job service.

``urllib.request`` only — the same no-new-dependencies constraint the
server obeys.  Used by ``python -m repro submit`` and the service test
suite; error responses surface as :class:`ServiceError` carrying the
HTTP status so callers can distinguish admission rejection (429) from
a malformed spec (400).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceError", "get_json", "post_json", "submit_job", "wait_for_job"]


class ServiceError(RuntimeError):
    """An HTTP error reply from the service, with its status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _request(url: str, data: bytes | None, timeout: float) -> dict:
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 — error body is best-effort
            detail = exc.reason
        raise ServiceError(exc.code, detail) from None


def get_json(url: str, timeout: float = 30.0) -> dict:
    """GET a JSON document."""
    return _request(url, None, timeout)


def post_json(url: str, payload: dict, timeout: float = 30.0) -> dict:
    """POST a JSON document, return the parsed JSON reply."""
    data = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    return _request(url, data, timeout)


def submit_job(base_url: str, spec: dict, seeds) -> dict:
    """``POST /jobs`` and return the accepted job snapshot."""
    return post_json(
        f"{base_url.rstrip('/')}/jobs",
        {"spec": spec, "seeds": [int(s) for s in seeds]},
    )


def wait_for_job(
    base_url: str,
    job_id: str,
    *,
    poll: float = 0.2,
    timeout: float = 600.0,
) -> dict:
    """Poll ``GET /jobs/<id>`` until the job leaves the queue/run states.

    Returns the final snapshot; raises :class:`TimeoutError` if the job
    is still pending when the budget runs out.
    """
    deadline = time.monotonic() + timeout
    url = f"{base_url.rstrip('/')}/jobs/{job_id}"
    while True:
        snapshot = get_json(url)
        if snapshot["status"] in ("done", "failed"):
            return snapshot
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"job {job_id} still {snapshot['status']} after {timeout}s"
            )
        time.sleep(poll)
