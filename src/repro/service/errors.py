"""Structured error taxonomy shared by the ledger, HTTP layer, and client.

Every failure that crosses a process boundary — a row in the job
ledger, an HTTP error payload, an exception raised by the client —
carries one of the :class:`ErrorCode` values below, so callers can
branch on a stable machine-readable code instead of parsing prose.

This module is deliberately dependency-free (pure stdlib, no imports
from the rest of ``repro``) so that both ``repro.store.ledger`` and
``repro.service.client`` can share it without layering cycles.
"""

from __future__ import annotations

import enum

__all__ = [
    "CircuitOpen",
    "ErrorCode",
    "JobTimeout",
    "ServiceError",
]


class ErrorCode(str, enum.Enum):
    """Machine-readable failure codes.

    The string values are the wire format: they appear verbatim in the
    ledger's ``error_code`` column, in HTTP error payloads under
    ``"code"``, and on client exceptions as ``.code``.
    """

    # Admission / validation (maps to HTTP 4xx).
    SPEC_INVALID = "spec-invalid"
    QUEUE_FULL = "queue-full"
    NOT_FOUND = "not-found"

    # Service lifecycle (maps to HTTP 503).
    SHUTTING_DOWN = "shutting-down"

    # Execution failures recorded in the ledger.
    EXEC_ERROR = "exec-error"
    ATTEMPTS_EXHAUSTED = "attempts-exhausted"

    # Worker-fabric outcomes (logged, never terminal on their own: a
    # lost lease means another worker owns the shard now).
    LEASE_LOST = "lease-lost"

    # Client-side failures (never stored in the ledger).
    UNREACHABLE = "unreachable"
    CIRCUIT_OPEN = "circuit-open"
    JOB_TIMEOUT = "job-timeout"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ServiceError(Exception):
    """An HTTP error response from the job service.

    ``code`` is the structured :class:`ErrorCode` value from the
    response payload when the server provided one (older servers or
    non-JSON error bodies yield ``None``).
    """

    def __init__(self, status: int, message: str, code: str | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.code = code


class JobTimeout(TimeoutError):
    """Raised when :func:`wait_for_job` exhausts its overall deadline.

    Subclasses :class:`TimeoutError` so existing ``except TimeoutError``
    call sites (e.g. the ``submit`` CLI) keep working.
    """

    code = ErrorCode.JOB_TIMEOUT.value

    def __init__(self, job_id: str, timeout: float, last_status: str | None = None):
        detail = f" (last status: {last_status})" if last_status else ""
        super().__init__(
            f"job {job_id} did not finish within {timeout:g}s{detail}"
        )
        self.job_id = job_id
        self.timeout = timeout
        self.last_status = last_status


class CircuitOpen(ConnectionError):
    """Raised when the client's circuit breaker is open.

    The breaker trips after a run of consecutive transport failures;
    while open, calls fail fast without touching the network until the
    cooldown elapses.
    """

    code = ErrorCode.CIRCUIT_OPEN.value

    def __init__(self, failures: int, retry_in: float):
        super().__init__(
            f"circuit breaker open after {failures} consecutive failures; "
            f"next attempt allowed in {retry_in:.1f}s"
        )
        self.failures = failures
        self.retry_in = retry_in
