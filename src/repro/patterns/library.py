"""Pattern and configuration generators.

Workload generators for examples, tests and benchmarks: classic target
patterns (polygons, grids, lines, stars, nested rings), patterns with
multiplicity points, and random general-position initial configurations.
All patterns are returned in canonical normal form (unit smallest
enclosing circle centered at the origin) where possible.
"""

from __future__ import annotations

import math
import random

from ..geometry import Vec2, smallest_enclosing_circle
from ..model import Configuration, Pattern


def regular_polygon(n: int, radius: float = 1.0, phase: float = 0.0) -> Pattern:
    """A regular n-gon (n >= 3)."""
    if n < 3:
        raise ValueError("a polygon needs at least 3 vertices")
    return Pattern.from_points(
        Vec2.polar(radius, phase + 2.0 * math.pi * i / n) for i in range(n)
    )


def line_pattern(n: int, jitter: float = 0.0, seed: int = 0) -> Pattern:
    """``n`` collinear points (optionally jittered off the line)."""
    if n < 2:
        raise ValueError("a line needs at least 2 points")
    rng = random.Random(seed)
    pts = [
        Vec2(-1.0 + 2.0 * i / (n - 1), jitter * rng.uniform(-1.0, 1.0))
        for i in range(n)
    ]
    return Pattern.from_points(pts)


def grid_pattern(rows: int, cols: int, spacing: float = 1.0) -> Pattern:
    """A rows x cols rectangular grid."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    pts = [
        Vec2(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]
    return Pattern.from_points(pts)


def star_pattern(spikes: int, inner: float = 0.4, outer: float = 1.0) -> Pattern:
    """A star with alternating inner/outer vertices (2*spikes points)."""
    if spikes < 2:
        raise ValueError("a star needs at least 2 spikes")
    pts = []
    for i in range(2 * spikes):
        radius = outer if i % 2 == 0 else inner
        pts.append(Vec2.polar(radius, math.pi * i / spikes))
    return Pattern.from_points(pts)


def nested_rings(counts: list[int], radii: list[float] | None = None) -> Pattern:
    """Concentric rings with ``counts[i]`` points on ring ``i``."""
    if not counts:
        raise ValueError("need at least one ring")
    if radii is None:
        radii = [1.0 - 0.6 * i / max(len(counts) - 1, 1) for i in range(len(counts))]
    pts = []
    for ring, (count, radius) in enumerate(zip(counts, radii)):
        offset = 0.37 * ring  # avoid accidental global symmetry
        for i in range(count):
            pts.append(Vec2.polar(radius, offset + 2.0 * math.pi * i / count))
    return Pattern.from_points(pts)


def random_pattern(
    n: int, seed: int = 0, min_separation: float = 0.1
) -> Pattern:
    """A random general-position pattern of ``n`` points."""
    return Pattern.from_points(
        _random_points(n, seed, 1.0, min_separation)
    )


def multiplicity_pattern(
    base: Pattern, doubled_indices: list[int]
) -> Pattern:
    """``base`` with the given points' multiplicity increased by one."""
    pts = list(base.points)
    for i in doubled_indices:
        pts.append(base.points[i])
    return Pattern.from_points(pts)


def center_multiplicity_pattern(n_outer: int, center_count: int) -> Pattern:
    """``n_outer`` ring points plus a multiplicity point at the center."""
    if n_outer < 3:
        raise ValueError("need at least 3 outer points")
    pts = [
        Vec2.polar(1.0, 0.31 + 2.0 * math.pi * i / n_outer) for i in range(n_outer)
    ]
    center = smallest_enclosing_circle(pts).center
    pts.extend([center] * center_count)
    return Pattern.from_points(pts)


def gathering_pattern(n: int) -> Pattern:
    """All ``n`` robots at a single point (total multiplicity)."""
    return Pattern.from_points([Vec2.zero()] * n)


def random_configuration(
    n: int,
    seed: int = 0,
    spread: float = 1.0,
    min_separation: float = 0.05,
) -> Configuration:
    """A random general-position initial configuration (no multiplicity)."""
    return Configuration.from_points(
        _random_points(n, seed, spread, min_separation)
    )


# ----------------------------------------------------------------------
# large-swarm configurations
# ----------------------------------------------------------------------
# Generators for the E11 scaling study: all O(n), no rejection sampling
# (``_random_points`` is quadratic in n and stalls outright once a few
# hundred points compete for the same disc), with extents that grow like
# sqrt(n) so the local density — and with it the work per neighbour
# query — stays constant as the swarm scales.


def swarm_grid_configuration(
    n: int, spacing: float = 1.0, jitter: float = 0.0, seed: int = 0
) -> Configuration:
    """``n`` robots on a near-square grid, optionally jittered.

    ``jitter`` (a fraction of ``spacing``, < 0.5 to preserve general
    position) perturbs every site uniformly; with jitter 0 the grid is
    exact, which is the worst case for tie-heavy geometry code.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if not 0.0 <= jitter < 0.5:
        raise ValueError("jitter must be in [0, 0.5)")
    cols = math.ceil(math.sqrt(n))
    rng = random.Random(seed)
    pts = []
    for i in range(n):
        r, c = divmod(i, cols)
        dx = dy = 0.0
        if jitter:
            dx = jitter * spacing * rng.uniform(-1.0, 1.0)
            dy = jitter * spacing * rng.uniform(-1.0, 1.0)
        pts.append(Vec2(c * spacing + dx, r * spacing + dy))
    return Configuration.from_points(pts)


def swarm_ring_configuration(
    n: int, spacing: float = 1.0, phase: float = 0.1
) -> Configuration:
    """``n`` robots on concentric rings with ~``spacing`` arc gaps.

    Ring ``k`` sits at radius ``k * spacing`` and carries as many robots
    as keep neighbouring robots about one ``spacing`` apart, so density
    is uniform and the extent grows like ``sqrt(n)``.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    pts = [Vec2.zero()]
    ring = 1
    while len(pts) < n:
        radius = ring * spacing
        count = max(1, math.floor(2.0 * math.pi * radius / spacing))
        offset = phase * ring  # avoid accidental global symmetry
        for i in range(count):
            if len(pts) >= n:
                break
            pts.append(Vec2.polar(radius, offset + 2.0 * math.pi * i / count))
        ring += 1
    return Configuration.from_points(pts)


def swarm_cluster_configuration(
    n: int,
    clusters: int = 8,
    cluster_radius: float = 1.0,
    seed: int = 0,
) -> Configuration:
    """``n`` robots split over well-separated dense clusters.

    Cluster centres sit on a ring whose radius scales with
    ``sqrt(n / clusters)`` (each cluster's population), keeping clusters
    dense internally and sparse mutually — the adversarial case for a
    bucketed index, since occupancy is far from uniform.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if clusters < 1:
        raise ValueError("need at least one cluster")
    clusters = min(clusters, n)
    rng = random.Random(seed)
    per = n / clusters
    ring_radius = max(4.0 * cluster_radius, cluster_radius * math.sqrt(per)) * clusters / math.pi
    centers = [
        Vec2.polar(ring_radius, 0.05 + 2.0 * math.pi * k / clusters)
        for k in range(clusters)
    ]
    pts = []
    for i in range(n):
        center = centers[i % clusters]
        r = cluster_radius * math.sqrt(rng.random())
        theta = rng.uniform(0.0, 2.0 * math.pi)
        pts.append(center + Vec2.polar(r, theta))
    return Configuration.from_points(pts)


def stacked_configuration(
    n: int, stack_size: int = 4, spacing: float = 1.0
) -> Configuration:
    """``n`` robots piled into multiplicity stacks on a sparse grid.

    ``ceil(n / stack_size)`` grid sites with the robots dealt round-robin
    (every site hosts ``stack_size`` or ``stack_size - 1`` co-located
    robots) — the scattering workload: every Look must resolve
    multiplicities, and runs terminate once every stack has split.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if stack_size < 1:
        raise ValueError("stack_size must be positive")
    sites = math.ceil(n / stack_size)
    cols = math.ceil(math.sqrt(sites))
    pts = []
    for i in range(n):
        site = i % sites
        r, c = divmod(site, cols)
        pts.append(Vec2(c * spacing, r * spacing))
    return Configuration.from_points(pts)


def _random_points(
    n: int, seed: int, spread: float, min_separation: float
) -> list[Vec2]:
    """Rejection-sample ``n`` points pairwise at least ``min_separation``."""
    if n < 1:
        raise ValueError("need at least one point")
    rng = random.Random(seed)
    pts: list[Vec2] = []
    attempts = 0
    while len(pts) < n:
        attempts += 1
        if attempts > 100_000:
            raise RuntimeError(
                "could not place points; lower min_separation or raise spread"
            )
        candidate = Vec2(
            rng.uniform(-spread, spread), rng.uniform(-spread, spread)
        )
        if candidate.norm() > spread:
            continue
        if all(candidate.dist(p) >= min_separation for p in pts):
            pts.append(candidate)
    return pts
