"""Pattern and configuration generators.

Workload generators for examples, tests and benchmarks: classic target
patterns (polygons, grids, lines, stars, nested rings), patterns with
multiplicity points, and random general-position initial configurations.
All patterns are returned in canonical normal form (unit smallest
enclosing circle centered at the origin) where possible.
"""

from __future__ import annotations

import math
import random

from ..geometry import Vec2, smallest_enclosing_circle
from ..model import Configuration, Pattern


def regular_polygon(n: int, radius: float = 1.0, phase: float = 0.0) -> Pattern:
    """A regular n-gon (n >= 3)."""
    if n < 3:
        raise ValueError("a polygon needs at least 3 vertices")
    return Pattern.from_points(
        Vec2.polar(radius, phase + 2.0 * math.pi * i / n) for i in range(n)
    )


def line_pattern(n: int, jitter: float = 0.0, seed: int = 0) -> Pattern:
    """``n`` collinear points (optionally jittered off the line)."""
    if n < 2:
        raise ValueError("a line needs at least 2 points")
    rng = random.Random(seed)
    pts = [
        Vec2(-1.0 + 2.0 * i / (n - 1), jitter * rng.uniform(-1.0, 1.0))
        for i in range(n)
    ]
    return Pattern.from_points(pts)


def grid_pattern(rows: int, cols: int, spacing: float = 1.0) -> Pattern:
    """A rows x cols rectangular grid."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    pts = [
        Vec2(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]
    return Pattern.from_points(pts)


def star_pattern(spikes: int, inner: float = 0.4, outer: float = 1.0) -> Pattern:
    """A star with alternating inner/outer vertices (2*spikes points)."""
    if spikes < 2:
        raise ValueError("a star needs at least 2 spikes")
    pts = []
    for i in range(2 * spikes):
        radius = outer if i % 2 == 0 else inner
        pts.append(Vec2.polar(radius, math.pi * i / spikes))
    return Pattern.from_points(pts)


def nested_rings(counts: list[int], radii: list[float] | None = None) -> Pattern:
    """Concentric rings with ``counts[i]`` points on ring ``i``."""
    if not counts:
        raise ValueError("need at least one ring")
    if radii is None:
        radii = [1.0 - 0.6 * i / max(len(counts) - 1, 1) for i in range(len(counts))]
    pts = []
    for ring, (count, radius) in enumerate(zip(counts, radii)):
        offset = 0.37 * ring  # avoid accidental global symmetry
        for i in range(count):
            pts.append(Vec2.polar(radius, offset + 2.0 * math.pi * i / count))
    return Pattern.from_points(pts)


def random_pattern(
    n: int, seed: int = 0, min_separation: float = 0.1
) -> Pattern:
    """A random general-position pattern of ``n`` points."""
    return Pattern.from_points(
        _random_points(n, seed, 1.0, min_separation)
    )


def multiplicity_pattern(
    base: Pattern, doubled_indices: list[int]
) -> Pattern:
    """``base`` with the given points' multiplicity increased by one."""
    pts = list(base.points)
    for i in doubled_indices:
        pts.append(base.points[i])
    return Pattern.from_points(pts)


def center_multiplicity_pattern(n_outer: int, center_count: int) -> Pattern:
    """``n_outer`` ring points plus a multiplicity point at the center."""
    if n_outer < 3:
        raise ValueError("need at least 3 outer points")
    pts = [
        Vec2.polar(1.0, 0.31 + 2.0 * math.pi * i / n_outer) for i in range(n_outer)
    ]
    center = smallest_enclosing_circle(pts).center
    pts.extend([center] * center_count)
    return Pattern.from_points(pts)


def gathering_pattern(n: int) -> Pattern:
    """All ``n`` robots at a single point (total multiplicity)."""
    return Pattern.from_points([Vec2.zero()] * n)


def random_configuration(
    n: int,
    seed: int = 0,
    spread: float = 1.0,
    min_separation: float = 0.05,
) -> Configuration:
    """A random general-position initial configuration (no multiplicity)."""
    return Configuration.from_points(
        _random_points(n, seed, spread, min_separation)
    )


def _random_points(
    n: int, seed: int, spread: float, min_separation: float
) -> list[Vec2]:
    """Rejection-sample ``n`` points pairwise at least ``min_separation``."""
    if n < 1:
        raise ValueError("need at least one point")
    rng = random.Random(seed)
    pts: list[Vec2] = []
    attempts = 0
    while len(pts) < n:
        attempts += 1
        if attempts > 100_000:
            raise RuntimeError(
                "could not place points; lower min_separation or raise spread"
            )
        candidate = Vec2(
            rng.uniform(-spread, spread), rng.uniform(-spread, spread)
        )
        if candidate.norm() > spread:
            continue
        if all(candidate.dist(p) >= min_separation for p in pts):
            pts.append(candidate)
    return pts
