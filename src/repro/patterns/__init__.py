"""Pattern and workload generators."""

from .library import (
    center_multiplicity_pattern,
    gathering_pattern,
    grid_pattern,
    line_pattern,
    multiplicity_pattern,
    nested_rings,
    random_configuration,
    random_pattern,
    regular_polygon,
    star_pattern,
)

__all__ = [
    "center_multiplicity_pattern",
    "gathering_pattern",
    "grid_pattern",
    "line_pattern",
    "multiplicity_pattern",
    "nested_rings",
    "random_configuration",
    "random_pattern",
    "regular_polygon",
    "star_pattern",
]
