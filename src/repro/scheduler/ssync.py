"""SSYNC: the semi-synchronous scheduler.

At each round the adversary activates an arbitrary non-empty subset of the
robots; the activated robots perform one *atomic* Look-Compute-Move cycle
(they all look simultaneously and finish moving before anyone else looks).
Movement may still be cut short by the adversary after at least δ.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from ..sim.robot import Phase, RobotBody
from .base import Action, ActionKind, Scheduler


class SsyncScheduler(Scheduler):
    """Random-subset atomic rounds.

    Args:
        seed: adversary randomness seed.
        activation_prob: probability each robot joins a round (at least one
            robot is always activated).
        truncate_prob: probability a robot's movement is stopped early
            (the engine still guarantees δ progress).
        fairness_bound: a robot idle for this many engine steps is forced
            into the next round.
    """

    name = "SSYNC"

    def __init__(
        self,
        seed: int | None = None,
        activation_prob: float = 0.5,
        truncate_prob: float = 0.0,
        fairness_bound: int = 2000,
    ) -> None:
        if not 0.0 < activation_prob <= 1.0:
            raise ValueError("activation_prob must be in (0, 1]")
        self._rng = random.Random(seed)
        self._activation_prob = activation_prob
        self._truncate_prob = truncate_prob
        self._fairness_bound = fairness_bound
        self._queue: deque[Action] = deque()

    def reset(self, n: int) -> None:
        self._queue.clear()

    def next_action(self, robots: Sequence[RobotBody], step: int) -> Action:
        while True:
            if not self._queue:
                self._refill(robots, step)
            action = self._queue.popleft()
            if self._legal(action, robots):
                return action

    def _refill(self, robots: Sequence[RobotBody], step: int) -> None:
        chosen = [
            r.robot_id
            for r in robots
            if self._rng.random() < self._activation_prob
        ]
        laggard = self.find_laggard(robots, step, self._fairness_bound)
        if laggard is not None and laggard.robot_id not in chosen:
            chosen.append(laggard.robot_id)
        if not chosen:
            chosen = [self._rng.choice(robots).robot_id]
        for i in chosen:
            self._queue.append(Action(ActionKind.LOOK, i))
        for i in chosen:
            self._queue.append(Action(ActionKind.COMPUTE, i))
        for i in chosen:
            fraction = 1.0
            if self._truncate_prob and self._rng.random() < self._truncate_prob:
                fraction = self._rng.uniform(0.1, 0.9)
            self._queue.append(
                Action(ActionKind.MOVE, i, fraction=fraction, end_move=True)
            )

    @staticmethod
    def _legal(action: Action, robots: Sequence[RobotBody]) -> bool:
        robot = Scheduler.robot_by_id(robots, action.robot_id)
        if robot is None:
            return False  # robot crashed after this action was queued
        phase = robot.phase
        if action.kind is ActionKind.LOOK:
            return phase is Phase.IDLE
        if action.kind is ActionKind.COMPUTE:
            return phase is Phase.OBSERVED
        return phase is Phase.MOVING
