"""FSYNC: the fully synchronous scheduler.

All robots execute their Look-Compute-Move cycles in lock step: everybody
looks at the same instant, then everybody computes, then everybody moves
all the way to its destination (movement is rigid in FSYNC).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..sim.robot import Phase, RobotBody
from .base import Action, ActionKind, Scheduler


class FsyncScheduler(Scheduler):
    """Lock-step rounds over all robots; rigid movement."""

    name = "FSYNC"

    def __init__(self) -> None:
        self._queue: deque[Action] = deque()

    def reset(self, n: int) -> None:
        self._queue.clear()

    def next_action(self, robots: Sequence[RobotBody], step: int) -> Action:
        while True:
            if not self._queue:
                self._refill(robots)
            action = self._queue.popleft()
            if self._legal(action, robots):
                return action

    def _refill(self, robots: Sequence[RobotBody]) -> None:
        ids = [r.robot_id for r in robots]
        for i in ids:
            self._queue.append(Action(ActionKind.LOOK, i))
        for i in ids:
            self._queue.append(Action(ActionKind.COMPUTE, i))
        for i in ids:
            self._queue.append(Action(ActionKind.MOVE, i, fraction=1.0, end_move=True))

    @staticmethod
    def _legal(action: Action, robots: Sequence[RobotBody]) -> bool:
        robot = Scheduler.robot_by_id(robots, action.robot_id)
        if robot is None:
            return False  # robot crashed after this action was queued
        phase = robot.phase
        if action.kind is ActionKind.LOOK:
            return phase is Phase.IDLE
        if action.kind is ActionKind.COMPUTE:
            return phase is Phase.OBSERVED
        return phase is Phase.MOVING
