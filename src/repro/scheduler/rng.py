"""Randomness sources with bit accounting.

The paper's headline resource claim is that its algorithm consumes a
*single random bit* per robot per Look-Compute-Move cycle, versus the
infinitely many bits (a uniform point on a continuous segment) of
Yamauchi-Yamashita.  To measure this, every access to randomness by an
algorithm goes through a :class:`RandomSource`, which counts bits.
Continuous draws (used only by the baseline) are charged 64 bits, the
customary finite-precision proxy for a real number.
"""

from __future__ import annotations

import random


class RandomSource:
    """A seeded randomness source that counts consumed bits."""

    #: Bits charged for one continuous (float) draw.
    FLOAT_BITS = 64

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)
        self.bits_used = 0
        self.bit_calls = 0
        self.float_calls = 0

    def random_bit(self) -> int:
        """A fair random bit (0 or 1); costs exactly one bit."""
        self.bits_used += 1
        self.bit_calls += 1
        return self._rng.getrandbits(1)

    def random_float(self) -> float:
        """A uniform float in [0, 1); charged ``FLOAT_BITS`` bits."""
        self.bits_used += self.FLOAT_BITS
        self.float_calls += 1
        return self._rng.random()

    def fork(self) -> "RandomSource":
        """An independent child source (bits accounted separately)."""
        return RandomSource(self._rng.getrandbits(63))


class ForcedBits(RandomSource):
    """A deterministic source yielding a fixed bit; used by termination
    probes so that checking "would any coin outcome order a move?" does
    not consume real randomness or perturb reproducibility."""

    def __init__(self, bit: int) -> None:
        super().__init__(seed=0)
        self._bit = bit

    def random_bit(self) -> int:
        self.bits_used += 1
        self.bit_calls += 1
        return self._bit

    def random_float(self) -> float:
        self.bits_used += self.FLOAT_BITS
        self.float_calls += 1
        return float(self._bit) * 0.5
