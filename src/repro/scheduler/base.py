"""Scheduler interface.

The scheduler *is* the adversary: it decides which robot performs which
atomic step next (take a snapshot, run its computation, advance along its
path), how far a moving robot gets before being interrupted, and how stale
a computation's snapshot is allowed to become.  Every scheduler must be
*fair* — each robot is activated infinitely often — which the base class
supports via a laggard-forcing helper the engine relies on.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Sequence

from ..sim.robot import Phase, RobotBody


class ActionKind(enum.Enum):
    """The three atomic adversary moves."""

    LOOK = "look"
    COMPUTE = "compute"
    MOVE = "move"


@dataclass(frozen=True)
class Action:
    """One atomic scheduler decision.

    For MOVE actions, ``fraction`` is the share of the *remaining* path
    distance to traverse now, and ``end_move`` asks the engine to terminate
    the move after this advance (the engine enforces the paper's δ floor:
    a robot cannot be stopped before travelling at least δ unless it
    reaches its destination first).
    """

    kind: ActionKind
    robot_id: int
    fraction: float = 1.0
    end_move: bool = True


class Scheduler(abc.ABC):
    """Decides the global interleaving of robot steps."""

    #: Informal name used in benchmark tables.
    name: str = "scheduler"

    def reset(self, n: int) -> None:
        """Prepare for a fresh run over ``n`` robots."""

    @abc.abstractmethod
    def next_action(self, robots: Sequence[RobotBody], step: int) -> Action:
        """The next atomic action, given full knowledge of robot states."""

    # ------------------------------------------------------------------
    # fairness support
    # ------------------------------------------------------------------
    @staticmethod
    def find_laggard(
        robots: Sequence[RobotBody], step: int, bound: int
    ) -> RobotBody | None:
        """A robot starved for more than ``bound`` steps, if any."""
        worst: RobotBody | None = None
        for robot in robots:
            if step - robot.last_action_step > bound:
                if worst is None or robot.last_action_step < worst.last_action_step:
                    worst = robot
        return worst

    @staticmethod
    def robot_by_id(
        robots: Sequence[RobotBody], robot_id: int
    ) -> RobotBody | None:
        """Find a robot by id in a possibly *filtered* robot list.

        With fault injection enabled the engine hides crashed robots from
        the scheduler, so ``robots[i]`` no longer always has ``robot_id
        == i``.  The aligned fast path stays O(1); the scan only runs on
        filtered lists, and ``None`` means the robot is gone (crashed).
        """
        if robot_id < len(robots) and robots[robot_id].robot_id == robot_id:
            return robots[robot_id]
        for robot in robots:
            if robot.robot_id == robot_id:
                return robot
        return None

    @staticmethod
    def natural_action(robot: RobotBody) -> Action:
        """The phase-appropriate action advancing ``robot`` one step."""
        if robot.phase is Phase.IDLE:
            return Action(ActionKind.LOOK, robot.robot_id)
        if robot.phase is Phase.OBSERVED:
            return Action(ActionKind.COMPUTE, robot.robot_id)
        return Action(ActionKind.MOVE, robot.robot_id, fraction=1.0, end_move=True)
