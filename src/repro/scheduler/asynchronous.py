"""ASYNC: the fully asynchronous adversarial scheduler.

Every phase of every cycle may take arbitrarily long: a robot can take a
snapshot, then wait while others complete whole cycles before it computes
(stale observations); a moving robot can be advanced in small increments
with other robots acting in between (so they observe it mid-move), paused
indefinitely, and stopped early once it has covered δ.  Fairness is the
only constraint, enforced with a starvation bound.

This scheduler is the paper's adversary; presets tune how vicious it is.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from ..sim.robot import Phase, RobotBody
from .base import Action, ActionKind, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.policies import ActivationPolicy


class AsyncScheduler(Scheduler):
    """Randomised fully-asynchronous adversary.

    Args:
        seed: adversary randomness seed.
        truncate_prob: probability that a movement advance ends the move
            early (subject to the δ floor enforced by the engine).
        pause_prob: probability a selected moving robot is *not* advanced
            (modelling pauses while moving — the behaviour ruled out by
            assumption in Yamauchi-Yamashita and allowed here).
        min_chunk / max_chunk: range of the fraction of remaining distance
            covered by one movement advance.
        max_move_chunks: movement is forced to terminate after this many
            advances (fairness: every move finishes in finite time).
        compute_delay_prob: probability a robot with a pending snapshot is
            skipped in favour of someone else (staleness knob).
        fairness_bound: hard starvation bound in engine steps.
        policy: pluggable :class:`~repro.faults.policies.ActivationPolicy`
            replacing the default random robot choice with an adversarial
            strategy (``None`` keeps the stock behaviour bit-for-bit; the
            fairness bound overrides any policy).
    """

    name = "ASYNC"

    def __init__(
        self,
        seed: int | None = None,
        truncate_prob: float = 0.15,
        pause_prob: float = 0.2,
        min_chunk: float = 0.2,
        max_chunk: float = 1.0,
        max_move_chunks: int = 8,
        compute_delay_prob: float = 0.3,
        fairness_bound: int = 4000,
        policy: "ActivationPolicy | None" = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._truncate_prob = truncate_prob
        self._pause_prob = pause_prob
        self._min_chunk = min_chunk
        self._max_chunk = max_chunk
        self._max_move_chunks = max_move_chunks
        self._compute_delay_prob = compute_delay_prob
        self._fairness_bound = fairness_bound
        self._policy = policy
        # Earliest step at which a starvation breach is possible: no
        # robot can lag by more than the bound before
        # min(last_action_step) + bound, and last_action_step only
        # grows, so the laggard scan can sleep until this horizon.
        self._laggard_horizon = 0

    # -- read access for activation policies ---------------------------
    @property
    def rng(self) -> random.Random:
        """The adversary's RNG stream (shared with activation policies)."""
        return self._rng

    @property
    def pause_prob(self) -> float:
        return self._pause_prob

    @property
    def compute_delay_prob(self) -> float:
        return self._compute_delay_prob

    @property
    def policy(self) -> "ActivationPolicy | None":
        return self._policy

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def gentle(cls, seed: int | None = None) -> "AsyncScheduler":
        """Mostly sequential, little truncation — fast convergence."""
        return cls(
            seed=seed,
            truncate_prob=0.02,
            pause_prob=0.05,
            min_chunk=0.8,
            max_chunk=1.0,
            max_move_chunks=3,
            compute_delay_prob=0.05,
        )

    @classmethod
    def aggressive(cls, seed: int | None = None) -> "AsyncScheduler":
        """Maximal interleaving, pauses and truncation."""
        return cls(
            seed=seed,
            truncate_prob=0.35,
            pause_prob=0.4,
            min_chunk=0.05,
            max_chunk=0.5,
            max_move_chunks=12,
            compute_delay_prob=0.5,
        )

    # ------------------------------------------------------------------
    def reset(self, n: int) -> None:
        self._laggard_horizon = 0
        if self._policy is not None:
            self._policy.reset(n)

    def next_action(self, robots: Sequence[RobotBody], step: int) -> Action:
        if step >= self._laggard_horizon:
            # Single scan finding the most starved robot (first-found on
            # ties, matching find_laggard); when it is within the bound,
            # nobody breaches fairness before its horizon.  Crashed
            # robots leaving the pool only raise the minimum, so the
            # cached horizon stays conservative.
            oldest = robots[0]
            for robot in robots:
                if robot.last_action_step < oldest.last_action_step:
                    oldest = robot
            if step - oldest.last_action_step > self._fairness_bound:
                return self._advance(oldest, force=True)
            self._laggard_horizon = (
                oldest.last_action_step + self._fairness_bound + 1
            )
        if self._policy is not None:
            robot, force = self._policy.choose(robots, step, self)
            return self._advance(robot, force=force)
        for _ in range(64):
            robot = self._rng.choice(robots)
            if robot.phase is Phase.OBSERVED and (
                self._rng.random() < self._compute_delay_prob
            ):
                continue  # let the snapshot go stale
            if robot.phase is Phase.MOVING and self._rng.random() < self._pause_prob:
                continue  # pause mid-move
            return self._advance(robot, force=False)
        # Everybody got skipped by the random knobs — just act somewhere.
        return self._advance(self._rng.choice(robots), force=True)

    def _advance(self, robot: RobotBody, force: bool) -> Action:
        if robot.phase is Phase.IDLE:
            return Action(ActionKind.LOOK, robot.robot_id)
        if robot.phase is Phase.OBSERVED:
            return Action(ActionKind.COMPUTE, robot.robot_id)
        if force or robot.move_chunks >= self._max_move_chunks - 1:
            return Action(ActionKind.MOVE, robot.robot_id, 1.0, end_move=True)
        fraction = self._rng.uniform(self._min_chunk, self._max_chunk)
        end_move = fraction >= 1.0 or self._rng.random() < self._truncate_prob
        return Action(ActionKind.MOVE, robot.robot_id, fraction, end_move=end_move)


class RoundRobinScheduler(Scheduler):
    """A deterministic sequential ASYNC scheduler.

    Robots take complete cycles one after another in id order.  Useful as
    the most predictable baseline adversary and for debugging.
    """

    name = "ROUND-ROBIN"

    def __init__(self) -> None:
        self._current = 0
        self._computed = False

    def reset(self, n: int) -> None:
        self._current = 0
        self._computed = False

    def next_action(self, robots: Sequence[RobotBody], step: int) -> Action:
        robot = robots[self._current % len(robots)]
        if robot.phase is Phase.IDLE and self._computed:
            # Compute ordered no movement: the cycle is over, move on.
            self._current += 1
            self._computed = False
            robot = robots[self._current % len(robots)]
        if robot.phase is Phase.OBSERVED:
            self._computed = True
        elif robot.phase is Phase.MOVING:
            self._current += 1  # cycle completes with this move
            self._computed = False
        return self.natural_action(robot)
