"""Schedulers (adversaries): FSYNC, SSYNC, ASYNC and randomness sources."""

from .asynchronous import AsyncScheduler, RoundRobinScheduler
from .base import Action, ActionKind, Scheduler
from .fsync import FsyncScheduler
from .rng import ForcedBits, RandomSource
from .ssync import SsyncScheduler

__all__ = [
    "Action",
    "ActionKind",
    "AsyncScheduler",
    "ForcedBits",
    "FsyncScheduler",
    "RandomSource",
    "RoundRobinScheduler",
    "Scheduler",
    "SsyncScheduler",
]
