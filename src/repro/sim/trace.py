"""Execution traces.

An execution in the paper is the infinite sequence of configurations.  The
trace records the finite prefix a simulation produces: one event per
scheduler action, optionally with full configuration snapshots (sampled,
to bound memory).  Traces feed the ASCII renderer, the invariant checkers
and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..model import Configuration
from ..scheduler.base import ActionKind


@dataclass(frozen=True)
class TraceEvent:
    """One recorded scheduler action."""

    step: int
    kind: ActionKind
    robot_id: int
    configuration: Configuration | None


class Trace:
    """A bounded recording of a run.

    Args:
        sample_every: record a full configuration only every k-th event
            (1 = every event); other events are recorded without one.
        max_events: ring-buffer bound on stored events.
    """

    def __init__(self, sample_every: int = 1, max_events: int = 100_000) -> None:
        self.sample_every = sample_every
        self.max_events = max_events
        self._events: list[TraceEvent] = []
        self._count = 0

    def record(
        self, step: int, kind: ActionKind, robot_id: int, config: Configuration
    ) -> None:
        """Append an event (with a configuration if due for sampling)."""
        snap = config if self._count % self.sample_every == 0 else None
        self._events.append(TraceEvent(step, kind, robot_id, snap))
        self._count += 1
        if len(self._events) > self.max_events:
            del self._events[: len(self._events) - self.max_events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self) -> list[TraceEvent]:
        """All stored events."""
        return list(self._events)

    def configurations(self) -> list[Configuration]:
        """The sampled configurations in order."""
        return [e.configuration for e in self._events if e.configuration is not None]
