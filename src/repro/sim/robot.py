"""Per-robot simulation state.

Robots themselves are anonymous and oblivious; the *simulator* keeps this
bookkeeping record per robot — its true position, where it is within its
Look-Compute-Move cycle, the (possibly stale) snapshot it took, and the
path it committed to.  None of this is visible to the algorithms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..geometry import Vec2
from ..model import LocalFrame, Snapshot
from .paths import Path


class Phase(enum.Enum):
    """Where a robot stands in its LCM cycle."""

    IDLE = "idle"
    OBSERVED = "observed"  # snapshot taken, compute still pending
    MOVING = "moving"      # path committed, movement in progress


@dataclass
class RobotBody:
    """The simulator-side state of one robot."""

    robot_id: int
    position: Vec2
    phase: Phase = Phase.IDLE
    snapshot: Snapshot | None = None
    frame: LocalFrame | None = None
    path: Path | None = None
    progress: float = 0.0
    move_chunks: int = 0
    cycles_completed: int = 0
    last_action_step: int = 0
    distance_travelled: float = 0.0
    pending_extras: dict = field(default_factory=dict)
    #: Crash-stop fault: a crashed robot is frozen forever — it takes no
    #: further actions and reads as a permanently static point.
    crashed: bool = False

    def is_idle(self) -> bool:
        return self.phase is Phase.IDLE

    def is_moving(self) -> bool:
        return self.phase is Phase.MOVING

    def remaining_distance(self) -> float:
        """Distance left on the committed path (0 when not moving)."""
        if self.path is None:
            return 0.0
        return max(self.path.length() - self.progress, 0.0)
