"""Simulation engine: paths, robot state, metrics, traces, the LCM engine."""

from .context import ComputeContext
from .paths import ArcSegment, LineSegment, Path
from .robot import Phase, RobotBody
from .metrics import Metrics
from .trace import Trace, TraceEvent
from .engine import (
    InvariantViolation,
    Simulation,
    SimulationResult,
    chirality_frames,
    global_frames,
    random_frames,
)

__all__ = [
    "ArcSegment",
    "ComputeContext",
    "InvariantViolation",
    "LineSegment",
    "Metrics",
    "Path",
    "Phase",
    "RobotBody",
    "Simulation",
    "SimulationResult",
    "Trace",
    "TraceEvent",
    "chirality_frames",
    "global_frames",
    "random_frames",
]
