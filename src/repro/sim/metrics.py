"""Execution metrics.

Counts the quantities the experiments report: cycles, epochs (rounds in
which every robot completed at least one cycle), random bits consumed,
distance travelled and raw scheduler steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Aggregated counters for one simulation run."""

    steps: int = 0
    looks: int = 0
    computes: int = 0
    move_actions: int = 0
    cycles: int = 0
    epochs: int = 0
    random_bits: int = 0
    coin_flips: int = 0
    float_draws: int = 0
    distance: float = 0.0
    per_robot_cycles: list[int] = field(default_factory=list)
    _epoch_floor: int = 0

    def start(self, n: int) -> None:
        """Initialise per-robot counters."""
        self.per_robot_cycles = [0] * n

    def record_cycle(self, robot_id: int) -> None:
        """A robot finished a full Look-Compute-Move cycle."""
        self.cycles += 1
        self.per_robot_cycles[robot_id] += 1
        floor = min(self.per_robot_cycles)
        if floor > self._epoch_floor:
            self.epochs += floor - self._epoch_floor
            self._epoch_floor = floor

    def bits_per_cycle(self) -> float:
        """Average random bits consumed per completed cycle."""
        if self.cycles == 0:
            return 0.0
        return self.random_bits / self.cycles

    def summary(self) -> dict:
        """A plain-dict summary for result tables."""
        return {
            "steps": self.steps,
            "cycles": self.cycles,
            "epochs": self.epochs,
            "random_bits": self.random_bits,
            "coin_flips": self.coin_flips,
            "float_draws": self.float_draws,
            "bits_per_cycle": round(self.bits_per_cycle(), 4),
            "distance": round(self.distance, 6),
        }
