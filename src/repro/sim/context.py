"""Per-computation context handed to algorithms by the engine."""

from __future__ import annotations

from ..scheduler.rng import RandomSource


class ComputeContext:
    """The only side channel an algorithm gets besides its snapshot.

    Provides seeded randomness with bit accounting (the paper's algorithm
    must use at most one bit per cycle, which the metrics verify) and the
    robot's *own* chirality: each robot has a consistent handedness within
    a cycle — but no two robots need to agree on one — which algorithms
    may use to break purely internal ties such as "either arc direction
    works".
    """

    def __init__(self, rng: RandomSource, own_chirality: bool = True) -> None:
        self.rng = rng
        self.own_chirality = own_chirality

    def random_bit(self) -> int:
        """A fair coin flip (counted as one bit)."""
        return self.rng.random_bit()

    def random_float(self) -> float:
        """A continuous draw (counted as 64 bits); baselines only."""
        return self.rng.random_float()
