"""The Look-Compute-Move simulation engine.

A discrete-event rendering of the paper's continuous-time model: the
scheduler (= adversary) chooses an interleaving of atomic actions —

* LOOK — the robot takes an instantaneous snapshot of all positions, in a
  fresh local frame chosen by the frame policy (by default: random
  rotation, random scale, random reflection — no common North, no common
  chirality);
* COMPUTE — the robot runs the algorithm on its stored (possibly stale)
  snapshot, committing to a path or deciding not to move;
* MOVE — the robot advances along its committed path by an
  adversary-chosen amount; the adversary may pause it indefinitely between
  advances and may end the move early once at least δ has been covered.

Everything the ASYNC adversary of the paper may do — observe moving
robots, act on obsolete snapshots, pause mid-move — is expressible as an
interleaving of these actions.

Termination is detected as in the paper's definition of a *terminal*
configuration: all robots static and the algorithm orders no movement.
Because the algorithm is randomized, the engine probes every robot with
both coin outcomes (and both chiralities) before declaring termination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import monotonic as _monotonic
from time import perf_counter as _perf_counter
from typing import Callable, Protocol, Sequence

from ..geometry import Similarity, Vec2
from ..geometry.memo import Memo, points_key
from ..model import Configuration, LocalFrame, Pattern, make_snapshot
from ..model.snapshot import Snapshot
from ..profiling import PROFILER as _PROFILER
from ..scheduler.base import Action, ActionKind, Scheduler
from ..scheduler.rng import ForcedBits, RandomSource
from ..spatial import PositionGrid, SensingModel, index_enabled
from ..telemetry.frames import TraceFrame
from .context import ComputeContext
from .metrics import Metrics
from .paths import Path
from .robot import Phase, RobotBody
from .trace import Trace

#: Compact per-robot phase encoding used in telemetry frames.
_PHASE_CHAR = {Phase.IDLE: "i", Phase.OBSERVED: "o", Phase.MOVING: "m"}


class InvariantViolation(AssertionError):
    """A safety property the model guarantees was violated during a run.

    Structured: ``kind`` names the broken invariant (``"multiplicity"``,
    ``"delta"``, or ``"generic"`` for ad-hoc checker raises), and
    ``robot_id``/``step`` locate it.  Subclasses ``AssertionError`` for
    backwards compatibility with the checker-based tests that predate
    the engine's own ``strict_invariants`` mode.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "generic",
        robot_id: "int | None" = None,
        step: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.robot_id = robot_id
        self.step = step


class AlgorithmLike(Protocol):
    """Duck type for algorithms (see :class:`repro.algorithms.Algorithm`)."""

    name: str
    requires_multiplicity_detection: bool
    target_pattern: Pattern | None

    def compute(self, snapshot, ctx: ComputeContext) -> Path | None: ...


FramePolicy = Callable[[int, Vec2, random.Random], LocalFrame]


def random_frames(
    allow_reflection: bool = True,
    min_scale: float = 0.25,
    max_scale: float = 4.0,
) -> FramePolicy:
    """Fresh random local frame at every Look (the paper's full model).

    With ``allow_reflection`` robots share no chirality; without it they
    share a handedness but still no North and no unit.
    """

    def policy(robot_id: int, position: Vec2, rng: random.Random) -> LocalFrame:
        return LocalFrame.random_at(
            position,
            rng,
            allow_reflection=allow_reflection,
            min_scale=min_scale,
            max_scale=max_scale,
        )

    # Declarative description of the draw, for engines that only need the
    # frame's chirality and scale (the array engine's canonical-frame
    # Look replays the exact RNG draws without building the frame).
    policy.draw_spec = (allow_reflection, min_scale, max_scale)
    return policy


def global_frames() -> FramePolicy:
    """All robots share the global frame (common North, chirality, unit).

    This is the *strong* assumption the related deterministic work needs;
    used by baselines and ablation experiments."""

    def policy(robot_id: int, position: Vec2, rng: random.Random) -> LocalFrame:
        return LocalFrame.identity_at(position)

    return policy


def chirality_frames(min_scale: float = 0.25, max_scale: float = 4.0) -> FramePolicy:
    """Random rotation and scale but a common handedness (the
    Yamauchi-Yamashita assumption the paper removes)."""
    return random_frames(False, min_scale, max_scale)


@dataclass
class SimulationResult:
    """Outcome of one run."""

    final_configuration: Configuration
    terminated: bool
    pattern_formed: bool
    steps: int
    metrics: Metrics
    reason: str
    trace: Trace | None = None


class Simulation:
    """One simulated execution of an algorithm under a scheduler.

    Args:
        initial: starting configuration (global coordinates).
        algorithm: the distributed algorithm every robot runs.
        scheduler: the adversary choosing the interleaving.
        delta: the minimum distance δ a robot travels before the adversary
            may stop it (unknown to the robots).
        frame_policy: how local frames are drawn at each Look.
        multiplicity_detection: override the algorithm's requirement.
        pattern: pattern used for the ``pattern_formed`` verdict (defaults
            to ``algorithm.target_pattern``).
        max_steps: scheduler-step budget before giving up.
        wall_limit: wall-clock budget in seconds; when exceeded the run
            stops with ``reason="wall_timeout"`` (checked periodically
            inside the loop, so it cannot interrupt a single action).
        seed: master seed for robot coins and frame draws (the scheduler
            has its own seed).
        faults: a :class:`~repro.faults.models.FaultPlan` (or its spec
            dict) injecting crash-stop robots, adversarial move
            truncation and sensor noise into this run; ``None`` leaves
            every code path bit-for-bit identical to a fault-free engine.
        sensing: a :class:`~repro.spatial.SensingModel` (or its spec
            dict, e.g. ``{"kind": "limited", "radius": 2.0}``)
            restricting every Look — and the terminal probe — to the
            robots within the visibility radius of the observer.
            ``None`` (full visibility, the paper's model) leaves every
            code path bit-for-bit identical to earlier builds.  The
            spatial index (:class:`~repro.spatial.PositionGrid`,
            switched by ``REPRO_SPATIAL_INDEX``) accelerates the
            visibility queries and the large-n bookkeeping; it is a
            pure accelerator — runs with the index on are bit-for-bit
            identical to runs with it off.
        strict_invariants: opt-in runtime verification.  After every
            applied Move the engine checks that no multiplicity point
            was created and — with faults disabled — that a finished
            move covered at least ``min(delta, path length)``; a breach
            raises a structured :class:`InvariantViolation`, which
            :meth:`run` converts into a ``reason="invariant: ..."``
            result instead of silently continuing with a wrong
            configuration.  Off by default: the checks are O(n) per
            move and the invariants are guaranteed by construction —
            this is a tripwire for engine/algorithm regressions and
            hostile fault plans, not a correctness requirement.
        record_trace: keep a :class:`Trace` of the run.
        checkers: callables ``(simulation, action) -> None`` invoked after
            every applied action; raise to fail the run (used for
            invariant checking in tests).
        on_frame: telemetry hook invoked with a
            :class:`~repro.telemetry.frames.TraceFrame` after every
            applied action.  Strictly observational — building the
            frame reads positions and phases only, never an RNG, so a
            hooked run is bit-for-bit identical to an unhooked one.
            ``None`` (the default) skips frame construction entirely.
    """

    def __init__(
        self,
        initial: Configuration | Sequence[Vec2],
        algorithm: AlgorithmLike,
        scheduler: Scheduler,
        *,
        delta: float = 1e-3,
        frame_policy: FramePolicy | None = None,
        multiplicity_detection: bool | None = None,
        pattern: Pattern | None = None,
        max_steps: int = 500_000,
        wall_limit: float | None = None,
        seed: int = 0,
        faults: "object | None" = None,
        sensing: "object | None" = None,
        strict_invariants: bool = False,
        record_trace: bool = False,
        trace_sample_every: int = 1,
        checkers: Sequence[Callable[["Simulation", Action], None]] = (),
        on_frame: "Callable[[TraceFrame], None] | None" = None,
    ) -> None:
        if not isinstance(initial, Configuration):
            initial = Configuration.from_points(initial)
        self.robots = [RobotBody(i, p) for i, p in enumerate(initial.positions)]
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.delta = delta
        self.frame_policy = frame_policy or random_frames()
        self.multiplicity_detection = (
            algorithm.requires_multiplicity_detection
            if multiplicity_detection is None
            else multiplicity_detection
        )
        self.pattern = pattern or algorithm.target_pattern
        self.max_steps = max_steps
        self.wall_limit = wall_limit
        self.strict_invariants = strict_invariants
        self.checkers = list(checkers)
        self.seed = seed
        self.on_frame = on_frame
        self.metrics = Metrics()
        self.metrics.start(len(self.robots))
        self.trace = (
            Trace(sample_every=trace_sample_every) if record_trace else None
        )

        master = random.Random(seed)
        self._frame_rng = random.Random(master.getrandbits(63))
        self._robot_rngs = [
            RandomSource(master.getrandbits(63)) for _ in self.robots
        ]
        self.step_count = 0
        # Number of robots currently outside their cycle, maintained by
        # :meth:`apply` so fault-free runs answer :meth:`all_idle` in
        # O(1).  Fault injection can flip phases outside apply (crash
        # handling), so faulty runs fall back to the full scan.
        self._idle_count = len(self.robots)
        self._positions_dirty = True
        self._last_movement_step = 0
        self._last_probe_step = -(10**9)
        # Terminal-probe verdicts keyed by the exact configuration
        # fingerprint: the probe is pure (forced coins, no shared RNG),
        # so re-probing an unchanged or revisited configuration is free.
        # Per-instance because the verdict depends on the algorithm; the
        # hit/miss counters are shared under one name.
        self._probe_memo = Memo("engine.terminal_probe", register=False)
        self.faults = None
        if faults is not None:
            from ..faults.models import FaultPlan

            plan = FaultPlan.from_spec(faults)
            if plan is not None:
                self.faults = plan.bind(len(self.robots), seed)
        self.sensing = SensingModel.from_spec(sensing)
        # The spatial index mirrors robot positions for sublinear
        # neighbour queries (visibility discs, the strict-invariant
        # multiplicity check).  Purely an accelerator: every grid query
        # is bit-identical to the brute-force scan it replaces.
        self._grid = None
        if index_enabled(len(self.robots)):
            # Auto cell (~one point per cell on uniform swarms): better
            # pruning than cell = visibility radius whenever the disc
            # covers many robots, and any cell size is correct.
            self._grid = PositionGrid([r.position for r in self.robots])
        self.scheduler.reset(len(self.robots))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def random(
        n: int,
        algorithm: AlgorithmLike,
        scheduler: Scheduler,
        seed: int = 0,
        spread: float = 1.0,
        min_separation: float = 0.05,
        **kwargs,
    ) -> "Simulation":
        """A simulation from a random general-position configuration."""
        from ..patterns.library import random_configuration

        initial = random_configuration(
            n, seed=seed, spread=spread, min_separation=min_separation
        )
        return Simulation(initial, algorithm, scheduler, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def configuration(self) -> Configuration:
        """The current global configuration."""
        return Configuration(tuple(r.position for r in self.robots))

    def points(self) -> list[Vec2]:
        """Current robot positions as a list."""
        return [r.position for r in self.robots]

    def all_idle(self) -> bool:
        """Whether every robot is outside its cycle (static configuration)."""
        if self.faults is None:
            return self._idle_count == len(self.robots)
        return all(r.phase is Phase.IDLE for r in self.robots)

    def _observed_points(self, observer: Vec2) -> list[Vec2]:
        """What a Look at ``observer`` sees, before sensor noise.

        Full visibility returns every position (the historical path,
        untouched).  Limited visibility filters to the sensing disc —
        through the spatial index when active, by brute force otherwise;
        both evaluate the identical ``dist_sq <= radius * radius``
        predicate in robot-id order, so the results are bit-identical.
        """
        if self.sensing is None:
            return self.points()
        if self._grid is not None:
            return self._grid.disc_points(observer, self.sensing.radius)
        return self.sensing.visible(self.points(), observer)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run until terminal, or until a step/wall-clock budget runs out."""
        deadline = (
            None
            if self.wall_limit is None
            else _monotonic() + self.wall_limit
        )
        while self.step_count < self.max_steps:
            # Sampled every iteration so the overshoot past the budget
            # is bounded by a single action plus its checkers, however
            # slow they are (pinned by tests/sim/test_wall_limit.py).
            if deadline is not None and _monotonic() > deadline:
                return self._result(terminated=False, reason="wall_timeout")
            if self.faults is not None:
                self.faults.tick(self)
                pool = [r for r in self.robots if not r.crashed]
                if not pool:
                    return self._result(terminated=False, reason="all_crashed")
            else:
                pool = self.robots
            if self._quiescent() and self.is_terminal():
                return self._result(terminated=True, reason="terminal")
            action = self.scheduler.next_action(pool, self.step_count)
            try:
                self.apply(action)
            except InvariantViolation as exc:
                # Strict-mode tripwire: surface the breach as a distinct
                # run outcome instead of a silently wrong configuration.
                # Checker raises (below) still propagate — they are the
                # test suite's assertion mechanism.
                return self._result(
                    terminated=False, reason=f"invariant: [{exc.kind}] {exc}"
                )
            for checker in self.checkers:
                checker(self, action)
        return self._result(terminated=False, reason="max_steps")

    def apply(self, action: Action) -> None:
        """Apply one scheduler action."""
        robot = self.robots[action.robot_id]
        self.step_count += 1
        self.metrics.steps += 1
        robot.last_action_step = self.step_count

        profiling = _PROFILER.enabled
        started = _perf_counter() if profiling else 0.0
        if action.kind is ActionKind.LOOK:
            self._apply_look(robot)
            self._idle_count -= 1  # LOOK is strictly IDLE -> OBSERVED
        elif action.kind is ActionKind.COMPUTE:
            self._apply_compute(robot)
            if robot.phase is Phase.IDLE:  # trivial path: cycle over
                self._idle_count += 1
        else:
            self._apply_move(robot, action)
            if robot.phase is Phase.IDLE:  # move completed
                self._idle_count += 1
        if profiling:
            _PROFILER.add(action.kind.name.lower(), _perf_counter() - started)

        if self.trace is not None:
            self.trace.record(
                self.step_count, action.kind, robot.robot_id, self.configuration()
            )
        if self.on_frame is not None:
            # Observe-only: positions and phases are read, no RNG is
            # touched, so telemetry cannot perturb the run.
            self.on_frame(
                TraceFrame(
                    seed=self.seed,
                    step=self.step_count,
                    action=action.kind.value,
                    robot=robot.robot_id,
                    positions=tuple(
                        (r.position.x, r.position.y) for r in self.robots
                    ),
                    phases="".join(
                        _PHASE_CHAR[r.phase] for r in self.robots
                    ),
                )
            )

    def _apply_look(self, robot: RobotBody) -> None:
        if robot.phase is not Phase.IDLE:
            raise RuntimeError(
                f"scheduler bug: LOOK on robot {robot.robot_id} in {robot.phase}"
            )
        frame = self.frame_policy(robot.robot_id, robot.position, self._frame_rng)
        robot.frame = frame
        observed = self._observed_points(robot.position)
        if self.faults is not None:
            observed = self.faults.observe(robot.robot_id, observed)
        robot.snapshot = make_snapshot(
            observed,
            robot.position,
            frame.observe,
            self.multiplicity_detection,
            to_local_all=frame.observe_all,
        )
        robot.phase = Phase.OBSERVED
        self.metrics.looks += 1

    def _apply_compute(self, robot: RobotBody) -> None:
        if robot.phase is not Phase.OBSERVED or robot.snapshot is None:
            raise RuntimeError(
                f"scheduler bug: COMPUTE on robot {robot.robot_id} in {robot.phase}"
            )
        rng = self._robot_rngs[robot.robot_id]
        bits_before, flips_before, floats_before = (
            rng.bits_used,
            rng.bit_calls,
            rng.float_calls,
        )
        ctx = ComputeContext(rng, own_chirality=not robot.frame.is_mirrored())
        local_path = self.algorithm.compute(robot.snapshot, ctx)
        self.metrics.random_bits += rng.bits_used - bits_before
        self.metrics.coin_flips += rng.bit_calls - flips_before
        self.metrics.float_draws += rng.float_calls - floats_before
        self.metrics.computes += 1
        self._commit_compute(robot, local_path)

    def _commit_compute(self, robot: RobotBody, local_path) -> None:
        """Install one Compute result: idle on a trivial path, else arm
        the Move.  Shared by the scalar engine and the array engine's
        compute-memo replay path (the result of a memo hit is installed
        through exactly this code)."""
        robot.snapshot = None
        if local_path is None or local_path.is_trivial():
            robot.phase = Phase.IDLE
            robot.frame = None
            self.metrics.record_cycle(robot.robot_id)
            return
        global_path = local_path.transformed(robot.frame.globalize())
        if not global_path.start().approx_eq(robot.position, 1e-6):
            raise RuntimeError(
                f"algorithm bug: path for robot {robot.robot_id} starts at "
                f"{global_path.start()!r}, robot is at {robot.position!r}"
            )
        robot.frame = None
        robot.path = global_path
        robot.progress = 0.0
        robot.move_chunks = 0
        robot.phase = Phase.MOVING

    def _apply_move(self, robot: RobotBody, action: Action) -> None:
        if robot.phase is not Phase.MOVING or robot.path is None:
            raise RuntimeError(
                f"scheduler bug: MOVE on robot {robot.robot_id} in {robot.phase}"
            )
        total = robot.path.length()
        remaining = max(total - robot.progress, 0.0)
        advance = max(0.0, min(action.fraction, 1.0)) * remaining
        new_progress = robot.progress + advance
        finishing = action.end_move or new_progress >= total - 1e-12
        if self.faults is not None:
            # Adversarial stop-points may undercut the δ floor; the floor
            # clamp below restores the model's guarantee in one place.
            new_progress, finishing = self.faults.truncate_move(
                self.delta, robot.progress, total, new_progress, finishing
            )

        if finishing and new_progress < total - 1e-12:
            # The adversary may not stop the robot before δ (or the
            # destination, whichever comes first).
            floor = min(self.delta, total)
            new_progress = max(new_progress, floor)

        new_position = robot.path.point_at(new_progress)
        travelled = new_progress - robot.progress
        if travelled > 1e-15:
            self._positions_dirty = True
            self._last_movement_step = self.step_count
        robot.distance_travelled += travelled
        self.metrics.distance += travelled
        self.metrics.move_actions += 1
        robot.position = new_position
        robot.progress = new_progress
        robot.move_chunks += 1
        if self._grid is not None:
            self._grid.move(robot.robot_id, new_position)

        if self.strict_invariants:
            self._check_move_invariants(robot, travelled, new_progress, total, finishing)

        if finishing:
            robot.path = None
            robot.progress = 0.0
            robot.move_chunks = 0
            robot.phase = Phase.IDLE
            self.metrics.record_cycle(robot.robot_id)

    def _check_move_invariants(
        self,
        robot: RobotBody,
        travelled: float,
        new_progress: float,
        total: float,
        finishing: bool,
    ) -> None:
        """Strict-mode post-Move verification (see ``strict_invariants``).

        * **multiplicity** — a robot that actually moved must not have
          landed on another robot's exact position (within the same
          1e-9 tolerance the multiplicity checker uses);
        * **delta** — with faults disabled, a *finished* move must have
          covered at least ``min(delta, total)`` of its path.  The
          floor clamp in :meth:`_apply_move` enforces this by
          construction, so a raise here means an engine regression (a
          code path around the clamp), which is exactly what a tripwire
          is for.  Fault plans may legitimately stop short (adversarial
          truncation is re-floored, crash mid-move is not a finish), so
          the check is skipped when faults are active.
        """
        if travelled > 1e-15:
            position = robot.position
            # The index answers the same approx_eq(1e-9) box predicate
            # in ascending id order, so the reported collision partner
            # matches the brute-force scan exactly.
            if self._grid is not None:
                near = [
                    i
                    for i in self._grid.near_box(position, 1e-9)
                    if i != robot.robot_id
                ]
            else:
                near = [
                    other.robot_id
                    for other in self.robots
                    if other is not robot
                    and position.approx_eq(other.position, 1e-9)
                ]
            if near:
                raise InvariantViolation(
                    f"robot {robot.robot_id} moved onto robot "
                    f"{near[0]} at {position!r} "
                    f"(step {self.step_count})",
                    kind="multiplicity",
                    robot_id=robot.robot_id,
                    step=self.step_count,
                )
        if (
            finishing
            and self.faults is None
            and new_progress + 1e-12 < min(self.delta, total)
        ):
            raise InvariantViolation(
                f"robot {robot.robot_id} finished a move after "
                f"{new_progress!r} < min(delta={self.delta!r}, "
                f"length={total!r}) (step {self.step_count})",
                kind="delta",
                robot_id=robot.robot_id,
                step=self.step_count,
            )

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _quiescent(self) -> bool:
        """Cheap gate before the expensive terminal probe."""
        if not self.all_idle():
            return False
        # Probe when something moved since the last probe, or periodically
        # while quiet (covers algorithms that decide "no move" without
        # changing any position, e.g. losing coin flips).
        return self._positions_dirty or (
            self.step_count - self._last_probe_step > 8 * len(self.robots)
        )

    def is_terminal(self) -> bool:
        """The paper's terminal test: static and empty for the algorithm.

        Probes every robot with both coin outcomes and both chiralities so
        a randomized or chirality-tie-broken decision to move cannot hide.

        The probe is a pure function of the configuration (forced coins,
        identity frames, no shared RNG), so its verdict is cached per
        exact configuration fingerprint: re-probing an unchanged or
        revisited configuration — e.g. the periodic probes of
        :meth:`_quiescent` while every coin flip loses — costs a cache
        lookup instead of ``4 n`` algorithm executions.
        """
        self._positions_dirty = False
        self._last_probe_step = self.step_count
        points = self.points()
        if self._probe_memo.active():
            key = points_key(points)
            if self.faults is not None:
                # The verdict also depends on who can still move: crashed
                # robots are exempt from the probe, so their ids join the
                # key (sensor noise never reaches the probe — terminality
                # is a property of the true configuration).
                key = (key, tuple(r.robot_id for r in self.robots if r.crashed))
            hit, verdict = self._probe_memo.lookup(key)
        else:
            key, hit, verdict = None, False, False
        if not hit:
            profiling = _PROFILER.enabled
            started = _perf_counter() if profiling else 0.0
            verdict = self._probe(points)
            if profiling:
                _PROFILER.add("terminal_probe", _perf_counter() - started)
            if key is not None:
                self._probe_memo.store(key, verdict)
        return verdict

    def _probe(self, points: list[Vec2]) -> bool:
        """Run the full 4n-way probe (every robot, coin bit, chirality).

        All robots are probed in ONE shared frame per chirality (the
        global axes, resp. their mirror image) rather than in n
        ego-centered copies: algorithms never rely on ``me`` being at the
        origin (see :class:`~repro.model.snapshot.Snapshot`), so the
        verdict is the same, and sharing the frame means the snapshot
        point tuple — and with it every geometry memo entry — is computed
        once per chirality instead of once per robot.

        Under limited visibility each robot observes its own subset, so
        the probe dispatches to :meth:`_probe_limited` (per-robot
        visibility discs; the shared-frame trick still applies per
        chirality, but the point tuples differ per robot).
        """
        if self.sensing is not None:
            return self._probe_limited()
        for mirrored in (False, True):
            frame = LocalFrame(
                Similarity.reflection_x() if mirrored else Similarity.identity()
            )
            base = make_snapshot(
                points,
                self.robots[0].position,
                frame.observe,
                self.multiplicity_detection,
                to_local_all=frame.observe_all,
            )
            observe = frame.observe
            for robot in self.robots:
                if robot.crashed:
                    continue  # a crashed robot can never move again
                # The snapshot depends on the frame only: reuse the shared
                # point tuple, swapping in this robot's own position.
                snapshot = (
                    base
                    if robot is self.robots[0]
                    else Snapshot(
                        base.points,
                        observe(robot.position),
                        self.multiplicity_detection,
                    )
                )
                for bit in (0, 1):
                    ctx = ComputeContext(ForcedBits(bit), own_chirality=not mirrored)
                    path = self.algorithm.compute(snapshot, ctx)
                    if path is not None and not path.is_trivial(1e-9):
                        return False
        return True

    def _probe_limited(self) -> bool:
        """The 4n-way probe under limited visibility.

        Identical decision rule to :meth:`_probe`, but every robot is
        probed on the snapshot its own sensing disc yields.  Visible
        sets are gathered once per robot (index-accelerated when the
        grid is active, bit-identical either way) and reused across the
        two chiralities and both coin outcomes.
        """
        visible: list[tuple[RobotBody, list[Vec2]]] = [
            (robot, self._observed_points(robot.position))
            for robot in self.robots
            if not robot.crashed
        ]
        for mirrored in (False, True):
            frame = LocalFrame(
                Similarity.reflection_x() if mirrored else Similarity.identity()
            )
            for robot, seen in visible:
                snapshot = make_snapshot(
                    seen,
                    robot.position,
                    frame.observe,
                    self.multiplicity_detection,
                    to_local_all=frame.observe_all,
                )
                for bit in (0, 1):
                    ctx = ComputeContext(ForcedBits(bit), own_chirality=not mirrored)
                    path = self.algorithm.compute(snapshot, ctx)
                    if path is not None and not path.is_trivial(1e-9):
                        return False
        return True

    # ------------------------------------------------------------------
    def _result(self, terminated: bool, reason: str) -> SimulationResult:
        final = self.configuration()
        formed = (
            self.pattern.matches(final.points(), 2e-5)
            if self.pattern is not None
            else False
        )
        return SimulationResult(
            final_configuration=final,
            terminated=terminated,
            pattern_formed=formed,
            steps=self.step_count,
            metrics=self.metrics,
            reason=reason,
            trace=self.trace,
        )
