"""Movement paths.

The robots of the paper compute a *path* to a destination, not only a
destination point: "it moves toward the destination following the
previously computed path".  Two primitives cover every movement the
algorithm orders — straight segments (radial moves, final moves) and
circular arcs ("moves on its circle").  A :class:`Path` is a sequence of
primitives parameterised by arc length, which is what the adversary
controls when it interrupts a robot mid-move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..geometry import Circle, Similarity, Vec2, direction_angle


@dataclass(frozen=True)
class LineSegment:
    """A straight segment from ``start`` to ``end``."""

    start: Vec2
    end: Vec2

    def length(self) -> float:
        """Arc length of the segment."""
        return self.start.dist(self.end)

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped)."""
        total = self.length()
        if total <= 0.0:
            return self.start
        t = min(max(s / total, 0.0), 1.0)
        return Vec2(
            self.start.x + (self.end.x - self.start.x) * t,
            self.start.y + (self.end.y - self.start.y) * t,
        )

    def transformed(self, transform: Similarity) -> "LineSegment":
        """The segment mapped through a similarity."""
        return LineSegment(transform.apply(self.start), transform.apply(self.end))


@dataclass(frozen=True)
class ArcSegment:
    """A circular arc around ``center`` at ``radius``.

    The arc starts at polar angle ``start_angle`` and sweeps by the signed
    angle ``sweep`` (positive = counterclockwise).
    """

    center: Vec2
    radius: float
    start_angle: float
    sweep: float

    def length(self) -> float:
        """Arc length of the arc."""
        return abs(self.sweep) * self.radius

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped)."""
        total = self.length()
        if total <= 0.0:
            return self.start()
        t = min(max(s / total, 0.0), 1.0)
        angle = self.start_angle + self.sweep * t
        return self.center + Vec2.polar(self.radius, angle)

    def start(self) -> Vec2:
        """The arc's start point."""
        return self.center + Vec2.polar(self.radius, self.start_angle)

    def end(self) -> Vec2:
        """The arc's end point."""
        return self.center + Vec2.polar(self.radius, self.start_angle + self.sweep)

    def transformed(self, transform: Similarity) -> "ArcSegment":
        """The arc mapped through a similarity (arcs map to arcs)."""
        new_center = transform.apply(self.center)
        new_radius = self.radius * transform.scale
        new_start = transform.apply(self.start())
        new_start_angle = direction_angle(new_center, new_start)
        new_sweep = -self.sweep if transform.reflect else self.sweep
        return ArcSegment(new_center, new_radius, new_start_angle, new_sweep)


Segment = LineSegment | ArcSegment


@dataclass(frozen=True)
class Path:
    """A piecewise path (sequence of segments), parameterised by length."""

    segments: tuple[Segment, ...]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def line(start: Vec2, end: Vec2) -> "Path":
        """A straight path."""
        return Path((LineSegment(start, end),))

    @staticmethod
    def arc(circle: Circle, start_angle: float, sweep: float) -> "Path":
        """An arc path on ``circle``."""
        return Path(
            (ArcSegment(circle.center, circle.radius, start_angle, sweep),)
        )

    @staticmethod
    def arc_to(circle: Circle, start: Vec2, target_angle: float, direct: bool) -> "Path":
        """Arc on ``circle`` from ``start`` to ``target_angle``.

        ``direct`` selects the counterclockwise (True) or clockwise sweep.
        """
        a0 = direction_angle(circle.center, start)
        if direct:
            sweep = (target_angle - a0) % (2.0 * math.pi)
        else:
            sweep = -((a0 - target_angle) % (2.0 * math.pi))
        return Path.arc(circle, a0, sweep)

    @staticmethod
    def chain(segments: Sequence[Segment]) -> "Path":
        """A path made of the given segments (assumed contiguous)."""
        return Path(tuple(segments))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Total arc length."""
        return sum(seg.length() for seg in self.segments)

    def is_trivial(self, eps: float = 1e-12) -> bool:
        """True for a path of (near-)zero length."""
        return self.length() <= eps

    def start(self) -> Vec2:
        """The path's start point."""
        first = self.segments[0]
        return first.start() if isinstance(first, ArcSegment) else first.start

    def destination(self) -> Vec2:
        """The path's end point."""
        last = self.segments[-1]
        return last.end() if isinstance(last, ArcSegment) else last.end

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped to the path)."""
        remaining = max(s, 0.0)
        for seg in self.segments:
            seg_len = seg.length()
            if remaining <= seg_len:
                return seg.point_at(remaining)
            remaining -= seg_len
        return self.destination()

    def transformed(self, transform: Similarity) -> "Path":
        """The path mapped through a similarity transform."""
        return Path(tuple(seg.transformed(transform) for seg in self.segments))
