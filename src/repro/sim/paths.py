"""Movement paths.

The robots of the paper compute a *path* to a destination, not only a
destination point: "it moves toward the destination following the
previously computed path".  Two primitives cover every movement the
algorithm orders — straight segments (radial moves, final moves) and
circular arcs ("moves on its circle").  A :class:`Path` is a sequence of
primitives parameterised by arc length, which is what the adversary
controls when it interrupts a robot mid-move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..geometry import Circle, Similarity, Vec2, direction_angle, norm_angle


@dataclass(frozen=True)
class LineSegment:
    """A straight segment from ``start`` to ``end``."""

    start: Vec2
    end: Vec2

    def length(self) -> float:
        """Arc length of the segment."""
        return self.start.dist(self.end)

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped)."""
        total = self.length()
        if total <= 0.0:
            return self.start
        t = min(max(s / total, 0.0), 1.0)
        return Vec2(
            self.start.x + (self.end.x - self.start.x) * t,
            self.start.y + (self.end.y - self.start.y) * t,
        )

    def transformed(self, transform: Similarity) -> "LineSegment":
        """The segment mapped through a similarity."""
        return LineSegment(transform.apply(self.start), transform.apply(self.end))

    def mirrored(self) -> "LineSegment":
        """The segment reflected across the x axis — *exactly*.

        Floating-point negation is exact, so every query on the mirrored
        segment returns the exact reflection of the original's answer
        (lengths are bit-identical).
        """
        s, e = self.start, self.end
        return LineSegment(Vec2(s.x, -s.y), Vec2(e.x, -e.y))


@dataclass(frozen=True)
class ArcSegment:
    """A circular arc around ``center`` at ``radius``.

    The arc starts at polar angle ``start_angle`` and sweeps by the signed
    angle ``sweep`` (positive = counterclockwise).
    """

    center: Vec2
    radius: float
    start_angle: float
    sweep: float

    def length(self) -> float:
        """Arc length of the arc."""
        return abs(self.sweep) * self.radius

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped)."""
        total = self.length()
        if total <= 0.0:
            return self.start()
        t = min(max(s / total, 0.0), 1.0)
        angle = self.start_angle + self.sweep * t
        return self.center + Vec2.polar(self.radius, angle)

    def start(self) -> Vec2:
        """The arc's start point."""
        return self.center + Vec2.polar(self.radius, self.start_angle)

    def end(self) -> Vec2:
        """The arc's end point."""
        return self.center + Vec2.polar(self.radius, self.start_angle + self.sweep)

    def transformed(self, transform: Similarity) -> "ArcSegment":
        """The arc mapped through a similarity (arcs map to arcs)."""
        new_center = transform.apply(self.center)
        new_radius = self.radius * transform.scale
        new_start = transform.apply(self.start())
        new_start_angle = direction_angle(new_center, new_start)
        new_sweep = -self.sweep if transform.reflect else self.sweep
        return ArcSegment(new_center, new_radius, new_start_angle, new_sweep)

    def mirrored(self) -> "ArcSegment":
        """The arc reflected across the x axis.

        Reflection maps polar angle ``a`` to ``-a`` (an exact negation)
        and reverses the sweep direction.  The start angle is
        renormalised into [0, 2*pi) to match ``direction_angle``'s
        convention, which costs one rounding: sampled points agree with
        the exact reflection — and with an arc built live from the
        reflected inputs — to within one ulp of the angle.  Radius and
        sweep magnitude are untouched, so the length is bit-identical.
        """
        c = self.center
        return ArcSegment(
            Vec2(c.x, -c.y),
            self.radius,
            norm_angle(-self.start_angle),
            -self.sweep,
        )


Segment = LineSegment | ArcSegment


@dataclass(frozen=True)
class Path:
    """A piecewise path (sequence of segments), parameterised by length."""

    segments: tuple[Segment, ...]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def line(start: Vec2, end: Vec2) -> "Path":
        """A straight path."""
        return Path((LineSegment(start, end),))

    @staticmethod
    def arc(circle: Circle, start_angle: float, sweep: float) -> "Path":
        """An arc path on ``circle``."""
        return Path(
            (ArcSegment(circle.center, circle.radius, start_angle, sweep),)
        )

    @staticmethod
    def arc_to(circle: Circle, start: Vec2, target_angle: float, direct: bool) -> "Path":
        """Arc on ``circle`` from ``start`` to ``target_angle``.

        ``direct`` selects the counterclockwise (True) or clockwise sweep.
        """
        a0 = direction_angle(circle.center, start)
        if direct:
            sweep = (target_angle - a0) % (2.0 * math.pi)
        else:
            sweep = -((a0 - target_angle) % (2.0 * math.pi))
        return Path.arc(circle, a0, sweep)

    @staticmethod
    def chain(segments: Sequence[Segment]) -> "Path":
        """A path made of the given segments (assumed contiguous)."""
        return Path(tuple(segments))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Total arc length."""
        return sum(seg.length() for seg in self.segments)

    def is_trivial(self, eps: float = 1e-12) -> bool:
        """True for a path of (near-)zero length."""
        return self.length() <= eps

    def start(self) -> Vec2:
        """The path's start point."""
        first = self.segments[0]
        return first.start() if isinstance(first, ArcSegment) else first.start

    def destination(self) -> Vec2:
        """The path's end point."""
        last = self.segments[-1]
        return last.end() if isinstance(last, ArcSegment) else last.end

    def point_at(self, s: float) -> Vec2:
        """Point at arc length ``s`` from the start (clamped to the path)."""
        remaining = max(s, 0.0)
        for seg in self.segments:
            seg_len = seg.length()
            if remaining <= seg_len:
                return seg.point_at(remaining)
            remaining -= seg_len
        return self.destination()

    def transformed(self, transform: Similarity) -> "Path":
        """The path mapped through a similarity transform."""
        return Path(tuple(seg.transformed(transform) for seg in self.segments))

    def mirrored(self) -> "Path":
        """The path reflected across the x axis, segment by segment.

        Unlike :meth:`transformed` with a reflection similarity (which
        re-derives arc angles through ``atan2``), this reflects at the
        bit level: lengths are bit-identical, line segments are exact
        reflections, and arc angles deviate by at most one rounding
        (see :meth:`ArcSegment.mirrored`).
        """
        return Path(tuple(seg.mirrored() for seg in self.segments))
