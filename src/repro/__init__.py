"""repro - probabilistic asynchronous arbitrary pattern formation.

A complete reproduction of Bramas & Tixeuil's PODC 2016 brief announcement
(full version: "Asynchronous Pattern Formation without Chirality",
arXiv:1508.03714): a Look-Compute-Move mobile-robot simulator with FSYNC /
SSYNC / ASYNC adversarial schedulers, the paper's randomized
symmetry-breaking + deterministic pattern formation algorithm, the regular
set machinery it relies on, baselines, pattern libraries and analysis
tooling.

Quickstart::

    from repro import FormPattern, Simulation, patterns
    from repro.scheduler import AsyncScheduler

    pattern = patterns.regular_polygon(8)
    sim = Simulation.random(n=8, algorithm=FormPattern(pattern),
                            scheduler=AsyncScheduler(seed=2), seed=1)
    result = sim.run()
    assert result.pattern_formed
"""

__version__ = "1.0.0"

from . import (
    analysis,
    geometry,
    model,
    patterns,
    regular,
    scheduler,
    service,
    sim,
    store,
    viz,
)
from .algorithms import (
    Algorithm,
    FormPattern,
    GlobalFrameFormation,
    MultiplicityFormPattern,
    ScatterThenForm,
    Tuning,
    YamauchiYamashita,
)
from .geometry import Vec2
from .model import Configuration, Pattern
from .sim import Simulation, SimulationResult

__all__ = [
    "Algorithm",
    "Configuration",
    "FormPattern",
    "GlobalFrameFormation",
    "MultiplicityFormPattern",
    "Pattern",
    "ScatterThenForm",
    "Simulation",
    "SimulationResult",
    "Tuning",
    "Vec2",
    "YamauchiYamashita",
    "__version__",
    "analysis",
    "geometry",
    "model",
    "patterns",
    "regular",
    "scheduler",
    "service",
    "sim",
    "store",
    "viz",
]
