"""Small statistics helpers (no external dependencies on the hot path)."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for an empty sequence."""
    if not values:
        return float("nan")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def median(values: Sequence[float]) -> float:
    """Median; NaN for an empty sequence."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]).

    NaN values poison the result explicitly (NaN out), instead of the
    order-dependent garbage ``sorted`` would silently produce — NaN is
    incomparable, so its sort position depends on the input order.
    """
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    if any(math.isnan(v) for v in values):
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def binomial_ci(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a success probability.

    Raises:
        ValueError: on negative counts or ``successes > trials`` —
            inputs for which the interval would be silent nonsense
            (e.g. a "probability" outside [0, 1]).
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if successes < 0:
        raise ValueError(f"successes must be >= 0, got {successes}")
    if successes > trials:
        raise ValueError(
            f"successes ({successes}) cannot exceed trials ({trials})"
        )
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; NaN when empty."""
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
