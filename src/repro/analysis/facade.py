"""The unified batch entry point: ``run(spec, seeds, config)``.

Batch execution used to be spread over two entry points with sprawling
keyword lists (``run_batch`` over live factories, ``run_batch_parallel``
over specs).  The facade collapses them: a
:class:`~repro.analysis.scenarios.ScenarioSpec` says *what* to run, a
:class:`BatchConfig` says *how* (worker count, per-seed timeout, retry
budget, journal), and :func:`run` dispatches to the serial reference
loop or the fault-tolerant process pool.  Both old entry points survive
as thin deprecated shims over this facade, and both paths produce
bit-for-bit identical :class:`~repro.analysis.batch.RunRecord` lists
(pinned by the equivalence suite).

With an experiment store attached (``BatchConfig.store``), the facade
additionally becomes a cross-run cache: seeds whose records the store
already holds under this workload's canonical fingerprint are served
from disk (counted in ``BatchResult.store_hits``) and only the
remainder is simulated, each completed record written through to the
store as it commits.  With the store unset, behaviour is bit-identical
to pre-store builds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .. import hooks as _hooks
from .batch import BatchResult, RunRecord
from .journal import RunJournal
from .scenarios import ScenarioSpec

__all__ = ["BatchConfig", "run"]


@dataclass(frozen=True)
class BatchConfig:
    """How a batch executes — everything that is not the workload itself.

    Args:
        workers: process count (default: CPUs, capped at 8); ``1`` runs
            the serial reference loop in-process (no isolation: timeouts
            are soft-only and a fault that kills the process kills the
            batch).
        timeout: per-seed wall-clock budget in seconds.  The simulation
            gets it as a soft limit (``reason="wall_timeout"``); a hung
            worker is hard-killed shortly after and recorded as
            ``reason="timeout"``.
        retries: how many times a seed is retried after its worker died
            without reporting a result.
        backoff: initial delay before a retry, doubled per attempt.
        backoff_cap: upper bound on the retry delay.
        journal: path of the append-only JSONL run journal.
        resume: skip seeds already present in the journal (requires the
            journal to have been written by the same scenario).
        store: path of a persistent experiment store
            (:class:`repro.store.ExperimentStore`).  Seeds the store
            already holds for this workload are served from disk
            without executing; every newly completed record is written
            through.  Unlike the journal (one batch, one file), the
            store deduplicates across runs, scenarios and processes.
        on_record: deprecated — pass a sink via ``telemetry=`` instead
            (``hooks.FunctionSink(on_record=...)`` adapts a bare
            callable).  Still honored, with a one-shot
            :class:`DeprecationWarning`.
        on_frame: callback invoked with every
            :class:`~repro.telemetry.frames.TraceFrame` (one per
            applied scheduler action, across all seeds of the batch).
            Observe-only: enabling it never changes a record.
        telemetry: a sink object per the :mod:`repro.hooks` protocol —
            any subset of ``on_record(record)`` / ``on_frame(frame)``
            methods.  Composes with the callable keywords; whenever the
            resolved sink listens for frames *and* a store is attached,
            frames are additionally spooled into the store for replay
            (``GET /v1/runs/<fingerprint>/<seed>/replay``).
        mp_context: multiprocessing context override (default: fork
            where available).
        engine: execution engine — ``"scalar"`` (the bit-exact
            reference), ``"array"`` (the numpy-backed fast engine,
            tolerance-equivalent; see DESIGN.md), or ``None`` to
            follow the ``REPRO_ENGINE`` environment variable
            (defaulting to scalar).  Journal and store records of an
            array batch are namespaced under the workload fingerprint
            plus an ``-array`` suffix, so the scalar store/journal
            contents keep their bit-exactness contract.
    """

    workers: int | None = None
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    backoff_cap: float = 4.0
    journal: "str | os.PathLike | None" = None
    resume: bool = False
    store: "str | os.PathLike | None" = None
    on_record: "Callable[[RunRecord], None] | None" = field(
        default=None, compare=False
    )
    on_frame: "Callable[[Any], None] | None" = field(
        default=None, compare=False
    )
    telemetry: Any = field(default=None, compare=False)
    mp_context: Any = field(default=None, compare=False)
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.on_record is not None:
            _hooks.warn_once(
                "batchconfig-on-record",
                "BatchConfig(on_record=...) is deprecated; pass "
                "telemetry=repro.hooks.FunctionSink(on_record=...) (or any "
                "repro.hooks sink) instead",
                stacklevel=4,  # warn_once -> __post_init__ -> __init__ -> caller
            )

    def sink(self):
        """The resolved :mod:`repro.hooks` sink (or ``None``)."""
        return _hooks.as_sink(
            self.telemetry, on_record=self.on_record, on_frame=self.on_frame
        )

    def resolved_workers(self) -> int:
        if self.workers is None:
            return max(1, min(os.cpu_count() or 1, 8))
        return self.workers

    def resolved_engine(self) -> str:
        """The effective engine (explicit > ``REPRO_ENGINE`` > scalar)."""
        from ..accel import resolved_engine

        return resolved_engine(self.engine)

    def validate(self) -> None:
        if self.resolved_workers() < 1:
            raise ValueError("workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        self.resolved_engine()  # raises on an unknown engine name


def run(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    config: BatchConfig | None = None,
) -> BatchResult:
    """Run ``spec`` across ``seeds`` under ``config``.

    The single public batch entry point: every seed yields exactly one
    :class:`~repro.analysis.batch.RunRecord` (failures included), runs
    come back ordered by the input ``seeds`` order independent of
    completion order, and the records are bit-for-bit independent of the
    worker count.

    Returns:
        The aggregated :class:`~repro.analysis.batch.BatchResult`.
    """
    from . import parallel as _parallel  # late: parallel imports batch
    from ..accel import engine_scope

    config = config or BatchConfig()
    config.validate()
    sink = config.sink()
    record_cb = _hooks.record_hook(sink)
    frame_cb = _hooks.frame_hook(sink)
    engine = config.resolved_engine()
    if engine == "array":
        from ..fastsim import require_numpy

        require_numpy()
    # Array-engine records are tolerance-equivalent, not bit-identical,
    # to scalar ones — journal and store rows are namespaced apart so a
    # scalar batch can never be served an array record (or vice versa).
    workload_fp = spec.fingerprint() + ("-array" if engine == "array" else "")
    seed_list = [int(s) for s in seeds]
    if len(set(seed_list)) != len(seed_list):
        raise ValueError("duplicate seeds in batch")
    workers = config.resolved_workers()

    results: dict[int, RunRecord] = {}
    journal_obj = (
        RunJournal(config.journal) if config.journal is not None else None
    )
    if journal_obj is not None:
        if not journal_obj.is_empty():
            if not config.resume:
                raise ValueError(
                    f"journal {journal_obj.path} already exists; enable "
                    "resume to continue it or remove the file"
                )
            state = journal_obj.load()
            if state.meta is not None:
                recorded = state.meta.get("fingerprint")
                if recorded not in (None, workload_fp):
                    raise ValueError(
                        f"journal {journal_obj.path} was written by a "
                        f"different scenario (fingerprint {recorded}, "
                        f"expected {workload_fp})"
                    )
            wanted = set(seed_list)
            results.update(
                {s: r for s, r in state.records.items() if s in wanted}
            )
        else:
            journal_obj.start(spec.name, workload_fp, spec.to_dict())

    store_obj = None
    store_fingerprint = None
    store_hits = 0
    if config.store is not None:
        from ..store import ExperimentStore  # late: repro.store imports analysis

        store_obj = ExperimentStore(config.store)
        store_obj.register(spec)  # keep the scenario reachable in inventory
        store_fingerprint = workload_fp
        cached = store_obj.query(
            store_fingerprint,
            seeds=[s for s in seed_list if s not in results],
        )
        store_hits = len(cached)
        for seed in seed_list:
            if seed in cached:
                results[seed] = cached[seed]
                if record_cb is not None:
                    record_cb(cached[seed])

    pending = [s for s in seed_list if s not in results]
    store_misses = len(pending) if store_obj is not None else 0

    # Frame pipeline: only built when the sink listens for frames, so a
    # frame-less batch pays nothing per step.  With a store attached,
    # frames are additionally spooled for replay; both paths run in the
    # parent process only (workers stream frames through their result
    # pipe), mirroring the journal/store commit discipline.
    spool = None
    on_frame = frame_cb
    on_seed_restart = None
    if frame_cb is not None and store_obj is not None:
        from ..telemetry.spool import FrameSpool

        spool = FrameSpool(store_obj, workload_fp)
        on_seed_restart = spool.reset_seed

        def on_frame(frame, _spool=spool, _cb=frame_cb):
            _spool.add(frame)
            _cb(frame)

    def commit(record: RunRecord) -> None:
        results[record.seed] = record
        if spool is not None:
            spool.flush_seed(record.seed)
        if journal_obj is not None:
            journal_obj.append(record)
        if store_obj is not None:
            store_obj.put(store_fingerprint, record)
        if record_cb is not None:
            record_cb(record)

    # engine_scope exports REPRO_ENGINE for the duration of the batch so
    # pool workers (fork or spawn) inherit the engine choice through the
    # environment — the same transport REPRO_GEOMETRY_CACHE uses.
    with engine_scope(engine):
        if workers == 1:
            _parallel._run_serial(
                spec, pending, config.timeout, commit, on_frame=on_frame
            )
        else:
            _parallel._run_pool(
                spec,
                pending,
                workers,
                config.timeout,
                config.retries,
                config.backoff,
                config.backoff_cap,
                commit,
                config.mp_context or _parallel._default_context(),
                on_frame=on_frame,
                on_seed_restart=on_seed_restart,
            )
    if spool is not None:
        spool.flush_all()

    batch = BatchResult(spec.name)
    batch.runs = [results[s] for s in seed_list]
    batch.store_hits = store_hits
    batch.store_misses = store_misses
    return batch
