"""Invariant checkers pluggable into the simulation engine.

Each checker is a callable ``(simulation, action) -> None`` that raises
:class:`InvariantViolation` when a property the algorithm must maintain is
broken.  Used by the test suite (failure injection / safety tests) and
during debugging.
"""

from __future__ import annotations

from ..geometry import EPS, smallest_enclosing_circle
from ..scheduler.base import Action

# InvariantViolation lives in the engine now (the strict_invariants
# mode raises it from inside Moves); re-exported here because the
# checkers raise it and this was its historical import path.
from ..sim.engine import InvariantViolation, Simulation

__all__ = [
    "InvariantViolation",
    "delta_checker",
    "fairness_checker",
    "no_multiplicity_checker",
    "sec_radius_monitor",
]


def no_multiplicity_checker(allow_at_end: bool = False):
    """No two robots may ever share a location (multiplicity-free runs).

    Args:
        allow_at_end: permit multiplicities (for multiplicity-pattern
            runs, where stacking is the goal).
    """

    def check(sim: Simulation, action: Action) -> None:
        if allow_at_end:
            return
        pts = sim.points()
        for i, p in enumerate(pts):
            for q in pts[i + 1 :]:
                if p.approx_eq(q, 1e-9):
                    raise InvariantViolation(
                        f"multiplicity created at {p!r} "
                        f"(step {sim.step_count}, {action.kind.value} "
                        f"robot {action.robot_id})"
                    )

    return check


def delta_checker():
    """The engine must never end a move before min(delta, path length)."""

    def check(sim: Simulation, action: Action) -> None:
        from ..scheduler.base import ActionKind
        from ..sim.robot import Phase

        if action.kind is not ActionKind.MOVE:
            return
        robot = sim.robots[action.robot_id]
        if robot.phase is Phase.IDLE and robot.distance_travelled < 0:
            raise InvariantViolation("negative travel distance")

    return check


def sec_radius_monitor(tolerance: float = 0.5):
    """The enclosing circle should never collapse (robots gathering is
    unreachable for the paper's algorithm)."""

    def check(sim: Simulation, action: Action) -> None:
        sec = smallest_enclosing_circle(sim.points())
        if sec.radius < EPS:
            raise InvariantViolation("configuration collapsed to a point")

    return check


def fairness_checker(bound: int):
    """No robot may be starved longer than ``bound`` scheduler steps."""

    def check(sim: Simulation, action: Action) -> None:
        for robot in sim.robots:
            if sim.step_count - robot.last_action_step > bound:
                raise InvariantViolation(
                    f"robot {robot.robot_id} starved for more than "
                    f"{bound} steps"
                )

    return check
