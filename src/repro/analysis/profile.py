"""Profiling reports: per-phase timings plus cache-hit counters.

Built on two always-available substrates:

* :mod:`repro.profiling` — the process-global per-phase wall-clock
  accumulator the engine reports LOOK / COMPUTE / MOVE / terminal-probe
  durations into while enabled;
* :mod:`repro.geometry.memo` — the hit/miss counters of the hot-path
  geometry and terminal-probe caches.

:func:`profile_batch` runs a scenario batch under the profiler and
emits a :class:`ProfileRecord`; every record produced (by it or by
:func:`emit`) is also delivered to every sink registered with
:func:`add_sink` — any :mod:`repro.hooks` sink exposing
``on_profile(record)`` — so experiment harnesses can stream profiling
data through the same sink they stream run records and frames.  The
pre-consolidation callback registry (:func:`on_record` /
:func:`remove_on_record`) keeps working through an adapter with a
one-shot :class:`DeprecationWarning`.  ``python -m repro profile`` is
the CLI front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

from .. import hooks as _hooks
from ..geometry.memo import cache_stats, clear_caches, reset_cache_stats
from ..profiling import PROFILER, disable, enable, is_enabled
from .batch import format_table
from .scenarios import ScenarioSpec

__all__ = [
    "PROFILER",
    "ProfileRecord",
    "add_sink",
    "disable",
    "emit",
    "enable",
    "format_record",
    "is_enabled",
    "on_record",
    "profile_batch",
    "remove_on_record",
    "remove_sink",
]


@dataclass
class ProfileRecord:
    """One profiling observation: phase timings and cache counters."""

    label: str
    wall_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    caches: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "phase_calls": dict(self.phase_calls),
            "caches": [dict(c) for c in self.caches],
        }


_sinks: list = []
#: callback -> adapter sink, so ``remove_on_record`` keeps working for
#: callers that registered through the deprecated function form.
_legacy_sinks: dict = {}


def add_sink(sink) -> None:
    """Register a :mod:`repro.hooks` sink for emitted ProfileRecords.

    Only the sink's ``on_profile`` method is used here; the same sink
    object can simultaneously observe run records and frames through
    ``BatchConfig(telemetry=...)``.
    """
    _sinks.append(sink)


def remove_sink(sink) -> None:
    """Unregister a sink registered with :func:`add_sink`."""
    _sinks.remove(sink)


def on_record(callback: Callable[[ProfileRecord], None]) -> None:
    """Deprecated: use ``add_sink(hooks.FunctionSink(on_profile=...))``."""
    _hooks.warn_once(
        "profile-on-record",
        "repro.analysis.profile.on_record(cb) is deprecated; use "
        "add_sink(repro.hooks.FunctionSink(on_profile=cb))",
    )
    sink = _hooks.FunctionSink(on_profile=callback)
    _legacy_sinks[callback] = sink
    add_sink(sink)


def remove_on_record(callback: Callable[[ProfileRecord], None]) -> None:
    """Unregister a callback registered with :func:`on_record`."""
    remove_sink(_legacy_sinks.pop(callback))


def emit(label: str, wall_seconds: float) -> ProfileRecord:
    """Snapshot the profiler + cache counters into a record and fire sinks."""
    record = ProfileRecord(
        label=label,
        wall_seconds=wall_seconds,
        phase_seconds=dict(PROFILER.phase_seconds),
        phase_calls=dict(PROFILER.phase_calls),
        caches=[s.as_dict() for s in cache_stats().values()],
    )
    for sink in list(_sinks):
        hook = _hooks.profile_hook(sink)
        if hook is not None:
            hook(record)
    return record


def profile_batch(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    *,
    label: str | None = None,
    fresh_caches: bool = True,
    engine: str | None = None,
) -> tuple["object", ProfileRecord]:
    """Run ``spec`` serially under the profiler; return (batch, record).

    Serial on purpose: the profiler and the cache counters are
    process-global, so the run must happen in this process to be
    observable.  ``fresh_caches`` clears cache contents and counters
    first so the record describes exactly this batch.  ``engine``
    selects the execution engine as in :class:`BatchConfig`.
    """
    from .facade import BatchConfig, run

    if fresh_caches:
        clear_caches()
        reset_cache_stats()
    was_enabled = is_enabled()
    enable(reset=True)
    started = perf_counter()
    try:
        batch = run(spec, seeds, BatchConfig(workers=1, engine=engine))
    finally:
        if not was_enabled:
            disable()
    wall = perf_counter() - started
    return batch, emit(label or spec.name, wall)


def format_record(record: ProfileRecord) -> str:
    """Human-readable report: a phase table and a cache table."""
    phase_rows = [
        {
            "phase": phase,
            "calls": record.phase_calls.get(phase, 0),
            "seconds": round(seconds, 4),
            "share": f"{seconds / record.wall_seconds:.1%}"
            if record.wall_seconds > 0
            else "-",
        }
        for phase, seconds in sorted(
            record.phase_seconds.items(), key=lambda kv: -kv[1]
        )
    ]
    cache_rows = [
        {
            "cache": c["name"],
            "hits": c["hits"],
            "misses": c["misses"],
            "hit_rate": f"{c['hit_rate']:.1%}",
        }
        for c in sorted(record.caches, key=lambda c: -c["hits"])
        if c["hits"] or c["misses"]
    ]
    lines = [
        f"profile: {record.label}",
        f"wall-clock: {record.wall_seconds:.3f}s "
        f"(instrumented phases: {sum(record.phase_seconds.values()):.3f}s)",
        "",
        format_table(phase_rows) if phase_rows else "(no phase data)",
        "",
        format_table(cache_rows) if cache_rows else "(no cache activity)",
    ]
    return "\n".join(lines)
