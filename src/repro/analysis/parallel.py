"""Parallel, fault-tolerant batch execution.

``run_batch_parallel`` fans the seeds of one :class:`ScenarioSpec` out
to worker processes.  Each seed is executed by the *same* code path as
the serial reference runner (a one-seed :func:`run_batch` call inside
the worker), so for well-behaved scenarios the resulting
``RunRecord`` lists are bit-for-bit identical to serial execution —
independent of worker count and of seed submission order.  The
determinism/equivalence test suite pins this guarantee.

Robustness around each run:

* **timeout** — a per-seed wall-clock budget.  The simulation itself is
  given the budget as a soft limit (it stops cleanly with
  ``reason="wall_timeout"``); a hung worker that never reaches the run
  loop is hard-killed shortly after the budget expires and recorded as
  ``reason="timeout"``.
* **retry** — a worker that dies without reporting (OOM-kill, segfault)
  is retried with capped exponential backoff; after the retry budget the
  seed is recorded as ``reason="worker_died"``.
* **failure records** — an exception inside a run is captured in the
  worker and returned as a ``reason="error: ..."`` record.  One bad seed
  never crashes the batch: every seed always yields exactly one record.

With a journal attached, every completed record is appended to an
append-only JSONL file (:mod:`repro.analysis.journal`); a batch
restarted with ``resume=True`` skips journaled seeds.

``workers=1`` delegates to the serial :func:`run_batch` loop in-process
and is the reference implementation (no process isolation: timeouts are
soft-only and fault injection that kills the process kills the batch).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Sequence

from .batch import BatchResult, RunRecord, run_batch
from .journal import RunJournal
from .scenarios import ScenarioSpec

#: A hung worker is hard-killed at ``timeout * factor + grace`` so the
#: in-simulation soft limit (which yields a richer record) fires first.
_HARD_TIMEOUT_FACTOR = 1.25
_HARD_TIMEOUT_GRACE = 0.5

_POLL_INTERVAL = 0.25


def failure_record(seed: int, reason: str) -> RunRecord:
    """The record emitted when a seed produced no simulation result."""
    return RunRecord(
        seed=seed,
        formed=False,
        terminated=False,
        steps=0,
        cycles=0,
        epochs=0,
        random_bits=0,
        coin_flips=0,
        float_draws=0,
        distance=float("nan"),
        reason=reason,
    )


def run_seed(
    spec: ScenarioSpec, seed: int, wall_limit: float | None = None
) -> RunRecord:
    """Execute one seed of a scenario via the serial reference runner."""
    built = spec.build()
    batch = run_batch(
        built.name,
        built.algorithm_factory,
        built.scheduler_factory,
        built.initial_factory,
        [seed],
        frame_policy=built.frame_policy,
        max_steps=built.max_steps,
        delta=built.delta,
        wall_limit=wall_limit,
    )
    return batch.runs[0]


def _worker_entry(
    conn: Connection, spec: ScenarioSpec, seed: int, wall_limit: float | None
) -> None:
    """Worker process body: run one seed, report through the pipe."""
    try:
        record = run_seed(spec, seed, wall_limit=wall_limit)
        conn.send(("ok", record))
    except BaseException as exc:  # noqa: BLE001 — any failure becomes a record
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Task:
    seed: int
    attempt: int
    proc: "mp.process.BaseProcess"
    conn: Connection
    deadline: float | None


def _default_context() -> "mp.context.BaseContext":
    # fork keeps the parent's interpreter state (including the hash
    # seed), which is the cheapest start method that preserves the
    # determinism guarantee; fall back to the platform default elsewhere.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def run_batch_parallel(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    backoff_cap: float = 4.0,
    journal: "str | os.PathLike | None" = None,
    resume: bool = False,
    mp_context: "mp.context.BaseContext | None" = None,
) -> BatchResult:
    """Run ``spec`` across ``seeds`` on a pool of worker processes.

    Args:
        spec: the registry scenario to execute.
        seeds: the seeds to run; duplicates are rejected.
        workers: process count (default: CPUs, capped at 8); ``1`` runs
            the serial reference loop in-process.
        timeout: per-seed wall-clock budget in seconds.
        retries: how many times a seed is retried after its worker died
            without reporting a result.
        backoff: initial delay before a retry, doubled per attempt.
        backoff_cap: upper bound on the retry delay.
        journal: path of the append-only JSONL run journal.
        resume: skip seeds already present in the journal (requires the
            journal to have been written by the same scenario).
        mp_context: multiprocessing context override (default: fork
            where available).

    Returns:
        A :class:`BatchResult` whose ``runs`` are ordered by the input
        ``seeds`` order, independent of completion order.
    """
    seed_list = [int(s) for s in seeds]
    if len(set(seed_list)) != len(seed_list):
        raise ValueError("duplicate seeds in batch")
    if workers is None:
        workers = max(1, min(os.cpu_count() or 1, 8))
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")

    results: dict[int, RunRecord] = {}
    journal_obj = RunJournal(journal) if journal is not None else None
    if journal_obj is not None:
        if not journal_obj.is_empty():
            if not resume:
                raise ValueError(
                    f"journal {journal_obj.path} already exists; enable "
                    "resume to continue it or remove the file"
                )
            state = journal_obj.load()
            if state.meta is not None:
                recorded = state.meta.get("fingerprint")
                if recorded not in (None, spec.fingerprint()):
                    raise ValueError(
                        f"journal {journal_obj.path} was written by a "
                        f"different scenario (fingerprint {recorded}, "
                        f"expected {spec.fingerprint()})"
                    )
            wanted = set(seed_list)
            results.update(
                {s: r for s, r in state.records.items() if s in wanted}
            )
        else:
            journal_obj.start(spec.name, spec.fingerprint(), spec.to_dict())

    pending = [s for s in seed_list if s not in results]

    def commit(record: RunRecord) -> None:
        results[record.seed] = record
        if journal_obj is not None:
            journal_obj.append(record)

    if workers == 1:
        _run_serial(spec, pending, timeout, commit)
    else:
        _run_pool(
            spec,
            pending,
            workers,
            timeout,
            retries,
            backoff,
            backoff_cap,
            commit,
            mp_context or _default_context(),
        )

    batch = BatchResult(spec.name)
    batch.runs = [results[s] for s in seed_list]
    return batch


def _run_serial(spec, pending, timeout, commit) -> None:
    built = spec.build()
    run_batch(
        built.name,
        built.algorithm_factory,
        built.scheduler_factory,
        built.initial_factory,
        pending,
        frame_policy=built.frame_policy,
        max_steps=built.max_steps,
        delta=built.delta,
        wall_limit=timeout,
        on_record=commit,
    )


def _wait_timeout(
    now: float,
    running: "Sequence[_Task]",
    queue: "Sequence[tuple[int, int, float]]",
) -> float:
    """How long the harvest loop may block waiting for worker events.

    Bounded by the poll interval, the nearest hard-kill deadline and the
    nearest *future* retry wake-up.  Queue entries whose wake time has
    already passed are waiting for a worker slot, not for time to pass —
    a slot only frees via a pipe/sentinel event, which interrupts the
    wait anyway.  Including them would clamp the timeout to zero and
    spin the loop at 100% CPU until a worker finishes (the regression
    pinned by ``tests/analysis/test_busy_spin.py``).
    """
    wait_for = _POLL_INTERVAL
    deadlines = [t.deadline for t in running if t.deadline is not None]
    deadlines += [entry[2] for entry in queue if entry[2] > now]
    if deadlines:
        wait_for = min(wait_for, max(0.0, min(deadlines) - now))
    return wait_for


def _run_pool(
    spec, pending, workers, timeout, retries, backoff, backoff_cap, commit, ctx
) -> None:
    # (seed, attempt, not_before): retries re-enter the queue with a
    # capped-backoff earliest start time.
    queue: deque[tuple[int, int, float]] = deque(
        (seed, 0, 0.0) for seed in pending
    )
    running: list[_Task] = []

    def spawn(seed: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry,
            args=(send_conn, spec, seed, timeout),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        deadline = None
        if timeout is not None:
            deadline = (
                time.monotonic()
                + timeout * _HARD_TIMEOUT_FACTOR
                + _HARD_TIMEOUT_GRACE
            )
        running.append(_Task(seed, attempt, proc, recv_conn, deadline))

    def reap(task: _Task) -> None:
        task.proc.join()
        task.conn.close()

    while queue or running:
        now = time.monotonic()
        ready = [entry for entry in queue if entry[2] <= now]
        while ready and len(running) < workers:
            entry = ready.pop(0)
            queue.remove(entry)
            spawn(entry[0], entry[1])

        if not running:
            # Every queued task is backing off; sleep until the earliest.
            wake = min(entry[2] for entry in queue)
            time.sleep(max(0.0, wake - time.monotonic()))
            continue

        wait_for = _wait_timeout(now, running, queue)
        handles = [t.conn for t in running] + [t.proc.sentinel for t in running]
        _connection_wait(handles, timeout=wait_for)

        now = time.monotonic()
        still_running: list[_Task] = []
        for task in running:
            # Liveness must be sampled BEFORE the pipe is polled: a worker
            # can send its result and exit between the two checks, and
            # "no data yet" + "already dead" would misread a completed
            # run as a worker death.  Sampled in this order, a dead
            # process with an empty pipe is genuinely resultless — it
            # cannot send anything after exiting.
            alive = task.proc.is_alive()
            outcome = None
            if task.conn.poll():
                try:
                    outcome = task.conn.recv()
                except (EOFError, OSError):
                    outcome = None
            if outcome is not None:
                reap(task)
                kind, payload = outcome
                if kind == "ok":
                    commit(payload)
                else:
                    commit(failure_record(task.seed, f"error: {payload}"))
            elif not alive:
                reap(task)
                if task.attempt < retries:
                    delay = min(backoff * (2.0 ** task.attempt), backoff_cap)
                    queue.append((task.seed, task.attempt + 1, now + delay))
                else:
                    commit(failure_record(task.seed, "worker_died"))
            elif task.deadline is not None and now >= task.deadline:
                task.proc.terminate()
                reap(task)
                commit(failure_record(task.seed, "timeout"))
            else:
                still_running.append(task)
        running[:] = still_running
