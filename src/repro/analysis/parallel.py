"""Parallel, fault-tolerant batch execution.

``run_batch_parallel`` fans the seeds of one :class:`ScenarioSpec` out
to worker processes.  Each seed is executed by the *same* code path as
the serial reference runner (a one-seed :func:`run_batch` call inside
the worker), so for well-behaved scenarios the resulting
``RunRecord`` lists are bit-for-bit identical to serial execution —
independent of worker count and of seed submission order.  The
determinism/equivalence test suite pins this guarantee.

Robustness around each run:

* **timeout** — a per-seed wall-clock budget.  The simulation itself is
  given the budget as a soft limit (it stops cleanly with
  ``reason="wall_timeout"``); a hung worker that never reaches the run
  loop is hard-killed shortly after the budget expires and recorded as
  ``reason="timeout"``.
* **retry** — a worker that dies without reporting (OOM-kill, segfault)
  is retried with capped exponential backoff; after the retry budget the
  seed is recorded as ``reason="worker_died"``.
* **failure records** — an exception inside a run is captured in the
  worker and returned as a ``reason="error: ..."`` record.  One bad seed
  never crashes the batch: every seed always yields exactly one record.

With a journal attached, every completed record is appended to an
append-only JSONL file (:mod:`repro.analysis.journal`); a batch
restarted with ``resume=True`` skips journaled seeds.  Journal and
experiment-store write-through both happen in the facade's commit
callback, which only ever runs in the parent process — workers never
touch the journal file or the sqlite store, so neither needs to be
fork-safe across the pool.

``workers=1`` delegates to the serial :func:`run_batch` loop in-process
and is the reference implementation (no process isolation: timeouts are
soft-only and fault injection that kills the process kills the batch).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Sequence

from .batch import BatchResult, RunReason, RunRecord, _run_batch_factories
from .scenarios import ScenarioSpec

#: A hung worker is hard-killed at ``timeout * factor + grace`` so the
#: in-simulation soft limit (which yields a richer record) fires first.
_HARD_TIMEOUT_FACTOR = 1.25
_HARD_TIMEOUT_GRACE = 0.5

_POLL_INTERVAL = 0.25


def failure_record(
    seed: int, reason: "RunReason | str", detail: str | None = None
) -> RunRecord:
    """The record emitted when a seed produced no simulation result.

    ``reason`` is preferably a :class:`RunReason` member (internal
    callers pass the enum, so aggregation never depends on string
    spelling); free-form detail goes into the ``detail`` argument and is
    appended after a ``": "`` separator, keeping the stored string
    classifiable by :meth:`RunReason.classify`.
    """
    if isinstance(reason, RunReason):
        reason_str = reason.value
    else:
        reason_str = reason
    if detail:
        reason_str = f"{reason_str}: {detail}"
    return RunRecord(
        seed=seed,
        formed=False,
        terminated=False,
        steps=0,
        cycles=0,
        epochs=0,
        random_bits=0,
        coin_flips=0,
        float_draws=0,
        distance=float("nan"),
        reason=reason_str,
    )


def run_seed(
    spec: ScenarioSpec,
    seed: int,
    wall_limit: float | None = None,
    on_frame=None,
) -> RunRecord:
    """Execute one seed of a scenario via the serial reference runner."""
    built = spec.build()
    batch = _run_batch_factories(
        built.name,
        built.algorithm_factory,
        built.scheduler_factory,
        built.initial_factory,
        [seed],
        frame_policy=built.frame_policy,
        max_steps=built.max_steps,
        delta=built.delta,
        wall_limit=wall_limit,
        faults=built.faults,
        strict_invariants=built.strict_invariants,
        sensing=built.sensing,
        on_frame=on_frame,
    )
    return batch.runs[0]


def _worker_entry(
    conn: Connection,
    spec: ScenarioSpec,
    seed: int,
    wall_limit: float | None,
    stream_frames: bool = False,
) -> None:
    """Worker process body: run one seed, report through the pipe.

    With ``stream_frames`` every telemetry frame is sent as an
    incremental ``("frame", frame)`` message ahead of the terminal
    ``("ok", record)`` / ``("error", msg)``.  The parent's harvest loop
    drains the pipe every wake-up, so a producer outrunning the pipe
    buffer is throttled to the harvest cadence rather than deadlocked —
    and only when telemetry was requested at all.
    """
    on_frame = None
    if stream_frames:

        def on_frame(frame):
            conn.send(("frame", frame))

    try:
        record = run_seed(spec, seed, wall_limit=wall_limit, on_frame=on_frame)
        conn.send(("ok", record))
    except BaseException as exc:  # noqa: BLE001 — any failure becomes a record
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Task:
    seed: int
    attempt: int
    proc: "mp.process.BaseProcess"
    conn: Connection
    deadline: float | None


def _default_context() -> "mp.context.BaseContext":
    # fork keeps the parent's interpreter state (including the hash
    # seed), which is the cheapest start method that preserves the
    # determinism guarantee; fall back to the platform default elsewhere.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def run_batch_parallel(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    backoff_cap: float = 4.0,
    journal: "str | os.PathLike | None" = None,
    resume: bool = False,
    mp_context: "mp.context.BaseContext | None" = None,
) -> BatchResult:
    """Deprecated: use :func:`repro.analysis.run` with a
    :class:`~repro.analysis.facade.BatchConfig`.

    This shim forwards its keyword sprawl into a ``BatchConfig`` and
    dispatches through the facade; results are identical.
    """
    warnings.warn(
        "run_batch_parallel is deprecated; use repro.analysis.run(spec, "
        "seeds, BatchConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .facade import BatchConfig, run

    return run(
        spec,
        seeds,
        BatchConfig(
            workers=workers,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            backoff_cap=backoff_cap,
            journal=journal,
            resume=resume,
            mp_context=mp_context,
        ),
    )


def _run_serial(spec, pending, timeout, commit, on_frame=None) -> None:
    built = spec.build()
    _run_batch_factories(
        built.name,
        built.algorithm_factory,
        built.scheduler_factory,
        built.initial_factory,
        pending,
        frame_policy=built.frame_policy,
        max_steps=built.max_steps,
        delta=built.delta,
        wall_limit=timeout,
        faults=built.faults,
        strict_invariants=built.strict_invariants,
        sensing=built.sensing,
        on_record=commit,
        on_frame=on_frame,
    )


def _wait_timeout(
    now: float,
    running: "Sequence[_Task]",
    queue: "Sequence[tuple[int, int, float]]",
) -> float:
    """How long the harvest loop may block waiting for worker events.

    Bounded by the poll interval, the nearest hard-kill deadline and the
    nearest *future* retry wake-up.  Queue entries whose wake time has
    already passed are waiting for a worker slot, not for time to pass —
    a slot only frees via a pipe/sentinel event, which interrupts the
    wait anyway.  Including them would clamp the timeout to zero and
    spin the loop at 100% CPU until a worker finishes (the regression
    pinned by ``tests/analysis/test_busy_spin.py``).
    """
    wait_for = _POLL_INTERVAL
    deadlines = [t.deadline for t in running if t.deadline is not None]
    deadlines += [entry[2] for entry in queue if entry[2] > now]
    if deadlines:
        wait_for = min(wait_for, max(0.0, min(deadlines) - now))
    return wait_for


def _run_pool(
    spec,
    pending,
    workers,
    timeout,
    retries,
    backoff,
    backoff_cap,
    commit,
    ctx,
    on_frame=None,
    on_seed_restart=None,
) -> None:
    # (seed, attempt, not_before): retries re-enter the queue with a
    # capped-backoff earliest start time.
    queue: deque[tuple[int, int, float]] = deque(
        (seed, 0, 0.0) for seed in pending
    )
    running: list[_Task] = []

    def spawn(seed: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry,
            args=(send_conn, spec, seed, timeout, on_frame is not None),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        deadline = None
        if timeout is not None:
            deadline = (
                time.monotonic()
                + timeout * _HARD_TIMEOUT_FACTOR
                + _HARD_TIMEOUT_GRACE
            )
        running.append(_Task(seed, attempt, proc, recv_conn, deadline))

    def reap(task: _Task) -> None:
        task.proc.join()
        task.conn.close()

    while queue or running:
        now = time.monotonic()
        ready = [entry for entry in queue if entry[2] <= now]
        while ready and len(running) < workers:
            entry = ready.pop(0)
            queue.remove(entry)
            spawn(entry[0], entry[1])

        if not running:
            # Every queued task is backing off; sleep until the earliest.
            wake = min(entry[2] for entry in queue)
            time.sleep(max(0.0, wake - time.monotonic()))
            continue

        wait_for = _wait_timeout(now, running, queue)
        handles = [t.conn for t in running] + [t.proc.sentinel for t in running]
        _connection_wait(handles, timeout=wait_for)

        now = time.monotonic()
        still_running: list[_Task] = []
        for task in running:
            # Liveness must be sampled BEFORE the pipe is polled: a worker
            # can send its result and exit between the two checks, and
            # "no data yet" + "already dead" would misread a completed
            # run as a worker death.  Sampled in this order, a dead
            # process with an empty pipe is genuinely resultless — it
            # cannot send anything after exiting.
            alive = task.proc.is_alive()
            # Drain the pipe: with telemetry on, a worker interleaves
            # ("frame", ...) messages ahead of its terminal outcome —
            # forward each to the parent-side frame hook and keep
            # reading until the outcome or an empty pipe.
            outcome = None
            while task.conn.poll():
                try:
                    message = task.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "frame":
                    if on_frame is not None:
                        on_frame(message[1])
                    continue
                outcome = message
                break
            if outcome is not None:
                reap(task)
                kind, payload = outcome
                if kind == "ok":
                    commit(payload)
                else:
                    commit(failure_record(task.seed, RunReason.ERROR, payload))
            elif not alive:
                reap(task)
                if task.attempt < retries:
                    # The retry re-streams the seed's frames from step
                    # one; rewind any parent-side frame consumer so the
                    # spooled sequence stays exact.
                    if on_seed_restart is not None:
                        on_seed_restart(task.seed)
                    delay = min(backoff * (2.0 ** task.attempt), backoff_cap)
                    queue.append((task.seed, task.attempt + 1, now + delay))
                else:
                    commit(failure_record(task.seed, RunReason.WORKER_DIED))
            elif task.deadline is not None and now >= task.deadline:
                task.proc.terminate()
                reap(task)
                commit(failure_record(task.seed, RunReason.TIMEOUT))
            else:
                still_running.append(task)
        running[:] = still_running
