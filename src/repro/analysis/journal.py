"""Append-only JSONL run journal.

Every completed :class:`~repro.analysis.batch.RunRecord` of a batch is
appended to a journal file as one JSON line, flushed immediately, so a
batch killed mid-flight loses at most the line being written.  On
restart with ``resume=True`` the runner loads the journal, verifies the
scenario fingerprint recorded in the metadata line, and skips every seed
that already has a record — no seed runs twice, and the resumed
aggregates are bit-for-bit those of an uninterrupted batch (JSON float
round-trips are exact via ``repr``).

File layout::

    {"kind": "meta", "version": 1, "scenario": ..., "fingerprint": ..., "spec": {...}}
    {"kind": "run", "seed": 0, "formed": true, ..., "distance": 0.123, "reason": "terminal"}
    {"kind": "run", "seed": 1, ...}

Non-finite floats (a failure record's ``distance`` is NaN) are encoded
as the strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` so every
line stays standard JSON.  A truncated final line — the signature of a
killed process — is tolerated on load; corruption anywhere else raises.

The ``fingerprint`` in the metadata line is the canonical workload
digest (:func:`repro.analysis.scenarios.spec_fingerprint`) shared with
the experiment store and the job service; journals written before that
promotion carry byte-identical digests and keep loading unchanged.
This encoding is also the persistence format of
:class:`repro.store.ExperimentStore` row payloads, and
``python -m repro store import`` ingests journal files wholesale.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from .batch import RunRecord

JOURNAL_VERSION = 1

_FLOAT_FIELDS = frozenset(
    f.name for f in fields(RunRecord) if f.type in ("float", float)
)


def _encode_float(value: float) -> "float | str":
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_float(value) -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)


def encode_record(record: RunRecord) -> str:
    """One standard-JSON line for a run record."""
    payload: dict = {"kind": "run"}
    for key, value in asdict(record).items():
        if key in _FLOAT_FIELDS:
            value = _encode_float(float(value))
        payload[key] = value
    return json.dumps(payload, ensure_ascii=False, allow_nan=False)


def decode_record(payload: dict) -> RunRecord:
    """Rebuild a run record from a parsed journal line."""
    data = {k: v for k, v in payload.items() if k != "kind"}
    for key in _FLOAT_FIELDS:
        if key in data:
            data[key] = _decode_float(data[key])
    return RunRecord(**data)


@dataclass
class JournalState:
    """Everything a resumed batch needs from an existing journal."""

    meta: dict | None
    records: dict[int, RunRecord]
    truncated: bool = False

    def seeds(self) -> set[int]:
        return set(self.records)


class RunJournal:
    """Append-only JSONL journal of completed run records.

    The journal is opened per operation (never held open), so forked
    worker processes cannot inherit a dangling file handle; only the
    parent process ever writes.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def is_empty(self) -> bool:
        return not self.exists() or self.path.stat().st_size == 0

    # -- writing --------------------------------------------------------
    def start(self, scenario_name: str, fingerprint: str, spec: dict | None = None) -> None:
        """Write the metadata line that heads a fresh journal."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "kind": "meta",
            "version": JOURNAL_VERSION,
            "scenario": scenario_name,
            "fingerprint": fingerprint,
        }
        if spec is not None:
            meta["spec"] = spec
        self._append_line(json.dumps(meta, ensure_ascii=False, allow_nan=False))

    def append(self, record: RunRecord) -> None:
        """Append one completed run record, flushed immediately."""
        self._append_line(encode_record(record))

    def _append_line(self, line: str) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    # -- reading --------------------------------------------------------
    def load(self) -> JournalState:
        """Parse the journal; tolerate a truncated final line only."""
        state = JournalState(meta=None, records={})
        if not self.exists():
            return state
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    state.truncated = True
                    break
                raise ValueError(
                    f"corrupt journal line {index + 1} in {self.path}"
                ) from None
            kind = payload.get("kind")
            if kind == "meta":
                state.meta = payload
            elif kind == "run":
                record = decode_record(payload)
                state.records[record.seed] = record
            else:
                raise ValueError(
                    f"unknown journal line kind {kind!r} in {self.path}"
                )
        return state
