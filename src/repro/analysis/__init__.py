"""Analysis tooling: invariant checkers, batch runners, statistics.

The public batch surface is :func:`run` + :class:`BatchConfig` (the
facade), :class:`ScenarioSpec` (the workload), and
:class:`RunRecord` / :class:`BatchResult` (the outcomes); see the
"Public API" section of DESIGN.md.  ``run_batch`` and
``run_batch_parallel`` remain importable as deprecated shims.
"""

from .batch import BatchResult, RunReason, RunRecord, format_table, run_batch
from .checker import (
    InvariantViolation,
    delta_checker,
    fairness_checker,
    no_multiplicity_checker,
    sec_radius_monitor,
)
from .facade import BatchConfig, run
from .journal import RunJournal
from .parallel import failure_record, run_batch_parallel, run_seed
from .profile import (
    ProfileRecord,
    add_sink,
    format_record,
    on_record,  # deprecated: add_sink(hooks.FunctionSink(on_profile=...))
    profile_batch,
    remove_sink,
)
from .scenarios import (
    BuiltScenario,
    ScenarioSpec,
    build_scheduler,
    canonical_spec_json,
    normalize_faults,
    register_algorithm,
    register_frame_policy,
    register_initial,
    register_pattern,
    register_scheduler,
    spec_fingerprint,
)
from .stats import (
    binomial_ci,
    geometric_mean,
    mean,
    median,
    percentile,
    stddev,
    variance,
)

__all__ = [
    "BatchConfig",
    "BatchResult",
    "BuiltScenario",
    "InvariantViolation",
    "ProfileRecord",
    "RunJournal",
    "RunReason",
    "RunRecord",
    "ScenarioSpec",
    "add_sink",
    "binomial_ci",
    "build_scheduler",
    "canonical_spec_json",
    "format_record",
    "normalize_faults",
    "on_record",
    "profile_batch",
    "delta_checker",
    "failure_record",
    "fairness_checker",
    "format_table",
    "geometric_mean",
    "mean",
    "median",
    "no_multiplicity_checker",
    "percentile",
    "register_algorithm",
    "register_frame_policy",
    "register_initial",
    "register_pattern",
    "register_scheduler",
    "remove_sink",
    "run",
    "run_batch",
    "run_batch_parallel",
    "run_seed",
    "sec_radius_monitor",
    "spec_fingerprint",
    "stddev",
    "variance",
]
