"""Analysis tooling: invariant checkers, batch runners, statistics."""

from .batch import BatchResult, RunRecord, format_table, run_batch
from .checker import (
    InvariantViolation,
    delta_checker,
    fairness_checker,
    no_multiplicity_checker,
    sec_radius_monitor,
)
from .journal import RunJournal
from .parallel import failure_record, run_batch_parallel, run_seed
from .profile import ProfileRecord, format_record, on_record, profile_batch
from .scenarios import (
    BuiltScenario,
    ScenarioSpec,
    register_algorithm,
    register_frame_policy,
    register_initial,
    register_pattern,
    register_scheduler,
)
from .stats import (
    binomial_ci,
    geometric_mean,
    mean,
    median,
    percentile,
    stddev,
    variance,
)

__all__ = [
    "BatchResult",
    "BuiltScenario",
    "InvariantViolation",
    "ProfileRecord",
    "RunJournal",
    "RunRecord",
    "ScenarioSpec",
    "binomial_ci",
    "format_record",
    "on_record",
    "profile_batch",
    "delta_checker",
    "failure_record",
    "fairness_checker",
    "format_table",
    "geometric_mean",
    "mean",
    "median",
    "no_multiplicity_checker",
    "percentile",
    "register_algorithm",
    "register_frame_policy",
    "register_initial",
    "register_pattern",
    "register_scheduler",
    "run_batch",
    "run_batch_parallel",
    "run_seed",
    "sec_radius_monitor",
    "stddev",
    "variance",
]
