"""Analysis tooling: invariant checkers, batch runners, statistics."""

from .batch import BatchResult, RunRecord, format_table, run_batch
from .checker import (
    InvariantViolation,
    delta_checker,
    fairness_checker,
    no_multiplicity_checker,
    sec_radius_monitor,
)
from .stats import (
    binomial_ci,
    geometric_mean,
    mean,
    median,
    percentile,
    stddev,
    variance,
)

__all__ = [
    "BatchResult",
    "InvariantViolation",
    "RunRecord",
    "binomial_ci",
    "delta_checker",
    "fairness_checker",
    "format_table",
    "geometric_mean",
    "mean",
    "median",
    "no_multiplicity_checker",
    "percentile",
    "run_batch",
    "sec_radius_monitor",
    "stddev",
    "variance",
]
