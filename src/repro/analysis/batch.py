"""Batch experiment runner.

Runs many seeded simulations of one scenario, collects per-run outcomes,
and aggregates them into the success-rate / cost statistics the
experiment tables report.  This is the workhorse behind ``benchmarks/``
and EXPERIMENTS.md.

The public batch entry point is :func:`repro.analysis.run` (see
:mod:`repro.analysis.facade`); :func:`run_batch` remains as a deprecated
factory-based shim.
"""

from __future__ import annotations

import enum
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..model import Configuration, Pattern
from ..scheduler.base import Scheduler
from ..sim.engine import FramePolicy, Simulation, SimulationResult
from .stats import mean, median, percentile


class RunReason(enum.Enum):
    """Why a run ended — the enum behind ``RunRecord.reason``.

    Records carry the reason as a string (free-form detail is allowed
    after an ``error:`` prefix, and old journals stay readable), but
    every string classifies into exactly one of these members so journal
    resume and the E9 degradation tables can aggregate failure causes
    reliably.
    """

    TERMINAL = "terminal"
    MAX_STEPS = "max_steps"
    WALL_TIMEOUT = "wall_timeout"
    TIMEOUT = "timeout"
    WORKER_DIED = "worker_died"
    ALL_CRASHED = "all_crashed"
    INVARIANT = "invariant"
    ERROR = "error"
    OTHER = "other"

    @classmethod
    def classify(cls, reason: str) -> "RunReason":
        """Map a record's reason string (new or legacy) to its member."""
        head = reason.split(":", 1)[0].strip()
        try:
            return cls(head)
        except ValueError:
            return cls.OTHER


@dataclass
class RunRecord:
    """Outcome of one seeded run."""

    seed: int
    formed: bool
    terminated: bool
    steps: int
    cycles: int
    epochs: int
    random_bits: int
    coin_flips: int
    float_draws: int
    distance: float
    reason: str

    @property
    def reason_kind(self) -> RunReason:
        """The enum-backed classification of ``reason``."""
        return RunReason.classify(self.reason)


@dataclass
class BatchResult:
    """Aggregate over a batch of runs.

    ``store_hits`` / ``store_misses`` report the experiment-store
    read-through split when a batch ran with ``BatchConfig.store`` set
    (hits were served from disk, misses were simulated); both stay 0
    for store-less batches and do not participate in :meth:`row`.
    """

    name: str
    runs: list[RunRecord] = field(default_factory=list)
    store_hits: int = 0
    store_misses: int = 0

    def n_runs(self) -> int:
        return len(self.runs)

    def success_rate(self) -> float:
        """Fraction of runs that terminated with the pattern formed."""
        if not self.runs:
            return 0.0
        return sum(1 for r in self.runs if r.formed and r.terminated) / len(
            self.runs
        )

    def successes(self) -> list[RunRecord]:
        return [r for r in self.runs if r.formed and r.terminated]

    def stat(self, attr: str, agg: str = "mean") -> float:
        """Aggregate an attribute over *successful* runs."""
        values = [float(getattr(r, attr)) for r in self.successes()]
        if not values:
            return float("nan")
        if agg == "mean":
            return mean(values)
        if agg == "median":
            return median(values)
        if agg == "p90":
            return percentile(values, 90.0)
        if agg == "max":
            return max(values)
        if agg == "min":
            return min(values)
        raise ValueError(f"unknown aggregation {agg!r}")

    def bits_per_cycle(self) -> float:
        """Random bits per completed cycle, over successful runs."""
        succ = self.successes()
        total_bits = sum(r.random_bits for r in succ)
        total_cycles = sum(r.cycles for r in succ)
        return total_bits / total_cycles if total_cycles else 0.0

    def reason_counts(self, failures_only: bool = True) -> dict[str, int]:
        """Aggregate run outcomes by :class:`RunReason`.

        With ``failures_only`` (the default) only unsuccessful runs are
        counted — the failure-cause breakdown the degradation tables
        report.  Keys are ``RunReason.value`` strings, sorted by count.
        """
        counts: dict[str, int] = {}
        for r in self.runs:
            if failures_only and r.formed and r.terminated:
                continue
            key = r.reason_kind.value
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def row(self) -> dict:
        """One table row for the experiment reports."""
        return {
            "scenario": self.name,
            "runs": self.n_runs(),
            "success": round(self.success_rate(), 3),
            "cycles_mean": round(self.stat("cycles"), 1),
            "epochs_mean": round(self.stat("epochs"), 1),
            "bits_per_cycle": round(self.bits_per_cycle(), 4),
            "distance_mean": round(self.stat("distance"), 3),
        }


def _run_batch_factories(
    name: str,
    algorithm_factory: Callable[[], object],
    scheduler_factory: Callable[[int], Scheduler],
    initial_factory: Callable[[int], Configuration | Sequence],
    seeds: Sequence[int],
    *,
    pattern: Pattern | None = None,
    frame_policy: FramePolicy | None = None,
    max_steps: int = 300_000,
    delta: float = 1e-3,
    wall_limit: float | None = None,
    faults: dict | None = None,
    strict_invariants: bool = False,
    sensing: dict | None = None,
    on_record: Callable[[RunRecord], None] | None = None,
    on_frame: Callable[..., None] | None = None,
) -> BatchResult:
    """The serial reference loop every batch entry point bottoms out in.

    Duplicate seeds are rejected: a repeated seed reruns the identical
    simulation and would silently double-count its outcome in
    ``BatchResult.success_rate``.

    ``wall_limit`` bounds each run's wall-clock time (soft, checked
    inside the simulation loop); ``faults`` is the scenario's fault-plan
    spec dict (see :mod:`repro.faults`); ``on_record`` is invoked after
    every completed run — the run journal hooks in here; ``on_frame``
    is handed to each simulation as its per-step telemetry hook (see
    :class:`repro.sim.engine.Simulation`) and is observe-only.

    The execution engine is read from ``REPRO_ENGINE`` (exported by the
    facade's engine scope, inherited by pool workers): ``array`` swaps
    in :class:`repro.fastsim.engine.ArraySimulation` and activates the
    vectorized geometry kernels for the duration of the loop; anything
    else runs the scalar reference engine untouched.
    """
    seed_list = list(seeds)
    if len(set(seed_list)) != len(seed_list):
        raise ValueError("duplicate seeds in batch")
    sim_class, scope = _engine_setup()
    batch = BatchResult(name)
    with scope:
        for seed in seed_list:
            sim = sim_class(
                initial_factory(seed),
                algorithm_factory(),
                scheduler_factory(seed),
                seed=seed,
                pattern=pattern,
                frame_policy=frame_policy,
                max_steps=max_steps,
                delta=delta,
                wall_limit=wall_limit,
                faults=faults,
                strict_invariants=strict_invariants,
                sensing=sensing,
                on_frame=on_frame,
            )
            result = sim.run()
            record = _record(seed, result)
            batch.runs.append(record)
            if on_record is not None:
                on_record(record)
    return batch


def _engine_setup():
    """Simulation class + kernel scope for the environment's engine."""
    from ..accel import resolved_engine

    if resolved_engine() == "array":
        from ..fastsim.backend import kernel_scope
        from ..fastsim.engine import ArraySimulation

        return ArraySimulation, kernel_scope()
    return Simulation, nullcontext()


def run_batch(*args, **kwargs) -> BatchResult:
    """Deprecated factory-based batch runner.

    Use :func:`repro.analysis.run` with a
    :class:`~repro.analysis.scenarios.ScenarioSpec` and a
    :class:`~repro.analysis.facade.BatchConfig` instead; this shim only
    forwards to the internal serial loop.
    """
    warnings.warn(
        "run_batch is deprecated; use repro.analysis.run(spec, seeds, "
        "BatchConfig(workers=1)) with a ScenarioSpec",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_batch_factories(*args, **kwargs)


def _record(seed: int, result: SimulationResult) -> RunRecord:
    m = result.metrics
    return RunRecord(
        seed=seed,
        formed=result.pattern_formed,
        terminated=result.terminated,
        steps=result.steps,
        cycles=m.cycles,
        epochs=m.epochs,
        random_bits=m.random_bits,
        coin_flips=m.coin_flips,
        float_draws=m.float_draws,
        distance=m.distance,
        reason=result.reason,
    )


def format_table(rows: list[dict]) -> str:
    """Fixed-width text table from a list of uniform dicts."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows))
        for h in headers
    }
    lines = [
        "  ".join(str(h).ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for r in rows:
        lines.append("  ".join(str(r.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
