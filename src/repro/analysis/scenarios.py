"""Named, picklable scenario registry for batch execution.

``run_batch`` takes closure factories, which cannot cross a process
boundary.  A :class:`ScenarioSpec` instead describes a workload purely by
*names and parameters* — algorithm, scheduler, initial configuration,
target pattern, frame policy — so a worker process can rebuild the exact
same factories from plain data.  Specs are therefore picklable, JSON
serialisable (for the run journal's metadata line) and fingerprintable
(so a resumed batch can refuse a journal written by a different
scenario).

New workloads plug in through the ``register_*`` decorators without
touching the runner: registering a pattern family, an algorithm or an
adversary makes it immediately usable from ``run_batch_parallel``, the
CLI and the benchmarks.

The module also ships a deliberately faulty initial-configuration
builder (``faulty-random``) used by the fault-injection tests: it can
hang, crash the worker process, or raise for chosen seeds, and records
every execution attempt in a side-channel log file.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..geometry import Vec2
from ..model import Configuration, Pattern
from ..patterns import library as _patterns
from ..scheduler import (
    AsyncScheduler,
    FsyncScheduler,
    RoundRobinScheduler,
    Scheduler,
    SsyncScheduler,
)
from ..sim.engine import (
    FramePolicy,
    chirality_frames,
    global_frames,
    random_frames,
)

ComponentSpec = "tuple[str, dict] | str | None"

# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
PATTERN_BUILDERS: dict[str, Callable[..., Pattern]] = {}
ALGORITHM_BUILDERS: dict[str, Callable[..., object]] = {}
SCHEDULER_BUILDERS: dict[str, Callable[..., Scheduler]] = {}
INITIAL_BUILDERS: dict[str, Callable[..., "Configuration | Sequence[Vec2]"]] = {}
FRAME_POLICY_BUILDERS: dict[str, Callable[..., FramePolicy]] = {}


def _register(registry: dict, name: str):
    def decorator(fn):
        if name in registry:
            raise ValueError(f"{name!r} is already registered")
        registry[name] = fn
        return fn

    return decorator


def register_pattern(name: str):
    """Register a pattern builder ``fn(**params) -> Pattern``."""
    return _register(PATTERN_BUILDERS, name)


def register_algorithm(name: str):
    """Register an algorithm builder ``fn(pattern, **params) -> algorithm``."""
    return _register(ALGORITHM_BUILDERS, name)


def register_scheduler(name: str):
    """Register a scheduler builder ``fn(seed, **params) -> Scheduler``."""
    return _register(SCHEDULER_BUILDERS, name)


def register_initial(name: str):
    """Register an initial-configuration builder ``fn(seed, **params)``."""
    return _register(INITIAL_BUILDERS, name)


def register_frame_policy(name: str):
    """Register a frame-policy builder ``fn(**params) -> FramePolicy``."""
    return _register(FRAME_POLICY_BUILDERS, name)


# ----------------------------------------------------------------------
# patterns
# ----------------------------------------------------------------------
@register_pattern("polygon")
def _polygon(n: int, radius: float = 1.0, phase: float = 0.0) -> Pattern:
    return _patterns.regular_polygon(n, radius=radius, phase=phase)


@register_pattern("line")
def _line(n: int, jitter: float = 0.0, seed: int = 0) -> Pattern:
    return _patterns.line_pattern(n, jitter=jitter, seed=seed)


@register_pattern("grid")
def _grid(rows: int, cols: int, spacing: float = 1.0) -> Pattern:
    return _patterns.grid_pattern(rows, cols, spacing=spacing)


@register_pattern("star")
def _star(spikes: int, inner: float = 0.4, outer: float = 1.0) -> Pattern:
    return _patterns.star_pattern(spikes, inner=inner, outer=outer)


@register_pattern("rings")
def _rings(counts: Sequence[int], radii: Sequence[float] | None = None) -> Pattern:
    return _patterns.nested_rings(list(counts), list(radii) if radii else None)


@register_pattern("random")
def _random_pattern(n: int, seed: int = 0, min_separation: float = 0.1) -> Pattern:
    return _patterns.random_pattern(n, seed=seed, min_separation=min_separation)


@register_pattern("center-multiplicity")
def _center_multiplicity(n_outer: int, center_count: int) -> Pattern:
    return _patterns.center_multiplicity_pattern(n_outer, center_count)


@register_pattern("multiplicity")
def _multiplicity(base, doubled_indices: Sequence[int]) -> Pattern:
    kind, params = normalize_component(base)
    return _patterns.multiplicity_pattern(
        build_pattern((kind, params)), list(doubled_indices)
    )


# ----------------------------------------------------------------------
# algorithms
# ----------------------------------------------------------------------
@register_algorithm("form-pattern")
def _form_pattern(pattern: Pattern, tuning: dict | None = None):
    from ..algorithms import FormPattern, Tuning

    if tuning:
        return FormPattern(pattern, tuning=Tuning(**tuning))
    return FormPattern(pattern)


@register_algorithm("multiplicity-form-pattern")
def _multiplicity_form_pattern(pattern: Pattern):
    from ..algorithms import MultiplicityFormPattern

    return MultiplicityFormPattern(pattern)


@register_algorithm("yamauchi-yamashita")
def _yamauchi_yamashita(pattern: Pattern):
    from ..algorithms import YamauchiYamashita

    return YamauchiYamashita(pattern)


@register_algorithm("global-frame")
def _global_frame(pattern: Pattern):
    from ..algorithms import GlobalFrameFormation

    return GlobalFrameFormation(pattern)


@register_algorithm("scattering")
def _scattering(pattern: Pattern, bits: int = 3, step_fraction: float = 0.2):
    # Pattern-free: scattering only splits multiplicity stacks (the E11
    # swarm workload); the registry's pattern slot is ignored.
    from ..algorithms import Scattering

    return Scattering(bits=bits, step_fraction=step_fraction)


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
@register_scheduler("fsync")
def _fsync(seed: int) -> Scheduler:
    return FsyncScheduler()


@register_scheduler("round-robin")
def _round_robin(seed: int) -> Scheduler:
    return RoundRobinScheduler()


@register_scheduler("ssync")
def _ssync(seed: int, **params) -> Scheduler:
    return SsyncScheduler(seed=seed, **params)


@register_scheduler("async")
def _async(seed: int, **params) -> Scheduler:
    policy = params.pop("policy", None)
    if policy is not None:
        from ..faults.policies import build_policy

        # Accept "starve", ("greedy", {"samples": 4}), or ["greedy", {...}]
        # (the JSON round-trip of a journal spec turns tuples into lists).
        if isinstance(policy, list):
            policy = tuple(policy)
        params["policy"] = build_policy(policy)
    return AsyncScheduler(seed=seed, **params)


@register_scheduler("async-aggressive")
def _async_aggressive(seed: int) -> Scheduler:
    return AsyncScheduler.aggressive(seed)


# ----------------------------------------------------------------------
# initial configurations
# ----------------------------------------------------------------------
@register_initial("random")
def _random_initial(
    seed: int,
    n: int,
    spread: float = 1.0,
    min_separation: float = 0.05,
    seed_offset: int = 0,
) -> Configuration:
    return _patterns.random_configuration(
        n, seed=seed + seed_offset, spread=spread, min_separation=min_separation
    )


@register_initial("ngon")
def _ngon_initial(
    seed: int, n: int, radius: float = 1.0, phase: float = 0.1
) -> list[Vec2]:
    return [
        Vec2.polar(radius, phase + 2.0 * math.pi * i / n) for i in range(n)
    ]


@register_initial("swarm-grid")
def _swarm_grid_initial(
    seed: int, n: int, spacing: float = 1.0, jitter: float = 0.25
) -> Configuration:
    return _patterns.swarm_grid_configuration(
        n, spacing=spacing, jitter=jitter, seed=seed
    )


@register_initial("swarm-ring")
def _swarm_ring_initial(
    seed: int, n: int, spacing: float = 1.0
) -> Configuration:
    # Deterministic layout; the seed only enters through the scheduler
    # and the robots' coins.
    return _patterns.swarm_ring_configuration(n, spacing=spacing)


@register_initial("swarm-cluster")
def _swarm_cluster_initial(
    seed: int,
    n: int,
    clusters: int = 8,
    cluster_radius: float = 1.0,
    seed_offset: int = 0,
) -> Configuration:
    return _patterns.swarm_cluster_configuration(
        n, clusters=clusters, cluster_radius=cluster_radius, seed=seed + seed_offset
    )


@register_initial("stacked")
def _stacked_initial(
    seed: int, n: int, stack_size: int = 4, spacing: float = 1.0
) -> Configuration:
    return _patterns.stacked_configuration(
        n, stack_size=stack_size, spacing=spacing
    )


@register_initial("faulty-random")
def _faulty_random_initial(
    seed: int,
    n: int,
    hang_seeds: Sequence[int] = (),
    crash_seeds: Sequence[int] = (),
    error_seeds: Sequence[int] = (),
    attempts_log: str | None = None,
    hang_time: float = 3600.0,
) -> Configuration:
    """Fault-injection workload: hangs, kills the worker, or raises.

    ``attempts_log`` receives one appended line per execution attempt, so
    tests can count exactly how often a seed ran (retry accounting, and
    the resume guarantee that no journaled seed runs twice).
    """
    if attempts_log:
        with open(attempts_log, "a", encoding="utf-8") as fh:
            fh.write(f"{seed}\n")
    if seed in tuple(hang_seeds):
        time.sleep(hang_time)
    if seed in tuple(crash_seeds):
        # Simulate transient worker death (OOM-kill, segfault): exit
        # without unwinding, so no error message reaches the parent.
        os._exit(3)
    if seed in tuple(error_seeds):
        raise RuntimeError(f"injected fault for seed {seed}")
    return _patterns.random_configuration(n, seed=seed)


# ----------------------------------------------------------------------
# frame policies
# ----------------------------------------------------------------------
@register_frame_policy("random")
def _random_frames(**params) -> FramePolicy:
    return random_frames(**params)


@register_frame_policy("chirality")
def _chirality_frames(**params) -> FramePolicy:
    return chirality_frames(**params)


@register_frame_policy("global")
def _global_frames() -> FramePolicy:
    return global_frames()


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def canonical_spec_json(data: dict) -> str:
    """The canonical JSON encoding a spec dict is fingerprinted under.

    Key-sorted, tuple-tolerant (``default=list``) — byte-identical to
    what :meth:`ScenarioSpec.fingerprint` has always hashed, so digests
    recorded in old journal metadata lines stay valid.
    """
    return json.dumps(data, sort_keys=True, default=list)


def spec_fingerprint(data: dict) -> str:
    """Canonical workload fingerprint of a plain spec dict.

    The single fingerprint scheme shared by the run journal, the
    experiment store and the job service: the dict is normalised through
    :class:`ScenarioSpec` (so ``"async"`` and ``("async", {})`` hash the
    same) and digested from its canonical JSON form.
    """
    return ScenarioSpec.from_dict(data).fingerprint()


def _fingerprint_payload(data: dict) -> str:
    return hashlib.sha256(
        canonical_spec_json(data).encode("utf-8")
    ).hexdigest()[:16]


def normalize_component(spec) -> tuple[str, dict] | None:
    """Normalise ``None | "name" | (name, params)`` to ``(name, params)``."""
    if spec is None:
        return None
    if isinstance(spec, str):
        return (spec, {})
    kind, params = spec
    return (str(kind), dict(params or {}))


def build_pattern(spec) -> Pattern | None:
    """Build a pattern from a normalised component spec."""
    component = normalize_component(spec)
    if component is None:
        return None
    kind, params = component
    try:
        builder = PATTERN_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown pattern {kind!r}; known: {sorted(PATTERN_BUILDERS)}"
        ) from None
    return builder(**params)


def build_scheduler(spec, seed: int) -> Scheduler:
    """Build a live scheduler from a component spec and a seed.

    The single construction path for schedulers (the CLI's demo/election
    commands use it too, so no live-object registry is duplicated next
    to this one).
    """
    component = normalize_component(spec)
    if component is None:
        raise ValueError("a scheduler spec is required")
    kind, params = component
    return _lookup(SCHEDULER_BUILDERS, kind, "scheduler")(seed, **params)


def normalize_faults(spec) -> dict | None:
    """Validate and normalise a fault spec dict (``None``/``{}`` → ``None``)."""
    if spec is None:
        return None
    from ..faults.models import FaultPlan

    plan = FaultPlan.from_spec(spec)
    if plan is None:
        return None
    return plan.to_spec()


def normalize_sensing(spec) -> dict | None:
    """Validate and normalise a sensing spec (full visibility → ``None``)."""
    from ..spatial import normalize_sensing as _normalize

    return _normalize(spec)


@dataclass
class BuiltScenario:
    """The live factories the serial reference loop consumes."""

    name: str
    algorithm_factory: Callable[[], object]
    scheduler_factory: Callable[[int], Scheduler]
    initial_factory: Callable[[int], "Configuration | Sequence[Vec2]"]
    frame_policy: FramePolicy | None
    max_steps: int
    delta: float
    faults: dict | None = None
    strict_invariants: bool = False
    sensing: dict | None = None


@dataclass
class ScenarioSpec:
    """A batch workload described purely by names and plain parameters.

    Every component is either ``None``, a registered name, or a
    ``(name, params)`` pair.  The spec contains no live objects, so it
    pickles cleanly across process boundaries and serialises to JSON for
    the run journal's metadata line.
    """

    name: str
    algorithm: Any = "form-pattern"
    scheduler: Any = "async"
    initial: Any = ("random", {"n": 8})
    pattern: Any = None
    frame_policy: Any = None
    max_steps: int = 300_000
    delta: float = 1e-3
    #: Fault-plan spec dict (see :mod:`repro.faults.models`), e.g.
    #: ``{"crash": {"count": 1}, "sensor": {"sigma": 1e-6}}``.
    faults: Any = None
    #: Opt-in engine-level runtime verification (see
    #: ``Simulation(strict_invariants=...)``): a Move that creates a
    #: multiplicity point — or, with faults disabled, finishes under
    #: the δ floor — ends the run with ``reason="invariant: ..."``.
    strict_invariants: bool = False
    #: Sensing-model spec (see :mod:`repro.spatial.sensing`), e.g.
    #: ``{"kind": "limited", "radius": 2.0}``.  ``None`` (and ``"full"``)
    #: is the paper's unlimited-visibility model.
    sensing: Any = None

    def __post_init__(self) -> None:
        self.algorithm = normalize_component(self.algorithm)
        self.scheduler = normalize_component(self.scheduler)
        self.initial = normalize_component(self.initial)
        self.pattern = normalize_component(self.pattern)
        self.frame_policy = normalize_component(self.frame_policy)
        self.faults = normalize_faults(self.faults)
        self.strict_invariants = bool(self.strict_invariants)
        self.sensing = normalize_sensing(self.sensing)
        if self.algorithm is None or self.scheduler is None or self.initial is None:
            raise ValueError("algorithm, scheduler and initial are required")

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "algorithm": list(self.algorithm),
            "scheduler": list(self.scheduler),
            "initial": list(self.initial),
            "pattern": list(self.pattern) if self.pattern else None,
            "frame_policy": (
                list(self.frame_policy) if self.frame_policy else None
            ),
            "max_steps": self.max_steps,
            "delta": self.delta,
        }
        # Only present when set, so fingerprints of fault-free scenarios
        # (and resume against their pre-existing journals) are unchanged.
        if self.faults is not None:
            data["faults"] = self.faults
        # Same only-when-set rule: strict mode changes run outcomes, so
        # it participates in the fingerprint, but default specs keep
        # their historical digests.
        if self.strict_invariants:
            data["strict_invariants"] = True
        # Sensing follows the same convention: full visibility (the
        # historical model) is absent, so old fingerprints survive.
        if self.sensing is not None:
            data["sensing"] = self.sensing
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable digest identifying the workload.

        The canonical identity used everywhere a workload is keyed:
        journal resume, the experiment store's content addressing and
        the job service's deduplication all share this one scheme (see
        :func:`spec_fingerprint` for the dict-level entry point).
        """
        return _fingerprint_payload(self.to_dict())

    # -- construction ---------------------------------------------------
    def build(self) -> BuiltScenario:
        """Resolve names against the registries into live factories."""
        aname, aparams = self.algorithm
        sname, sparams = self.scheduler
        iname, iparams = self.initial
        pattern = build_pattern(self.pattern)
        algorithm_builder = _lookup(ALGORITHM_BUILDERS, aname, "algorithm")
        scheduler_builder = _lookup(SCHEDULER_BUILDERS, sname, "scheduler")
        initial_builder = _lookup(INITIAL_BUILDERS, iname, "initial")
        frame_policy = None
        if self.frame_policy is not None:
            fname, fparams = self.frame_policy
            frame_policy = _lookup(FRAME_POLICY_BUILDERS, fname, "frame policy")(
                **fparams
            )
        return BuiltScenario(
            name=self.name,
            algorithm_factory=lambda: algorithm_builder(pattern, **aparams),
            scheduler_factory=lambda seed: scheduler_builder(seed, **sparams),
            initial_factory=lambda seed: initial_builder(seed, **iparams),
            frame_policy=frame_policy,
            max_steps=self.max_steps,
            delta=self.delta,
            faults=self.faults,
            strict_invariants=self.strict_invariants,
            sensing=self.sensing,
        )


def _lookup(registry: dict, name: str, what: str):
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown {what} {name!r}; known: {sorted(registry)}"
        ) from None
