"""ASCII rendering of configurations and traces.

Terminal-friendly visualisation for the examples and for debugging: a
configuration is drawn on a character grid, optionally overlaying the
target pattern.  Robots render as ``o`` (or digits for multiplicities),
pattern points as ``+``, a robot sitting on a pattern point as ``*``, and
the center as ``.``.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geometry import Vec2, smallest_enclosing_circle
from ..model import Configuration, Pattern

#: The historical canvas, kept for small configurations.
_BASE_WIDTH, _BASE_HEIGHT = 61, 27
#: Auto-sizing caps: still a comfortable terminal screenful.
_MAX_WIDTH, _MAX_HEIGHT = 181, 61


def _auto_canvas(n: int, span_x: float, span_y: float) -> tuple[int, int]:
    """Canvas size for ``n`` points spanning ``span_x`` x ``span_y``.

    Up to a few dozen robots the historical 61x27 canvas is kept.
    Beyond that the canvas grows like ``sqrt(n)`` (roughly one column
    per robot of a uniform swarm's edge), with the height following the
    configuration's aspect ratio at the ~2:1 cell shape of terminal
    fonts, both capped at a screenful.
    """
    if n <= 64:
        return _BASE_WIDTH, _BASE_HEIGHT
    width = max(_BASE_WIDTH, min(_MAX_WIDTH, 2 * math.isqrt(n) + 1))
    aspect = span_y / span_x if span_x > 0.0 else 1.0
    height = int(round(width * min(max(aspect, 0.2), 2.0) * 0.45))
    return width, max(_BASE_HEIGHT, min(_MAX_HEIGHT, height))


def render(
    points: Sequence[Vec2],
    pattern: Pattern | None = None,
    width: int | None = None,
    height: int | None = None,
) -> str:
    """Render robot positions (and optionally the target) as ASCII art.

    ``width``/``height`` default to an automatic size: the classic 61x27
    canvas for small configurations, growing with ``sqrt(n)`` and the
    configuration's aspect ratio for swarms (see :func:`_auto_canvas`).
    """
    pts = list(points)
    overlay: list[Vec2] = []
    if pattern is not None:
        overlay = _aligned_overlay(pts, pattern)

    everything = pts + overlay
    min_x = min(p.x for p in everything)
    max_x = max(p.x for p in everything)
    min_y = min(p.y for p in everything)
    max_y = max(p.y for p in everything)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    if width is None or height is None:
        auto_w, auto_h = _auto_canvas(len(pts), span_x, span_y)
        width = auto_w if width is None else width
        height = auto_h if height is None else height

    def cell(p: Vec2) -> tuple[int, int]:
        col = int(round((p.x - min_x) / span_x * (width - 1)))
        row = int(round((max_y - p.y) / span_y * (height - 1)))
        return row, col

    grid = [[" "] * width for _ in range(height)]
    for p in overlay:
        r, c = cell(p)
        grid[r][c] = "+"
    counts: dict[tuple[int, int], int] = {}
    for p in pts:
        rc = cell(p)
        counts[rc] = counts.get(rc, 0) + 1
    for (r, c), count in counts.items():
        if grid[r][c] == "+":
            grid[r][c] = "*"
        elif count > 1:
            grid[r][c] = str(min(count, 9))
        else:
            grid[r][c] = "o"
    center = smallest_enclosing_circle(pts).center
    r, c = cell(center)
    if grid[r][c] == " ":
        grid[r][c] = "."
    return "\n".join("".join(row) for row in grid)


def _aligned_overlay(pts: list[Vec2], pattern: Pattern) -> list[Vec2]:
    """Pattern points placed over the configuration.

    When the configuration already forms the pattern (or nearly), align
    the overlay by the witnessing similarity so matches render as ``*``;
    otherwise just scale the pattern onto the current enclosing circle.
    """
    from ..geometry import find_similarity

    if len(pts) == len(pattern.points):
        transform = find_similarity(list(pattern.points), pts, 1e-4)
        if transform is not None:
            return [transform.apply(p) for p in pattern.points]
    sec = smallest_enclosing_circle(pts)
    return list(pattern.scaled_to(sec).points)


def render_configuration(
    config: Configuration, pattern: Pattern | None = None, **kwargs
) -> str:
    """Render a :class:`Configuration`."""
    return render(config.points(), pattern, **kwargs)


def render_trace(
    configurations: Sequence[Configuration],
    pattern: Pattern | None = None,
    frames: int = 6,
    **kwargs,
) -> str:
    """Render up to ``frames`` evenly spaced configurations of a run."""
    if not configurations:
        return "(empty trace)"
    count = min(frames, len(configurations))
    step = max(len(configurations) // count, 1)
    chosen = list(configurations)[::step][:count]
    blocks = []
    for i, config in enumerate(chosen):
        blocks.append(f"--- frame {i * step} ---")
        blocks.append(render_configuration(config, pattern, **kwargs))
    return "\n".join(blocks)
