"""Terminal visualisation."""

from .ascii import render, render_configuration, render_trace

__all__ = ["render", "render_configuration", "render_trace"]
