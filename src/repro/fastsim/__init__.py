"""The numpy-backed fast engine (``engine="array"``).

``repro.fastsim`` accelerates the batch pipeline two ways:

* **vectorized kernels** (:mod:`repro.fastsim.kernels`) — SEC by
  support-set refinement over an ``(n, 2)`` coordinate array, batched
  Weiszfeld iteration, and a vectorized polar-table / view-ordering
  pipeline, installed into :data:`repro.accel.KERNELS` for the duration
  of a batch;
* **canonical observation frames**
  (:class:`repro.fastsim.engine.ArraySimulation`) — every Look is
  evaluated in the identity frame (or its mirror image, preserving the
  drawn chirality), which the algorithms' similarity-invariance permits
  — exactly the transformation the scalar engine's terminal probe
  already performs.  Canonically-framed snapshots make the geometry
  memo keys collapse across robots, so one configuration is analysed
  about twice per step instead of once per robot.

The scalar engine stays the default and is bit-identical to its
pre-fastsim behaviour; the array engine is *tolerance-equivalent* (same
verdicts, steps and randomness accounting; float aggregates equal to
~1e-9 relative).  The differential harness in :mod:`repro.fastsim.diff`
and ``tests/fastsim/`` pins that contract over the scenario registry.

numpy is an optional dependency (``pip install .[fast]``): importing
:mod:`repro.fastsim` itself stays cheap and safe without it, and
:func:`require_numpy` raises a actionable error when the array engine
is requested on an interpreter that lacks it.
"""

from __future__ import annotations

__all__ = [
    "numpy_available",
    "require_numpy",
]


def numpy_available() -> bool:
    """Whether numpy can be imported (without importing it eagerly)."""
    try:
        import numpy  # noqa: F401

        return True
    except ImportError:
        return False


def require_numpy():
    """Import and return numpy, or raise with an installation hint."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise ImportError(
            "the array engine needs numpy; install it with "
            "'pip install repro[fast]' (or select engine='scalar')"
        ) from exc
    return numpy
