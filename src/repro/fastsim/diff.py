"""Differential equivalence harness: scalar engine vs array engine.

The array engine (:mod:`repro.fastsim.engine`) trades bit-identical
replay for speed: canonical observation frames and vectorized kernels
produce the *same decisions* through *different float round-off*.  The
contract it must honour — pinned here and exercised by
``tests/fastsim/`` — is:

* **exact** agreement on the run verdict: ``formed``, ``terminated``
  and the :class:`~repro.analysis.batch.RunReason` classification of
  ``reason``;
* **tolerant** agreement on every progress counter (steps, cycles,
  epochs, randomness accounting) and on the distance aggregate, within
  the documented bounds below.

Default tolerances.  Verdict-equal runs occasionally diverge in length
when a tolerance comparison lands within one rounding of its threshold
and the two engines schedule a handful of extra cycles apart (the
pinned example: ``random n=10`` seed 0, 10694 vs 10679 steps — 0.14%).
``COUNT_RTOL = 0.02`` plus a small absolute floor covers that class
with an order of magnitude of headroom while still failing loudly on
any real behavioural split (a wrong decision changes counts by whole
phases, not fractions of a percent).

Exclusions (documented, deliberate):

* ``sensor`` fault plans — noisy snapshots are resampled per Look, so
  the two engines observe genuinely different configurations and only
  the statistical behaviour is comparable, not per-seed counts;
* the ``faulty-random`` initial builder — it exists to kill worker
  processes and hang runs (fault-injection tests), not to simulate;
* per-seed counters and distance for ``scattering`` — the hop
  direction composes the robot's random bits with the drawn frame
  *orientation*, so the array engine's canonical frames walk
  different (equally valid) trajectories from the same bits; how many
  cycles the stacks take to separate is trajectory-dependent.  Only
  the verdict contract (formed / terminated / reason kind) is compared
  (:data:`VERDICT_ONLY_ALGORITHMS`).

Helpers here are import-safe without numpy; running the array side of
a differential obviously still needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis import BatchConfig, ScenarioSpec, run
from ..analysis.batch import RunRecord

__all__ = [
    "COUNT_ABS",
    "COUNT_FIELDS",
    "COUNT_RTOL",
    "DISTANCE_RTOL",
    "DiffReport",
    "VERDICT_ONLY_ALGORITHMS",
    "compare_records",
    "format_reports",
    "run_differential",
    "scenario_matrix",
]

#: Integer progress counters compared under the relative tolerance.
COUNT_FIELDS = (
    "steps",
    "cycles",
    "epochs",
    "random_bits",
    "coin_flips",
    "float_draws",
)

#: Relative tolerance on count fields (see module docstring).
COUNT_RTOL = 0.02
#: Absolute slack on count fields: short runs (tens of steps) may
#: differ by a couple of scheduler picks without any real divergence.
COUNT_ABS = 16
#: Relative tolerance on the travelled-distance aggregate.
DISTANCE_RTOL = 0.01
#: Algorithms whose trajectories are frame-orientation-dependent by
#: design (random bits choose a direction *in the drawn frame*): the
#: canonical-frame array engine draws different (equally valid) paths
#: from the same bits, so counters and distance are trajectory noise
#: and only the verdict contract is compared.
VERDICT_ONLY_ALGORITHMS = ("scattering",)


def compare_records(
    scalar: RunRecord,
    array: RunRecord,
    *,
    count_rtol: float = COUNT_RTOL,
    count_abs: int = COUNT_ABS,
    distance_rtol: float = DISTANCE_RTOL,
) -> list[str]:
    """Mismatches between one scalar and one array run of the same seed.

    Returns human-readable descriptions; an empty list means the records
    agree under the differential contract.
    """
    problems: list[str] = []
    if scalar.seed != array.seed:
        raise ValueError(
            f"comparing different seeds: {scalar.seed} vs {array.seed}"
        )
    if scalar.formed != array.formed:
        problems.append(
            f"formed: scalar={scalar.formed} array={array.formed}"
        )
    if scalar.terminated != array.terminated:
        problems.append(
            f"terminated: scalar={scalar.terminated} array={array.terminated}"
        )
    if scalar.reason_kind != array.reason_kind:
        problems.append(
            f"reason: scalar={scalar.reason!r} array={array.reason!r}"
        )
    for name in COUNT_FIELDS:
        s, a = getattr(scalar, name), getattr(array, name)
        if abs(s - a) > count_abs + count_rtol * max(abs(s), abs(a)):
            problems.append(f"{name}: scalar={s} array={a}")
    s, a = scalar.distance, array.distance
    if abs(s - a) > 1e-9 + distance_rtol * max(abs(s), abs(a)):
        problems.append(f"distance: scalar={s!r} array={a!r}")
    return problems


@dataclass
class DiffReport:
    """Outcome of one spec's differential run across its seeds."""

    spec: ScenarioSpec
    seeds: tuple[int, ...]
    #: seed -> mismatch descriptions (only seeds that disagreed).
    mismatches: dict[int, list[str]] = field(default_factory=dict)
    #: seed -> (scalar reason, array reason) for verdict context.
    reasons: dict[int, tuple[str, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def verdict_mismatches(self) -> dict[int, list[str]]:
        """The subset of mismatches that breach *exact* fields."""
        exact = ("formed:", "terminated:", "reason:")
        out: dict[int, list[str]] = {}
        for seed, problems in self.mismatches.items():
            hard = [p for p in problems if p.startswith(exact)]
            if hard:
                out[seed] = hard
        return out


def run_differential(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    *,
    count_rtol: float = COUNT_RTOL,
    count_abs: int = COUNT_ABS,
    distance_rtol: float = DISTANCE_RTOL,
) -> DiffReport:
    """Run ``spec`` through both engines and compare seed by seed.

    Both batches run serially (``workers=1``) so records are attributed
    deterministically; the facade already guarantees worker-count
    independence, so this loses nothing but wall-clock.
    """
    scalar = run(spec, seeds, BatchConfig(workers=1, engine="scalar"))
    array = run(spec, seeds, BatchConfig(workers=1, engine="array"))
    if spec.algorithm[0] in VERDICT_ONLY_ALGORITHMS:
        count_rtol = distance_rtol = float("inf")
    report = DiffReport(spec=spec, seeds=tuple(int(s) for s in seeds))
    for s_rec, a_rec in zip(scalar.runs, array.runs):
        problems = compare_records(
            s_rec,
            a_rec,
            count_rtol=count_rtol,
            count_abs=count_abs,
            distance_rtol=distance_rtol,
        )
        report.reasons[s_rec.seed] = (s_rec.reason, a_rec.reason)
        if problems:
            report.mismatches[s_rec.seed] = problems
    return report


def format_reports(reports: Sequence[DiffReport]) -> str:
    """One line per spec, with per-seed mismatch details on failures."""
    lines: list[str] = []
    for report in reports:
        status = "OK " if report.ok else "DIFF"
        lines.append(
            f"{status} {report.spec.name} seeds={list(report.seeds)}"
        )
        for seed, problems in sorted(report.mismatches.items()):
            for problem in problems:
                lines.append(f"     seed {seed}: {problem}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the registry-spanning matrix
# ----------------------------------------------------------------------
def scenario_matrix() -> list[ScenarioSpec]:
    """Differential scenarios spanning every registry dimension.

    Every registered algorithm, scheduler, frame policy and pattern
    family appears in at least one spec, and the crash / truncation
    fault models are each exercised (the sensor model and the
    ``faulty-random`` initial are excluded — see the module docstring).
    Sizes stay at n <= 10 so the full matrix runs in CI time.
    """
    specs = [
        # -- schedulers x the main algorithm -------------------------
        ScenarioSpec(
            name="diff-async-polygon7",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 7}),
            pattern=("polygon", {"n": 7}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-async-aggressive-random7",
            algorithm="form-pattern",
            scheduler="async-aggressive",
            initial=("random", {"n": 7}),
            pattern=("random", {"n": 7, "seed": 5}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-ssync-line7",
            algorithm="form-pattern",
            scheduler="ssync",
            initial=("random", {"n": 7}),
            pattern=("line", {"n": 7, "jitter": 0.2, "seed": 3}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-fsync-star8",
            algorithm="form-pattern",
            scheduler="fsync",
            initial=("random", {"n": 8}),
            pattern=("star", {"spikes": 4}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-round-robin-grid8",
            algorithm="form-pattern",
            scheduler="round-robin",
            initial=("random", {"n": 8}),
            pattern=("grid", {"rows": 2, "cols": 4}),
            max_steps=200_000,
        ),
        # -- frame policies ------------------------------------------
        ScenarioSpec(
            name="diff-chirality-rings9",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 9}),
            pattern=("rings", {"counts": [5, 4]}),
            frame_policy="chirality",
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-global-frames-polygon8",
            algorithm="global-frame",
            scheduler="async",
            initial=("random", {"n": 8}),
            pattern=("polygon", {"n": 8}),
            frame_policy="global",
            max_steps=200_000,
        ),
        # -- remaining algorithms ------------------------------------
        ScenarioSpec(
            name="diff-yamauchi-random8",
            algorithm="yamauchi-yamashita",
            scheduler="ssync",
            initial=("random", {"n": 8}),
            pattern=("polygon", {"n": 8}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-ngon-initial-polygon8",
            algorithm="form-pattern",
            scheduler="async",
            initial=("ngon", {"n": 8, "phase": 0.3}),
            pattern=("polygon", {"n": 8}),
            max_steps=5_000,
        ),
        ScenarioSpec(
            name="diff-multiplicity-center8",
            algorithm="multiplicity-form-pattern",
            scheduler="async",
            initial=("random", {"n": 8}),
            pattern=("center-multiplicity", {"n_outer": 6, "center_count": 2}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-multiplicity-doubled7",
            algorithm="multiplicity-form-pattern",
            scheduler="async",
            initial=("random", {"n": 7}),
            pattern=(
                "multiplicity",
                {"base": ("polygon", {"n": 6}), "doubled_indices": [0]},
            ),
            max_steps=200_000,
        ),
        # -- fault models (crash, truncation; sensor excluded) -------
        ScenarioSpec(
            name="diff-crash-polygon8",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 8}),
            pattern=("polygon", {"n": 8}),
            faults={"crash": {"count": 1, "window": [50, 200]}},
            max_steps=60_000,
        ),
        ScenarioSpec(
            name="diff-truncate-random8",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 8}),
            pattern=("random", {"n": 8, "seed": 4}),
            faults={"truncate": {"mode": "random"}},
            max_steps=200_000,
        ),
        # -- scattering + the large-swarm initials (small n: the
        #    layouts are what's under test, not the swarm scale) ------
        ScenarioSpec(
            name="diff-scattering-stacked8",
            algorithm=("scattering", {"bits": 2}),
            scheduler="fsync",
            initial=("stacked", {"n": 8, "stack_size": 4}),
            pattern=("polygon", {"n": 8}),
            max_steps=10_000,
        ),
        ScenarioSpec(
            name="diff-swarm-grid9",
            algorithm="form-pattern",
            scheduler="async",
            initial=("swarm-grid", {"n": 9, "jitter": 0.25}),
            pattern=("polygon", {"n": 9}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-swarm-ring9",
            algorithm="form-pattern",
            scheduler="async",
            initial=("swarm-ring", {"n": 9}),
            pattern=("rings", {"counts": [5, 4]}),
            max_steps=200_000,
        ),
        ScenarioSpec(
            name="diff-swarm-cluster9",
            algorithm="form-pattern",
            scheduler="async",
            initial=("swarm-cluster", {"n": 9, "clusters": 3}),
            pattern=("random", {"n": 9, "seed": 8}),
            max_steps=200_000,
        ),
        # -- 10-robot stress (the documented drift example) ----------
        ScenarioSpec(
            name="diff-async-random10",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 10}),
            pattern=("random", {"n": 10, "seed": 6}),
            max_steps=400_000,
        ),
    ]
    return specs
