"""numpy kernels for the geometry hot paths (the array engine's core).

Each kernel is a drop-in replacement for one scalar primitive, installed
into :data:`repro.accel.KERNELS` by :mod:`repro.fastsim.backend` for the
duration of an array-engine batch:

* :func:`sec_array` — smallest enclosing circle by vectorized
  support-set refinement: the O(n) farthest-point scans run on ``(n,)``
  coordinate arrays, the O(1) support subproblem (at most four points)
  reuses the scalar circle constructors bit-for-bit.
* :func:`weber_array` — Weiszfeld iteration with Vardi-Zhang
  correction over an ``(n, 2)`` array (small inputs delegate to the
  scalar solve, which is faster below ``WEBER_ARRAY_MIN_N`` because a
  numpy call costs more than a seven-element Python loop), memoised per
  bit-exact input.
* :func:`view_order_array` — the polar tables of *all* robots at once:
  one ``(R, m)`` angle/ratio grid per orientation, a single flattened
  ``lexsort`` replacing the per-robot comparator sorts, a vectorized
  tolerant-order verification mirroring the scalar exact-sort fast
  path (ambiguous rows fall back to the scalar comparator sort), and
  the same final ``compare_views`` ordering.  Memoised per
  (points, center); inputs below ``VIEW_ORDER_ARRAY_MIN_N`` delegate
  to the scalar construction, which wins at small sizes.
* :func:`find_similarity_array` — a memoising wrapper over the scalar
  candidate scan (the early-exit greedy matcher outran every
  vectorized variant at swarm sizes; the canonical-frame memo is the
  entire win).  Memoised per (a, b, eps).
* :func:`find_regular_array` / :func:`find_shifted_regular_array` —
  memoising wrappers over the scalar detectors (their inner geometry —
  Weber solves, view orders, SECs — dispatches back into the kernels
  above).

The memos exist because the array engine observes through canonical
frames (:mod:`repro.fastsim.engine`): every robot of one configuration
sees bit-identical snapshot coordinates per chirality, so per-robot
recomputation collapses into cache hits.  Under the scalar engine's
random frames the same caches would be nearly useless (measured hit
rates under 10%, which is why the scalar engine deliberately does not
memoise these functions).

All memos honour the global cache switch (``REPRO_GEOMETRY_CACHE``) and
are dropped by :func:`repro.geometry.memo.clear_caches`.
"""

from __future__ import annotations

import math
from functools import cmp_to_key
from typing import Sequence

import numpy as np

from ..geometry.circle import Circle, circle_from_three, circle_from_two
from ..geometry.memo import Memo, points_key
from ..geometry.point import Vec2
from ..geometry.sec import _welzl
from ..geometry.similarity import _find_similarity_scalar, _NO_SIMILARITY
from ..geometry.tolerance import EPS
from ..geometry.weber import _weiszfeld_solve
from ..model import views as _views
from ..model.views import VIEW_EPS, LocalView, compare_views
from ..regular.regular_set import _find_regular_impl
from ..regular.shifted import _find_shifted_regular_impl

__all__ = [
    "VIEW_ORDER_ARRAY_MIN_N",
    "WEBER_ARRAY_MIN_N",
    "find_regular_array",
    "find_shifted_regular_array",
    "find_similarity_array",
    "polar_arrays",
    "sec_array",
    "view_order_array",
    "weber_array",
    "weiszfeld_array",
]

_TWO_PI = 2.0 * math.pi

_WEBER_MEMO = Memo("fastsim.weber")
_VIEW_ORDER_MEMO = Memo("fastsim.view_order")
_SIMILARITY_MEMO = Memo("fastsim.similarity")
_REGULAR_MEMO = Memo("fastsim.regular")
_SHIFTED_MEMO = Memo("fastsim.shifted")


def _coords_array(points: Sequence[Vec2]) -> np.ndarray:
    """``(n, 2)`` float64 array of a point sequence."""
    n = len(points)
    out = np.empty((n, 2), dtype=np.float64)
    for i, p in enumerate(points):
        out[i, 0] = p.x
        out[i, 1] = p.y
    return out


# ----------------------------------------------------------------------
# smallest enclosing circle
# ----------------------------------------------------------------------
#: Below this size scalar Welzl wins outright *and* is required for
#: bit-identical SEC circles (see :func:`sec_array`).
SEC_ARRAY_MIN_N = 48


def _contains_all(circle: Circle, pts: Sequence[Vec2]) -> bool:
    bound = circle.radius + EPS
    bound_sq = bound * bound
    cx, cy = circle.center.x, circle.center.y
    for p in pts:
        dx, dy = cx - p.x, cy - p.y
        if dx * dx + dy * dy > bound_sq:
            return False
    return True


def _min_circle_of(cands: list[Vec2]) -> "tuple[Circle, list[Vec2]] | None":
    """Smallest enclosing circle of at most four points, brute force.

    Tries every 2-point (diameter) and 3-point (circumcircle) candidate,
    keeps the smallest one that EPS-contains all points — the same
    tolerant containment predicate as the scalar Welzl loops, and the
    same :func:`circle_from_two` / :func:`circle_from_three`
    constructors, so when the refinement settles on the same support set
    as Welzl the resulting circle is bit-identical.
    """
    best: "tuple[Circle, list[Vec2]] | None" = None
    k = len(cands)
    for i in range(k):
        for j in range(i + 1, k):
            c = circle_from_two(cands[i], cands[j])
            if _contains_all(c, cands) and (
                best is None or c.radius < best[0].radius
            ):
                best = (c, [cands[i], cands[j]])
    for i in range(k):
        for j in range(i + 1, k):
            for l in range(j + 1, k):
                c = circle_from_three(cands[i], cands[j], cands[l])
                if (
                    c is not None
                    and _contains_all(c, cands)
                    and (best is None or c.radius < best[0].radius)
                ):
                    best = (c, [cands[i], cands[j], cands[l]])
    return best


def sec_array(points: Sequence[Vec2]) -> Circle:
    """Smallest enclosing circle by vectorized support-set refinement.

    Start from the diametral circle of a farthest-point pair; while some
    point escapes the current circle (found by one vectorized distance
    scan), re-solve the at-most-four-point subproblem of the current
    support set plus the escapee.  The radius grows strictly each round,
    so the loop terminates; a bounded round budget with a scalar-Welzl
    fallback guards degenerate (massively cocircular) inputs.

    The caller (:func:`repro.geometry.smallest_enclosing_circle`) owns
    the memo, exactly as for the scalar body.

    Below :data:`SEC_ARRAY_MIN_N` points the scalar Welzl solver runs
    instead.  That is both the faster choice (numpy setup dominates at
    robot-sized inputs) and the stricter one: the refinement may settle
    on a different — equally valid — support subset of a cocircular
    tie than Welzl does, and the last-bit center drift between the two
    circle constructions is observable through exact tie-breaks
    downstream.  Keeping simulation-sized inputs on the scalar path
    makes the array engine's SEC bit-identical where step-count
    equivalence is asserted; the vectorized path serves large
    analysis-scale inputs, where the tolerance contract applies.
    """
    n = len(points)
    if n < SEC_ARRAY_MIN_N:
        return _welzl(points)
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=n)
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=n)
    dx0, dy0 = xs - xs.mean(), ys - ys.mean()
    i0 = int(np.argmax(dx0 * dx0 + dy0 * dy0))
    dx1, dy1 = xs - xs[i0], ys - ys[i0]
    i1 = int(np.argmax(dx1 * dx1 + dy1 * dy1))
    if i1 == i0:  # all points coincide
        return Circle(points[i0], 0.0)
    support = [points[i0], points[i1]]
    circle = circle_from_two(points[i0], points[i1])
    for _ in range(max(32, 4 * n)):
        cx, cy = circle.center.x, circle.center.y
        bound = circle.radius + EPS
        ddx, ddy = xs - cx, ys - cy
        d2 = ddx * ddx + ddy * ddy
        far = int(np.argmax(d2))
        if d2[far] <= bound * bound:
            return circle
        p = points[far]
        cands = [q for q in support if q is not p] + [p]
        picked = _min_circle_of(cands)
        if picked is None or picked[0].radius <= circle.radius:
            break  # no strict progress: bail to the exact solver
        circle, support = picked
    return _welzl(points)


# ----------------------------------------------------------------------
# Weber point
# ----------------------------------------------------------------------
#: Below this size the scalar Weiszfeld loop beats the numpy one (the
#: per-iteration numpy dispatch overhead exceeds a short Python loop).
WEBER_ARRAY_MIN_N = 24


def weiszfeld_array(
    coords: np.ndarray, tol: float = 1e-12, max_iter: int = 10_000
) -> tuple[float, float]:
    """Damped Weiszfeld iteration over an ``(n, 2)`` coordinate array.

    Same iteration as the scalar solve — plain Weiszfeld step with the
    Vardi-Zhang correction when the iterate lands on a data point, and
    convergence on the squared step length — with the per-point loop
    vectorized.  The summation order differs from the scalar engine
    (pairwise numpy reduction vs sequential Python adds), so results
    agree to solver tolerance, not bit-for-bit.
    """
    y = coords.mean(axis=0)
    tol_sq = tol * tol
    for _ in range(max_iter):
        diff = coords - y
        d = np.hypot(diff[:, 0], diff[:, 1])
        mask = d >= 1e-14
        coincident = not bool(mask.all())
        w = np.zeros_like(d)
        np.divide(1.0, d, out=w, where=mask)
        denom = float(w.sum())
        if denom == 0.0:
            ny = y
        else:
            num = (coords * w[:, None]).sum(axis=0)
            t = num / denom
            if not coincident:
                ny = t
            else:
                r = math.hypot(
                    float(num[0]) - y[0] * denom, float(num[1]) - y[1] * denom
                )
                if r < 1e-14:
                    ny = y
                else:
                    step = min(1.0, 1.0 / r)
                    ny = y + step * (t - y)
        delta = ny - y
        done = float(delta[0]) ** 2 + float(delta[1]) ** 2 <= tol_sq
        y = ny
        if done:
            break
    return float(y[0]), float(y[1])


def weber_array(
    points: Sequence[Vec2], tol: float = 1e-12, max_iter: int = 10_000
) -> Vec2:
    """Geometric median: memoised, vectorized above ``WEBER_ARRAY_MIN_N``.

    The memo is consulted twice: under the direct key, then under the
    key of the x-axis reflection of the input.  Weiszfeld iteration is
    *exactly* flip-covariant — distances and the denominator are even in
    the sign of y, the coordinate sums odd, every branch tests an even
    quantity, and floating-point negation is exact — so the median of
    the mirrored points is the bit-exact mirror of the cached one.  The
    array engine evaluates every configuration through both canonical
    chiralities, which makes the second chirality's solve a guaranteed
    mirror hit.
    """
    if len(points) <= 2:
        return _weiszfeld_solve(points, tol, max_iter)
    if _WEBER_MEMO.active():
        key = (points_key(points), tol, max_iter)
        hit, cached = _WEBER_MEMO.lookup(key)
        if hit:
            return cached
        mirror_key = (
            points_key(tuple(Vec2(p.x, -p.y) for p in points)),
            tol,
            max_iter,
        )
        hit, cached = _WEBER_MEMO.lookup(mirror_key)
        if hit:
            result = Vec2(cached.x, -cached.y)
            _WEBER_MEMO.store(key, result)
            return result
    else:
        key = None
    if len(points) < WEBER_ARRAY_MIN_N:
        result = _weiszfeld_solve(points, tol, max_iter)
    else:
        yx, yy = weiszfeld_array(_coords_array(points), tol, max_iter)
        result = Vec2(yx, yy)
    if key is not None:
        _WEBER_MEMO.store(key, result)
    return result


# ----------------------------------------------------------------------
# polar tables and the view order
# ----------------------------------------------------------------------
def polar_arrays(
    coords: np.ndarray, cx: float, cy: float, eps: float = VIEW_EPS
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched polar table of an ``(m, 2)`` coordinate array.

    Returns ``(at_center, theta, dist)``: the per-row center-coincidence
    mask (the scalar engine's per-coordinate ``approx_eq``), direction
    angles normalised into [0, 2*pi) exactly as
    :func:`repro.geometry.angles.direction_angle`, and distances from
    the center.  Rows flagged ``at_center`` carry zeros.
    """
    dx = coords[:, 0] - cx
    dy = coords[:, 1] - cy
    at_center = (np.abs(dx) <= eps) & (np.abs(dy) <= eps)
    theta = np.fmod(np.arctan2(dy, dx), _TWO_PI)
    theta[theta < 0.0] += _TWO_PI
    theta[theta >= _TWO_PI] -= _TWO_PI
    dist = np.hypot(dx, dy)
    theta[at_center] = 0.0
    dist[at_center] = 0.0
    return at_center, theta, dist


def _sorted_rows(
    angle: np.ndarray, ratio: np.ndarray, mult: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-row exact sort by (angle, ratio, mult) via one flat lexsort.

    Returns the sorted grids plus a per-row "ambiguous" flag mirroring
    the scalar fast path's verification: a row is ambiguous when some
    adjacent pair is out of strict tolerant order, or tolerant-equal
    without being identical — exactly the cases where the scalar
    comparator sort could order differently than the exact sort.
    """
    r, m = angle.shape
    rows = np.repeat(np.arange(r), m)
    mult_grid = np.tile(mult, r)
    order = np.lexsort((mult_grid, ratio.ravel(), angle.ravel(), rows))
    sa = angle.ravel()[order].reshape(r, m)
    sr = ratio.ravel()[order].reshape(r, m)
    sm = mult_grid[order].reshape(r, m)

    if m < 2:
        return sa, sr, sm, np.zeros(r, dtype=bool)
    au, av = sa[:, :-1], sa[:, 1:]
    ru, rv = sr[:, :-1], sr[:, 1:]
    mu, mv = sm[:, :-1], sm[:, 1:]
    close_a = np.abs(au - av) <= VIEW_EPS
    close_r = np.abs(ru - rv) <= VIEW_EPS
    # Exact sort already guarantees (au, ru, mu) <= (av, rv, mv)
    # lexicographically; a violation of the *tolerant* order needs the
    # coarser comparator to look past an exactly-smaller angle (or
    # ratio) and find a larger later component.
    bad = (close_a & ~close_r & (ru > rv)) | (close_a & close_r & (mu > mv))
    tie = close_a & close_r & (mu == mv) & ((au != av) | (ru != rv))
    return sa, sr, sm, np.any(bad | tie, axis=1)


#: Below this many points the scalar per-owner construction beats the
#: batched lexsort (measured cold crossover: 170µs vs 280µs at n=7,
#: 478µs vs 527µs at n=12, 682µs vs 427µs at n=14 — numpy call overhead
#: dominates small tables).  The kernel still memoises either way.
VIEW_ORDER_ARRAY_MIN_N = 13


def view_order_array(
    points: Sequence[Vec2], center: Vec2
) -> list[tuple[Vec2, LocalView]]:
    """All robots with their views, sorted by decreasing view.

    Semantics of :func:`repro.model.views.view_order`, computed for all
    owners at once, memoised per bit-exact (points, center).  Small
    inputs delegate to the scalar construction (identical output, see
    :data:`VIEW_ORDER_ARRAY_MIN_N`).
    """
    if _VIEW_ORDER_MEMO.active():
        key = points_key(points, center)
        hit, cached = _VIEW_ORDER_MEMO.lookup(key)
        if hit:
            return list(cached)
    else:
        key = None
    if len(points) < VIEW_ORDER_ARRAY_MIN_N:
        entries = _views._view_order_scalar(points, center)
    else:
        entries = _compute_view_order(points, center)
    if key is not None:
        _VIEW_ORDER_MEMO.store(key, tuple(entries))
    return entries


def _compute_view_order(
    points: Sequence[Vec2], center: Vec2
) -> list[tuple[Vec2, LocalView]]:
    multiset = _views._multiset(points)
    owners_all = [p for p, _ in multiset]
    mult = np.fromiter(
        (m for _, m in multiset), dtype=np.int64, count=len(multiset)
    )
    coords = _coords_array(owners_all)
    at_center, theta, dist = polar_arrays(coords, center.x, center.y)
    own = np.flatnonzero(~at_center)
    R = int(own.size)
    if R == 0:
        return []
    owners = [owners_all[i] for i in own]

    # Both orientations in one (2R, m) batch — rows [0, R) are the
    # owners' counterclockwise views, rows [R, 2R) their clockwise
    # twins — so the whole table sorts in a single flat lexsort.
    raw = theta[None, :] - theta[own][:, None]
    raw = np.concatenate((raw, -raw), axis=0)
    angle = np.fmod(raw, _TWO_PI)
    angle[angle < 0.0] += _TWO_PI
    angle[angle >= _TWO_PI] -= _TWO_PI
    angle[angle > _TWO_PI - VIEW_EPS] = 0.0
    ratio = dist[None, :] / dist[own][:, None]
    ratio = np.concatenate((ratio, ratio), axis=0)
    angle[:, at_center] = 0.0
    ratio[:, at_center] = 0.0
    sa, sr, sm, ambiguous = _sorted_rows(angle, ratio, mult)

    # Orientation choice, vectorized: the sign of the first tolerant
    # difference between each ccw row and its cw twin (angle before
    # ratio before exact multiplicity — compare_coord_seqs on rows of
    # equal length).  Only meaningful where neither row is ambiguous;
    # ambiguous owners defer to the scalar path below.
    da = sa[:R] - sa[R:]
    dr = sr[:R] - sr[R:]
    dm = sm[:R] - sm[R:]
    sig = np.where(
        np.abs(da) > VIEW_EPS,
        np.sign(da),
        np.where(np.abs(dr) > VIEW_EPS, np.sign(dr), np.sign(dm)),
    )
    nonzero = sig != 0
    first = nonzero.argmax(axis=1)
    cmp_rows = np.where(nonzero.any(axis=1), sig[np.arange(R), first], 0.0)

    la, lr, lm = sa.tolist(), sr.tolist(), sm.tolist()
    amb = ambiguous.tolist()
    entries: list[tuple[Vec2, LocalView]] = []
    for i, owner in enumerate(owners):
        if amb[i] or amb[R + i]:
            # eps-straddling tie in a row sort: defer to the scalar
            # comparator path, which defines the order in that case
            # (identical to the exact sort for the unambiguous twin).
            entries.append((owner, _views.local_view(points, center, owner)))
            continue
        c = cmp_rows[i]
        if c > 0:
            view = LocalView(tuple(zip(la[i], lr[i], lm[i])), True, False)
        elif c < 0:
            j = R + i
            view = LocalView(tuple(zip(la[j], lr[j], lm[j])), False, False)
        else:
            view = LocalView(tuple(zip(la[i], lr[i], lm[i])), True, True)
        entries.append((owner, view))
    entries.sort(
        key=cmp_to_key(lambda x, y: compare_views(x[1], y[1])), reverse=True
    )
    return entries


# ----------------------------------------------------------------------
# similarity
# ----------------------------------------------------------------------
def find_similarity_array(
    a: Sequence[Vec2], b: Sequence[Vec2], eps: float = EPS
) -> "Similarity | None":
    """Witness similarity: the scalar candidate scan, memoised.

    The kernel is a pure memo over :func:`_find_similarity_scalar` — a
    vectorized all-pairs feasibility pre-check was measured slower than
    the scalar early-exit greedy matcher at every size up to n=64 (the
    greedy scan bails on the first unmatched point; the (n, n) numpy
    reject pays its full cost on every candidate).  What the canonical
    frames buy here is the memo: same-chirality robots present
    bit-identical (a, b) pairs every activation.
    """
    if _SIMILARITY_MEMO.active():
        key = (len(a), points_key(tuple(a) + tuple(b)), eps)
        hit, cached = _SIMILARITY_MEMO.lookup(key)
        if hit:
            return None if cached is _NO_SIMILARITY else cached
    else:
        key = None
    result = _find_similarity_scalar(a, b, eps)
    if key is not None:
        _SIMILARITY_MEMO.store(
            key, _NO_SIMILARITY if result is None else result
        )
    return result


# ----------------------------------------------------------------------
# regular-set detection
# ----------------------------------------------------------------------
def find_regular_array(points, tol, polish):
    """Memoising wrapper over the scalar regular-set detector."""
    if _REGULAR_MEMO.active():
        key = (points_key(points), tol, polish)
        hit, cached = _REGULAR_MEMO.lookup(key)
        if hit:
            return cached
    else:
        key = None
    result = _find_regular_impl(points, tol, polish)
    if key is not None:
        _REGULAR_MEMO.store(key, result)
    return result


def find_shifted_regular_array(points, tol):
    """Memoising wrapper over the scalar shifted-regular detector."""
    if _SHIFTED_MEMO.active():
        key = (points_key(points), tol)
        hit, cached = _SHIFTED_MEMO.lookup(key)
        if hit:
            return cached
    else:
        key = None
    result = _find_shifted_regular_impl(points, tol)
    if key is not None:
        _SHIFTED_MEMO.store(key, result)
    return result
