"""Kernel installation: wiring :mod:`repro.fastsim.kernels` into
:data:`repro.accel.KERNELS`.

The kernel table is process-global (the geometry call sites consult it
unconditionally), so installation is scoped and reference-counted:
:func:`kernel_scope` activates on first entry, deactivates on last
exit, and nests safely.  Batch code wraps each array-engine batch in a
scope; the scalar engine never activates anything, so its behaviour
stays bit-identical whether or not numpy is even installed.

Activation is idempotent and cheap; the kernels' memo contents survive
deactivation (they are keyed bit-exactly and hold pure values, so
reuse across scopes is sound) and are dropped by the ordinary
:func:`repro.geometry.memo.clear_caches`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..accel import KERNELS

__all__ = ["activate_kernels", "deactivate_kernels", "kernel_scope"]

_lock = threading.Lock()
_depth = 0


def activate_kernels() -> None:
    """Install every fastsim kernel into the dispatch table."""
    from . import kernels as _k

    KERNELS.sec = _k.sec_array
    KERNELS.weber = _k.weber_array
    KERNELS.view_order = _k.view_order_array
    KERNELS.find_similarity = _k.find_similarity_array
    KERNELS.find_regular = _k.find_regular_array
    KERNELS.find_shifted_regular = _k.find_shifted_regular_array


def deactivate_kernels() -> None:
    """Clear the dispatch table (back to pure scalar execution)."""
    KERNELS.clear()


@contextmanager
def kernel_scope():
    """Reference-counted kernel activation for one batch."""
    global _depth
    with _lock:
        _depth += 1
        if _depth == 1:
            activate_kernels()
    try:
        yield
    finally:
        with _lock:
            _depth -= 1
            if _depth == 0:
                deactivate_kernels()
