"""The array engine: :class:`ArraySimulation`.

A :class:`~repro.sim.engine.Simulation` subclass that

* mirrors robot positions into an ``(n, 2)`` float64 array (kept in
  lockstep with every applied Move, exposed via
  :meth:`ArraySimulation.positions_array` for vectorized analysis and
  the kernel layer), and
* observes through **canonical frames**: every Look still draws the
  frame the scenario's frame policy prescribes (bit-identical RNG
  stream to the scalar engine), but evaluates the snapshot in the
  identity frame — or its mirror image when the drawn frame is
  mirrored, preserving the chirality the algorithms' coin-flip logic
  branches on.

The canonical-frame substitution is justified by the model itself: an
algorithm correct in this model behaves identically under any
similarity transform of its frame (the property the frame-invariance
tests pin, and the one the scalar engine's terminal probe already
exploits by probing all robots in shared identity/mirror frames).  Its
payoff is that the snapshot coordinate tuple is bit-identical for every
robot of a given chirality over one configuration — so the geometry
memos (scalar and kernel-level alike) collapse per-robot recomputation
into cache hits, which is where most of the array engine's speedup
comes from.

Frames with no rotation, unit scale and no translation also mean the
observation maps are exact identities (or exact sign flips), so the
Look phase skips the per-point similarity arithmetic entirely.
"""

from __future__ import annotations

import math
import struct

from ..geometry import Similarity, Vec2
from ..geometry.memo import cache_enabled, points_key
from ..model import LocalFrame, make_snapshot
from ..model.snapshot import Snapshot
from ..sim.engine import ComputeContext, Simulation
from ..sim.robot import Phase, RobotBody
from ..spatial import dedupe_indexed, index_enabled

__all__ = ["ArraySimulation"]

_MISS = object()
_TWO_PI = 6.283185307179586
_PACK_ME = struct.Struct("<2d").pack


class _IdentityFrame(LocalFrame):
    """The canonical direct frame: observation is the exact identity."""

    def observe(self, p: Vec2) -> Vec2:
        return p

    def observe_all(self, points) -> list[Vec2]:
        return list(points)


class _MirrorFrame(LocalFrame):
    """The canonical mirrored frame: exact reflection across the x axis."""

    def observe(self, p: Vec2) -> Vec2:
        return Vec2(p.x, -p.y)

    def observe_all(self, points) -> list[Vec2]:
        return [Vec2(p.x, -p.y) for p in points]


_IDENTITY_FRAME = _IdentityFrame(Similarity.identity())
_MIRROR_FRAME = _MirrorFrame(Similarity.reflection_x())


class ArraySimulation(Simulation):
    """The numpy-backed engine (see module docstring).

    Drop-in constructor-compatible with :class:`Simulation`; batch code
    selects it through ``BatchConfig(engine="array")``.  Kernel
    installation is the batch runner's job
    (:func:`repro.fastsim.backend.kernel_scope`), not the simulation's:
    a bare ``ArraySimulation`` still runs correctly — just without the
    vectorized kernels — which keeps unit tests simple.
    """

    def __init__(self, *args, **kwargs) -> None:
        from . import require_numpy

        self._np = require_numpy()
        super().__init__(*args, **kwargs)
        self._coords = self._np.array(
            [(r.position.x, r.position.y) for r in self.robots],
            dtype=self._np.float64,
        )
        # Scale of the frame each robot would have drawn, recorded at
        # Look time: the engine's triviality threshold (is_trivial,
        # eps=1e-12) applies to the *local* path length, which in the
        # scalar engine is the global length times the drawn frame's
        # scale.  Canonical frames have unit scale, so the decision is
        # replayed against the drawn scale in _commit_compute to keep
        # the two engines' idle-vs-move choices aligned.
        self._drawn_scales = [1.0] * len(self.robots)
        # Fast Look bookkeeping.  The canonical observation of one
        # configuration is shared by every robot (identity frame) or is
        # its exact y-flip (mirror frame), so the deduped point tuples —
        # and their bit-exact fingerprints — are built once per
        # configuration and invalidated by a version counter bumped on
        # every applied Move.  Only sound when observation is exact and
        # shared, i.e. no sensor-noise fault model perturbing points per
        # observer and no limited-visibility model giving each observer
        # its own subset.
        self._pure_looks = (
            self.faults is None or self.faults.plan.sensor is None
        ) and self.sensing is None
        self._config_version = 0
        self._snap_version = -1
        self._snap_points: tuple = (None, None)
        self._snap_keys: tuple = (None, None)
        # When the frame policy is the standard random-frames draw, its
        # published draw_spec lets the Look replay the exact RNG stream
        # (rotation, reflection coin, log-uniform scale) without
        # constructing Similarity objects for a frame that canonical
        # observation then ignores.
        spec = getattr(self.frame_policy, "draw_spec", None)
        if spec is not None:
            allow_reflection, min_scale, max_scale = spec
            self._frame_draw = (
                bool(allow_reflection),
                math.log(min_scale),
                math.log(max_scale),
            )
        else:
            self._frame_draw = None
        # Compute-result memo, *per simulation* (Compute depends on the
        # algorithm and its target pattern, so the cache must die with
        # the run — a process-global table would leak results across
        # scenarios).  Sound because the model's robots are oblivious —
        # Compute is a pure function of the snapshot and chirality —
        # and entries are only stored when the compute consumed no
        # randomness (coin-flipping branches replay live every time,
        # keeping the RNG streams bit-exact).  Canonical frames make
        # same-chirality snapshots over one configuration bit-identical,
        # which is what gives this cache its hit rate.
        self._compute_cache: dict = {}

    def positions_array(self):
        """Current positions as a copy of the ``(n, 2)`` mirror array."""
        return self._coords.copy()

    def _apply_look(self, robot: RobotBody) -> None:
        if robot.phase is not Phase.IDLE:
            raise RuntimeError(
                f"scheduler bug: LOOK on robot {robot.robot_id} in {robot.phase}"
            )
        # Draw exactly what the scalar engine would draw (keeping the
        # frame RNG stream aligned), then observe canonically.
        draw = self._frame_draw
        if draw is not None:
            allow_reflection, log_lo, log_hi = draw
            rng = self._frame_rng
            rng.uniform(0.0, _TWO_PI)  # rotation: parity only
            mirrored = allow_reflection and rng.random() < 0.5
            scale = math.exp(rng.uniform(log_lo, log_hi))
        else:
            drawn = self.frame_policy(
                robot.robot_id, robot.position, self._frame_rng
            )
            mirrored = drawn.is_mirrored()
            scale = drawn.to_local.scale
        frame = _MIRROR_FRAME if mirrored else _IDENTITY_FRAME
        robot.frame = frame
        self._drawn_scales[robot.robot_id] = scale
        if self._pure_looks:
            # Re-observing an unchanged configuration in the same
            # chirality yields the identical (frozen) snapshot: reuse it
            # (Compute clears robot.snapshot, so a reference survives on
            # the side).
            tag = (self._config_version, mirrored)
            if getattr(robot, "snap_tag", None) == tag:
                robot.snapshot = robot.snap_cached
                robot.phase = Phase.OBSERVED
                self.metrics.looks += 1
                return
            pts, key = self._canonical_view(mirrored)
            pos = robot.position
            me = Vec2(pos.x, -pos.y) if mirrored else pos
            snap = Snapshot(pts, me, self.multiplicity_detection)
            robot.snapshot = snap
            robot.snap_cached = snap
            robot.snap_key = key
            robot.snap_tag = tag
        else:
            observed = self._observed_points(robot.position)
            if self.faults is not None:
                observed = self.faults.observe(robot.robot_id, observed)
            robot.snapshot = make_snapshot(
                observed,
                robot.position,
                frame.observe,
                self.multiplicity_detection,
                to_local_all=frame.observe_all,
            )
            robot.snap_key = None
        robot.phase = Phase.OBSERVED
        self.metrics.looks += 1

    def _canonical_view(self, mirrored: bool):
        """Canonical observation of the current configuration, cached.

        Returns the (deduped, per the scalar ``make_snapshot`` rule)
        point tuple in the requested chirality together with its
        bit-exact fingerprint.  Rebuilt only when a Move has changed the
        configuration since the last Look.
        """
        if self._snap_version != self._config_version:
            pts = self.points()
            if self.multiplicity_detection:
                seen = tuple(pts)
            elif index_enabled(len(pts)):
                seen = dedupe_indexed(pts)
            else:
                kept: list[Vec2] = []
                for p in pts:
                    if not any(p.approx_eq(q) for q in kept):
                        kept.append(p)
                seen = tuple(kept)
            mirror = tuple(Vec2(p.x, -p.y) for p in seen)
            self._snap_points = (seen, mirror)
            self._snap_keys = (points_key(seen), points_key(mirror))
            self._snap_version = self._config_version
        pick = 1 if mirrored else 0
        return self._snap_points[pick], self._snap_keys[pick]

    def _apply_compute(self, robot: RobotBody) -> None:
        if robot.phase is not Phase.OBSERVED or robot.snapshot is None:
            raise RuntimeError(
                f"scheduler bug: COMPUTE on robot {robot.robot_id} in {robot.phase}"
            )
        # Canonical frames make snapshots of same-chirality robots over
        # one configuration bit-identical, so deterministic Compute
        # results are shared across robots and across re-activations.
        snap = robot.snapshot
        key = None
        if cache_enabled():
            snap_key = getattr(robot, "snap_key", None)
            if snap_key is not None:
                # Fast Look already fingerprinted the shared point tuple;
                # only the observer's own position distinguishes robots.
                key = (
                    snap_key,
                    _PACK_ME(snap.me.x, snap.me.y),
                    robot.frame.is_mirrored(),
                )
            else:
                key = (
                    points_key(snap.points + (snap.me,)),
                    snap.multiplicity_detection,
                    robot.frame.is_mirrored(),
                )
            cached = self._compute_cache.get(key, _MISS)
            if cached is not _MISS:
                self.metrics.computes += 1
                self._commit_compute(robot, cached)
                return
        rng = self._robot_rngs[robot.robot_id]
        bits_before, flips_before, floats_before = (
            rng.bits_used,
            rng.bit_calls,
            rng.float_calls,
        )
        ctx = ComputeContext(rng, own_chirality=not robot.frame.is_mirrored())
        local_path = self.algorithm.compute(robot.snapshot, ctx)
        drew = (
            rng.bits_used != bits_before or rng.float_calls != floats_before
        )
        self.metrics.random_bits += rng.bits_used - bits_before
        self.metrics.coin_flips += rng.bit_calls - flips_before
        self.metrics.float_draws += rng.float_calls - floats_before
        self.metrics.computes += 1
        if key is not None and not drew:
            self._compute_cache[key] = local_path
        self._commit_compute(robot, local_path)

    def _commit_compute(self, robot: RobotBody, local_path) -> None:
        # Replay the scalar engine's triviality decision: there the path
        # length is measured in the drawn frame (drawn scale times the
        # global length); here local equals global, so the drawn scale
        # re-enters explicitly.  Without this, a shrinking convergence
        # creep crosses the 1e-12 idle threshold at a different step
        # than the scalar engine and the step counts drift.
        if local_path is not None:
            scaled = local_path.length() * self._drawn_scales[robot.robot_id]
            if scaled <= 1e-12:
                local_path = None
        super()._commit_compute(robot, local_path)

    def _apply_move(self, robot: RobotBody, action) -> None:
        super()._apply_move(robot, action)
        self._coords[robot.robot_id, 0] = robot.position.x
        self._coords[robot.robot_id, 1] = robot.position.y
        self._config_version += 1
