"""Robot configurations.

A configuration is the multiset of robot positions at some instant.  The
engine keeps positions indexed by robot id (ids exist only in the
simulator — the robots themselves are anonymous and never see them); the
anonymous multiset view used by algorithms is obtained via :meth:`points`
and :meth:`distinct_points`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..geometry import EPS, Circle, Vec2, smallest_enclosing_circle


@dataclass(frozen=True)
class Configuration:
    """An immutable snapshot of all robot positions (global coordinates)."""

    positions: tuple[Vec2, ...]

    @staticmethod
    def from_points(points: Iterable[Vec2]) -> "Configuration":
        """Build a configuration from any iterable of points."""
        return Configuration(tuple(points))

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self) -> Iterator[Vec2]:
        return iter(self.positions)

    def __getitem__(self, robot_id: int) -> Vec2:
        return self.positions[robot_id]

    def points(self) -> list[Vec2]:
        """All positions as a list (duplicates preserved)."""
        return list(self.positions)

    def distinct_points(self, eps: float = EPS) -> list[tuple[Vec2, int]]:
        """Distinct locations with their multiplicities, insertion order."""
        found: list[tuple[Vec2, int]] = []
        for p in self.positions:
            for i, (q, count) in enumerate(found):
                if p.approx_eq(q, eps):
                    found[i] = (q, count + 1)
                    break
            else:
                found.append((p, 1))
        return found

    def multiplicity_of(self, p: Vec2, eps: float = EPS) -> int:
        """Number of robots at location ``p``."""
        return sum(1 for q in self.positions if q.approx_eq(p, eps))

    def has_multiplicity(self, eps: float = EPS) -> bool:
        """True when some location hosts more than one robot."""
        return any(count > 1 for _, count in self.distinct_points(eps))

    def sec(self) -> Circle:
        """Smallest enclosing circle ``C(P)``."""
        return smallest_enclosing_circle(self.positions)

    def moved(self, robot_id: int, new_position: Vec2) -> "Configuration":
        """A copy with one robot relocated."""
        positions = list(self.positions)
        positions[robot_id] = new_position
        return Configuration(tuple(positions))

    def translated(self, offset: Vec2) -> "Configuration":
        """A copy with every robot translated by ``offset``."""
        return Configuration(tuple(p + offset for p in self.positions))


def robots_within(
    points: Sequence[Vec2], center: Vec2, radius: float, eps: float = EPS
) -> list[Vec2]:
    """Points strictly inside the open disc ``D(radius)`` around ``center``."""
    return [p for p in points if p.dist(center) < radius - eps]


def robots_on_circle(
    points: Sequence[Vec2], circle: Circle, eps: float = EPS
) -> list[Vec2]:
    """Points lying on the circumference of ``circle``."""
    return [p for p in points if circle.on_circumference(p, eps)]
