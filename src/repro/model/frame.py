"""Local (ego-centered) coordinate frames.

Each robot observes the world through its own coordinate system: an
arbitrary similarity transform of the global frame, with arbitrary
handedness.  Because the robots of this paper share **no** "North" and
**no** chirality, the adversary may hand every robot — at every cycle — a
freshly rotated, scaled *and mirrored* frame.  An algorithm correct in
this model must behave identically regardless of the frame, which the test
suite checks explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..geometry import Similarity, Vec2


@dataclass(frozen=True)
class LocalFrame:
    """A robot's ego-centered coordinate system.

    ``to_local`` maps global coordinates into the robot's frame; the robot
    itself sits at the frame's origin.
    """

    to_local: Similarity

    @staticmethod
    def identity_at(origin: Vec2) -> "LocalFrame":
        """A frame aligned with the global axes, centered at ``origin``."""
        return LocalFrame(Similarity.translation_of(-origin))

    @staticmethod
    def random_at(
        origin: Vec2,
        rng: random.Random,
        allow_reflection: bool = True,
        min_scale: float = 0.25,
        max_scale: float = 4.0,
    ) -> "LocalFrame":
        """A uniformly random frame centered at ``origin``.

        Rotation is uniform in [0, 2*pi); the frame is mirrored with
        probability 1/2 when ``allow_reflection`` (the no-chirality model);
        scale is log-uniform in [min_scale, max_scale].
        """
        rotation = rng.uniform(0.0, 6.283185307179586)
        reflect = allow_reflection and rng.random() < 0.5
        import math

        log_lo, log_hi = math.log(min_scale), math.log(max_scale)
        scale = math.exp(rng.uniform(log_lo, log_hi))
        orient = Similarity(scale, rotation, reflect, Vec2.zero())
        return LocalFrame(orient.compose(Similarity.translation_of(-origin)))

    def globalize(self) -> Similarity:
        """The inverse transform (local to global coordinates)."""
        return self.to_local.inverse()

    def observe(self, p: Vec2) -> Vec2:
        """A global point as the robot sees it."""
        return self.to_local.apply(p)

    def observe_all(self, points: list[Vec2]) -> list[Vec2]:
        """A list of global points as the robot sees them."""
        return self.to_local.apply_all(points)

    def to_global(self, p: Vec2) -> Vec2:
        """A local point converted back to global coordinates."""
        return self.globalize().apply(p)

    def is_mirrored(self) -> bool:
        """Whether the frame has opposite chirality to the global frame."""
        return self.to_local.reflect
