"""Robot model substrate: configurations, frames, snapshots, views, symmetry."""

from .configuration import Configuration, robots_on_circle, robots_within
from .frame import LocalFrame
from .pattern import Pattern
from .snapshot import Snapshot, make_snapshot
from .symmetry import (
    has_mirror_symmetry,
    is_asymmetric,
    rotational_symmetry,
    symmetry_axes,
)
from .views import (
    VIEW_EPS,
    LocalView,
    compare_views,
    equivalent_views,
    local_view,
    max_view_not_holding_sec,
    max_view_points,
    view_coords,
    view_order,
)

__all__ = [
    "VIEW_EPS",
    "Configuration",
    "LocalFrame",
    "LocalView",
    "Pattern",
    "Snapshot",
    "compare_views",
    "equivalent_views",
    "has_mirror_symmetry",
    "is_asymmetric",
    "local_view",
    "make_snapshot",
    "max_view_not_holding_sec",
    "max_view_points",
    "robots_on_circle",
    "robots_within",
    "rotational_symmetry",
    "symmetry_axes",
    "view_coords",
    "view_order",
]
