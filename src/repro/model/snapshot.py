"""Snapshots: what a robot sees during its Look phase.

A snapshot is the full configuration expressed in the observing robot's
local frame.  Moving robots appear exactly like static ones.  Without
multiplicity detection a location hosting several robots is seen as a
single point; with (strong) multiplicity detection the robot sees the exact
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..geometry import Circle, Vec2, smallest_enclosing_circle
from ..geometry.memo import Memo, points_key
from ..spatial import dedupe_indexed, index_enabled
from .views import _multiset

_DEDUPE_MEMO = Memo("snapshot.dedupe")


@dataclass(frozen=True)
class Snapshot:
    """An observation of the configuration in local coordinates.

    Attributes:
        points: every observed robot location.  With multiplicity detection
            duplicates are preserved (one entry per robot); without it each
            location appears exactly once.
        me: the observing robot's own position in the same frame (the frame
            is ego-centered, so this is the origin, but the algorithms never
            rely on that).
        multiplicity_detection: whether counts at shared locations are
            visible.
    """

    points: tuple[Vec2, ...]
    me: Vec2
    multiplicity_detection: bool = False

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a snapshot must contain at least one robot")

    def n(self) -> int:
        """Number of observed robots (locations when detection is off)."""
        return len(self.points)

    def others(self) -> list[Vec2]:
        """All observed locations except (one occurrence of) the observer's."""
        out = list(self.points)
        for i, p in enumerate(out):
            if p.approx_eq(self.me):
                del out[i]
                return out
        return out

    def distinct(self) -> list[tuple[Vec2, int]]:
        """Distinct locations with multiplicities (1s when detection off)."""
        return _multiset(self.points)

    def sec(self) -> Circle:
        """Smallest enclosing circle of the observed configuration."""
        return smallest_enclosing_circle(self.points)


def make_snapshot(
    global_points: Sequence[Vec2],
    observer_global: Vec2,
    to_local,
    multiplicity_detection: bool = False,
    to_local_all=None,
) -> Snapshot:
    """Build the snapshot an observer at ``observer_global`` obtains.

    Args:
        global_points: all robot positions in global coordinates.
        observer_global: the observer's own global position.
        to_local: callable mapping a global point into the local frame.
        multiplicity_detection: whether multiplicities are observable.
        to_local_all: optional batch form of ``to_local`` (same map, list
            in, list out) — e.g. :meth:`LocalFrame.observe_all`, which
            hoists the trig out of the per-point loop.  Purely an
            optimisation; the result is identical.
    """
    if to_local_all is None:
        to_local_all = lambda pts: [to_local(p) for p in pts]
    if multiplicity_detection:
        local = tuple(to_local_all(global_points))
    else:
        # The dedupe runs in *global* coordinates, so its result is
        # shared by every observer and every frame over one unchanged
        # configuration — memoised per bit-exact position tuple.
        if _DEDUPE_MEMO.active():
            key = points_key(global_points)
            hit, seen = _DEDUPE_MEMO.lookup(key)
        else:
            key, hit, seen = None, False, None
        if not hit:
            if index_enabled(len(global_points)):
                # Grid-accelerated first-occurrence dedupe; bit-identical
                # to the quadratic scan below (pinned by tests/spatial/).
                seen = dedupe_indexed(global_points)
            else:
                seen = []
                for p in global_points:
                    if not any(p.approx_eq(q) for q in seen):
                        seen.append(p)
                seen = tuple(seen)
            if key is not None:
                _DEDUPE_MEMO.store(key, seen)
        local = tuple(to_local_all(seen))
    return Snapshot(local, to_local(observer_global), multiplicity_detection)
