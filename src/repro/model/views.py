"""Local views ``Z_r`` and the view order.

For a configuration ``P`` with center ``c = c(P)`` and a robot ``r != c``,
the *local view* of ``r`` is the multiset of robot positions expressed in
the polar frame centered at ``c`` in which ``r`` has coordinates ``(1, 0)``,
taken with the rotational orientation (clockwise or counterclockwise) that
lexicographically maximises the coordinate sequence.  Robots with the same
view are indistinguishable; the robot(s) "with maximal view" are the
canonical choice the algorithms use whenever a distinguished robot is
needed.

Views are compared *tolerantly*: coordinates within a view are sorted with
an eps-aware comparator and two views are compared element-wise with the
same tolerance, so that genuinely symmetric configurations produce equal
views despite floating-point noise.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Sequence

from ..accel import KERNELS as _KERNELS
from ..geometry import Vec2, direction_angle, point_holds_sec
from ..geometry.memo import Memo, points_key

#: Tolerance for angle/radius comparisons inside views.  Slightly coarser
#: than the geometric EPS so that per-cycle frame round-trips never split a
#: symmetric pair.
VIEW_EPS = 1e-6

Coord = tuple[float, float, int]


def _coord_cmp(a: Coord, b: Coord) -> int:
    """Tolerant three-way comparison of view coordinates.

    The body is :func:`repro.geometry.tolerance.approx_cmp` on the angle,
    then the radius, then exact comparison of the multiplicity — inlined,
    because this comparator runs millions of times inside view sorts.
    """
    if abs(a[0] - b[0]) > VIEW_EPS:
        return -1 if a[0] < b[0] else 1
    if abs(a[1] - b[1]) > VIEW_EPS:
        return -1 if a[1] < b[1] else 1
    return (a[2] > b[2]) - (a[2] < b[2])


_COORD_KEY = functools.cmp_to_key(_coord_cmp)


_MULTISET_MEMO = Memo("views.multiset")


def _multiset(points: Sequence[Vec2], eps: float = VIEW_EPS) -> list[tuple[Vec2, int]]:
    """Distinct points with multiplicities.

    Quadratic in the point count, and asked for the same point tuple by
    every view computation of one activation — memoised per bit-exact
    tuple.  Returns a fresh list each call (callers may keep it around).
    """
    if _MULTISET_MEMO.active():
        key = (points_key(points), eps)
        hit, cached = _MULTISET_MEMO.lookup(key)
        if hit:
            return list(cached)
    else:
        key = None
    found: list[tuple[Vec2, int]] = []
    for p in points:
        for i, (q, count) in enumerate(found):
            if abs(p.x - q.x) <= eps and abs(p.y - q.y) <= eps:
                found[i] = (q, count + 1)
                break
        else:
            found.append((p, 1))
    if key is not None:
        _MULTISET_MEMO.store(key, tuple(found))
    return found


@dataclass(frozen=True)
class LocalView:
    """The (maximal-orientation) local view of one robot.

    Attributes:
        coords: sorted ``(angle, radius, multiplicity)`` coordinates of all
            distinct robot locations, angles in [0, 2*pi) measured from the
            owning robot's direction, radii relative to the owner's radius.
        direct: True when the counterclockwise (in the frame used to compute
            the view) orientation realises the maximum.
        symmetric: True when both orientations yield equal views, i.e. the
            owner lies on an axis of symmetry of the configuration.

    View order.  The paper leaves the lexicographic convention open; this
    library fixes the one its algorithm relies on (the paper's own naming —
    "ClosestF", "f_s is one of the closest points to the center" — implies
    it): views are compared first by the *minimum radius ratio* appearing
    in the view, so that robots closer to the center have strictly greater
    views, and ties (same-ring robots) are broken by the tolerant
    lexicographic order on the coordinate sequence.  The convention is
    similarity-invariant and gives equivalent robots equal views, which is
    all the theory requires.
    """

    coords: tuple[Coord, ...]
    direct: bool
    symmetric: bool

    @functools.cached_property
    def _min_ratio(self) -> float:
        return min(c[1] for c in self.coords)

    def min_ratio(self) -> float:
        """Smallest radius ratio in the view (0 when a robot sits at the
        center; 1 when the owner is among the closest robots).

        Cached: every view comparison starts with the min ratios, so a
        view taking part in a sort is asked for it O(n log n) times.
        """
        return self._min_ratio


_POLAR_MEMO = Memo("views.polar_table")

#: Per-(points, center) polar data: (at_center, theta, dist, multiplicity)
#: of every distinct location.  Every robot's view over one configuration
#: reuses the same angles and distances; computing them once per
#: (points, center) instead of once per view is the hot-path win.
_PolarRow = tuple[bool, float, float, int]


_TWO_PI = 2.0 * math.pi


def _polar_table(points: Sequence[Vec2], center: Vec2) -> tuple[_PolarRow, ...]:
    if _POLAR_MEMO.active():
        key = points_key(points, center)
        hit, cached = _POLAR_MEMO.lookup(key)
        if hit:
            return cached
    else:
        key = None
    rows: list[_PolarRow] = []
    for p, mult in _multiset(points):
        if p.approx_eq(center, VIEW_EPS):
            rows.append((True, 0.0, 0.0, mult))
        else:
            rows.append(
                (False, direction_angle(center, p), p.dist(center), mult)
            )
    table = tuple(rows)
    if key is not None:
        _POLAR_MEMO.store(key, table)
    return table


def view_coords(
    points: Sequence[Vec2],
    center: Vec2,
    robot: Vec2,
    direct: bool,
    _table: "tuple[_PolarRow, ...] | None" = None,
) -> tuple[Coord, ...]:
    """Raw view coordinates of ``robot`` in one orientation.

    ``_table`` lets :func:`local_view` share one polar-table lookup
    between both orientations; passing it is purely an optimisation.
    """
    unit = robot.dist(center)
    if unit <= 0.0:
        raise ValueError("view undefined for a robot located at the center")
    theta_r = direction_angle(center, robot)
    if _table is None:
        _table = _polar_table(points, center)
    coords: list[Coord] = []
    append = coords.append
    fmod = math.fmod
    two_pi = _TWO_PI
    wrap = two_pi - VIEW_EPS
    for at_center, theta_p, dist_p, mult in _table:
        if at_center:
            # A robot exactly at the center is orientation-independent.
            append((0.0, 0.0, mult))
            continue
        raw = theta_p - theta_r
        # norm_angle, inlined (called for every row of every view).
        angle = fmod(raw if direct else -raw, two_pi)
        if angle < 0.0:
            angle += two_pi
        if angle >= two_pi:
            angle -= two_pi
        if angle > wrap:
            angle = 0.0
        append((angle, dist_p / unit, mult))
    # Fast path: sort exactly (C tuple compare), then verify with n-1
    # tolerant comparisons that the exact order is also the strict
    # tolerant order.  When any adjacent pair is tolerant-equal without
    # being identical (an eps-straddling tie, where stability of the
    # comparator sort could matter), fall back to the comparator sort.
    exact = sorted(coords)
    for i in range(len(exact) - 1):
        u, v = exact[i], exact[i + 1]
        c = _coord_cmp(u, v)
        if c > 0 or (c == 0 and u != v):
            coords.sort(key=_COORD_KEY)
            return tuple(coords)
    return tuple(exact)


def compare_coord_seqs(a: Sequence[Coord], b: Sequence[Coord]) -> int:
    """Tolerant lexicographic three-way comparison of coordinate lists."""
    for ca, cb in zip(a, b):
        c = _coord_cmp(ca, cb)
        if c:
            return c
    return (len(a) > len(b)) - (len(a) < len(b))


def local_view(points: Sequence[Vec2], center: Vec2, robot: Vec2) -> LocalView:
    """The local view ``Z_r`` of ``robot``, maximised over orientation.

    Deliberately *not* memoised on its own: the ``robot`` argument makes
    the key nearly unique per call (measured hit rate under 2% on the E1
    workload), so the shared redundancy is captured one level down by the
    polar-table memo and one level up by :func:`view_order`.
    """
    table = _polar_table(points, center)
    ccw = view_coords(points, center, robot, direct=True, _table=table)
    cw = view_coords(points, center, robot, direct=False, _table=table)
    cmp = compare_coord_seqs(ccw, cw)
    if cmp > 0:
        return LocalView(ccw, True, False)
    if cmp < 0:
        return LocalView(cw, False, False)
    return LocalView(ccw, True, True)


def compare_views(a: LocalView, b: LocalView) -> int:
    """Tolerant three-way comparison of two local views.

    Compares the minimum radius ratio first (larger ratio — i.e. a robot
    closer to the center — means a greater view), then the coordinate
    sequences lexicographically; see :class:`LocalView` for why.
    """
    ra, rb = a._min_ratio, b._min_ratio
    if abs(ra - rb) > VIEW_EPS:  # approx_cmp, inlined
        return -1 if ra < rb else 1
    return compare_coord_seqs(a.coords, b.coords)


def equivalent_views(a: LocalView, b: LocalView) -> bool:
    """Equality of views including orientation (paper's robot equivalence).

    Two robots are *equivalent* when they have the same view with the same
    orientation; symmetric views (owner on an axis) compare as equivalent
    regardless of orientation flag.
    """
    if compare_views(a, b) != 0:
        return False
    if a.symmetric or b.symmetric:
        return a.symmetric == b.symmetric
    return a.direct == b.direct


def view_order(points: Sequence[Vec2], center: Vec2) -> list[tuple[Vec2, LocalView]]:
    """All robots with their views, sorted by decreasing view.

    Robots at the exact center are excluded (their view is undefined).

    Deliberately *not* memoised: the hit rate is 5.5% on the E1
    workload, and the stored entries (tuples of :class:`LocalView`
    instances) are large enough that keeping thousands of them resident
    measurably slows garbage collection — the per-memo ablation showed
    this cache costing more wall-clock than every other cache saves.
    The shared redundancy is captured one level down by the polar-table
    memo.

    The array engine installs a kernel here (one lexsort over all
    owners at once, memoised — worthwhile there because its canonical
    frames make the key recur; see :mod:`repro.fastsim.kernels`).
    """
    kernel = _KERNELS.view_order
    if kernel is not None:
        return kernel(points, center)
    return _view_order_scalar(points, center)


def _view_order_scalar(
    points: Sequence[Vec2], center: Vec2
) -> list[tuple[Vec2, LocalView]]:
    """The per-owner view construction itself, bypassing kernel dispatch.

    Split out so installed kernels can delegate back to it below their
    profitable size (the lexsort kernel's numpy overhead only amortises
    from roughly a dozen robots up).
    """
    entries = [
        (p, local_view(points, center, p))
        for p in _dedupe(points)
        if not p.approx_eq(center, VIEW_EPS)
    ]
    entries.sort(key=functools.cmp_to_key(lambda x, y: compare_views(x[1], y[1])), reverse=True)
    return entries


def max_view_points(points: Sequence[Vec2], center: Vec2) -> list[Vec2]:
    """The robot locations achieving the maximal view."""
    ordered = view_order(points, center)
    if not ordered:
        return []
    top_view = ordered[0][1]
    return [p for p, v in ordered if compare_views(v, top_view) == 0]


def max_view_not_holding_sec(
    points: Sequence[Vec2], center: Vec2
) -> list[Vec2]:
    """Max-view locations among those that do not hold ``C(P)``."""
    pts = list(points)
    candidates = [
        p
        for p in _dedupe(points)
        if not p.approx_eq(center, VIEW_EPS) and not point_holds_sec(pts, p)
    ]
    if not candidates:
        return []
    entries = [(p, local_view(points, center, p)) for p in candidates]
    entries.sort(key=functools.cmp_to_key(lambda x, y: compare_views(x[1], y[1])), reverse=True)
    top_view = entries[0][1]
    return [p for p, v in entries if compare_views(v, top_view) == 0]


def _dedupe(points: Sequence[Vec2]) -> list[Vec2]:
    return [p for p, _ in _multiset(points)]
