"""Local views ``Z_r`` and the view order.

For a configuration ``P`` with center ``c = c(P)`` and a robot ``r != c``,
the *local view* of ``r`` is the multiset of robot positions expressed in
the polar frame centered at ``c`` in which ``r`` has coordinates ``(1, 0)``,
taken with the rotational orientation (clockwise or counterclockwise) that
lexicographically maximises the coordinate sequence.  Robots with the same
view are indistinguishable; the robot(s) "with maximal view" are the
canonical choice the algorithms use whenever a distinguished robot is
needed.

Views are compared *tolerantly*: coordinates within a view are sorted with
an eps-aware comparator and two views are compared element-wise with the
same tolerance, so that genuinely symmetric configurations produce equal
views despite floating-point noise.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

from ..geometry import Vec2, direction_angle, norm_angle, point_holds_sec
from ..geometry.tolerance import approx_cmp

#: Tolerance for angle/radius comparisons inside views.  Slightly coarser
#: than the geometric EPS so that per-cycle frame round-trips never split a
#: symmetric pair.
VIEW_EPS = 1e-6

Coord = tuple[float, float, int]


def _coord_cmp(a: Coord, b: Coord) -> int:
    """Tolerant three-way comparison of view coordinates."""
    c = approx_cmp(a[0], b[0], VIEW_EPS)
    if c:
        return c
    c = approx_cmp(a[1], b[1], VIEW_EPS)
    if c:
        return c
    return (a[2] > b[2]) - (a[2] < b[2])


_COORD_KEY = functools.cmp_to_key(_coord_cmp)


def _multiset(points: Sequence[Vec2], eps: float = VIEW_EPS) -> list[tuple[Vec2, int]]:
    """Distinct points with multiplicities."""
    found: list[tuple[Vec2, int]] = []
    for p in points:
        for i, (q, count) in enumerate(found):
            if p.approx_eq(q, eps):
                found[i] = (q, count + 1)
                break
        else:
            found.append((p, 1))
    return found


@dataclass(frozen=True)
class LocalView:
    """The (maximal-orientation) local view of one robot.

    Attributes:
        coords: sorted ``(angle, radius, multiplicity)`` coordinates of all
            distinct robot locations, angles in [0, 2*pi) measured from the
            owning robot's direction, radii relative to the owner's radius.
        direct: True when the counterclockwise (in the frame used to compute
            the view) orientation realises the maximum.
        symmetric: True when both orientations yield equal views, i.e. the
            owner lies on an axis of symmetry of the configuration.

    View order.  The paper leaves the lexicographic convention open; this
    library fixes the one its algorithm relies on (the paper's own naming —
    "ClosestF", "f_s is one of the closest points to the center" — implies
    it): views are compared first by the *minimum radius ratio* appearing
    in the view, so that robots closer to the center have strictly greater
    views, and ties (same-ring robots) are broken by the tolerant
    lexicographic order on the coordinate sequence.  The convention is
    similarity-invariant and gives equivalent robots equal views, which is
    all the theory requires.
    """

    coords: tuple[Coord, ...]
    direct: bool
    symmetric: bool

    def min_ratio(self) -> float:
        """Smallest radius ratio in the view (0 when a robot sits at the
        center; 1 when the owner is among the closest robots)."""
        return min(c[1] for c in self.coords)


def view_coords(
    points: Sequence[Vec2], center: Vec2, robot: Vec2, direct: bool
) -> tuple[Coord, ...]:
    """Raw view coordinates of ``robot`` in one orientation."""
    unit = robot.dist(center)
    if unit <= 0.0:
        raise ValueError("view undefined for a robot located at the center")
    theta_r = direction_angle(center, robot)
    coords: list[Coord] = []
    for p, mult in _multiset(points):
        if p.approx_eq(center, VIEW_EPS):
            # A robot exactly at the center is orientation-independent.
            coords.append((0.0, 0.0, mult))
            continue
        raw = direction_angle(center, p) - theta_r
        angle = norm_angle(raw if direct else -raw)
        if angle > 2.0 * 3.141592653589793 - VIEW_EPS:
            angle = 0.0
        radius = p.dist(center) / unit
        coords.append((angle, radius, mult))
    coords.sort(key=_COORD_KEY)
    return tuple(coords)


def compare_coord_seqs(a: Sequence[Coord], b: Sequence[Coord]) -> int:
    """Tolerant lexicographic three-way comparison of coordinate lists."""
    for ca, cb in zip(a, b):
        c = _coord_cmp(ca, cb)
        if c:
            return c
    return (len(a) > len(b)) - (len(a) < len(b))


def local_view(points: Sequence[Vec2], center: Vec2, robot: Vec2) -> LocalView:
    """The local view ``Z_r`` of ``robot``, maximised over orientation."""
    ccw = view_coords(points, center, robot, direct=True)
    cw = view_coords(points, center, robot, direct=False)
    cmp = compare_coord_seqs(ccw, cw)
    if cmp > 0:
        return LocalView(ccw, True, False)
    if cmp < 0:
        return LocalView(cw, False, False)
    return LocalView(ccw, True, True)


def compare_views(a: LocalView, b: LocalView) -> int:
    """Tolerant three-way comparison of two local views.

    Compares the minimum radius ratio first (larger ratio — i.e. a robot
    closer to the center — means a greater view), then the coordinate
    sequences lexicographically; see :class:`LocalView` for why.
    """
    c = approx_cmp(a.min_ratio(), b.min_ratio(), VIEW_EPS)
    if c:
        return c
    return compare_coord_seqs(a.coords, b.coords)


def equivalent_views(a: LocalView, b: LocalView) -> bool:
    """Equality of views including orientation (paper's robot equivalence).

    Two robots are *equivalent* when they have the same view with the same
    orientation; symmetric views (owner on an axis) compare as equivalent
    regardless of orientation flag.
    """
    if compare_views(a, b) != 0:
        return False
    if a.symmetric or b.symmetric:
        return a.symmetric == b.symmetric
    return a.direct == b.direct


def view_order(points: Sequence[Vec2], center: Vec2) -> list[tuple[Vec2, LocalView]]:
    """All robots with their views, sorted by decreasing view.

    Robots at the exact center are excluded (their view is undefined).
    """
    entries = [
        (p, local_view(points, center, p))
        for p in _dedupe(points)
        if not p.approx_eq(center, VIEW_EPS)
    ]
    entries.sort(key=functools.cmp_to_key(lambda x, y: compare_views(x[1], y[1])), reverse=True)
    return entries


def max_view_points(points: Sequence[Vec2], center: Vec2) -> list[Vec2]:
    """The robot locations achieving the maximal view."""
    ordered = view_order(points, center)
    if not ordered:
        return []
    top_view = ordered[0][1]
    return [p for p, v in ordered if compare_views(v, top_view) == 0]


def max_view_not_holding_sec(
    points: Sequence[Vec2], center: Vec2
) -> list[Vec2]:
    """Max-view locations among those that do not hold ``C(P)``."""
    pts = list(points)
    candidates = [
        p
        for p in _dedupe(points)
        if not p.approx_eq(center, VIEW_EPS) and not point_holds_sec(pts, p)
    ]
    if not candidates:
        return []
    entries = [(p, local_view(points, center, p)) for p in candidates]
    entries.sort(key=functools.cmp_to_key(lambda x, y: compare_views(x[1], y[1])), reverse=True)
    top_view = entries[0][1]
    return [p for p, v in entries if compare_views(v, top_view) == 0]


def _dedupe(points: Sequence[Vec2]) -> list[Vec2]:
    return [p for p, _ in _multiset(points)]
