"""Rotational symmetricity ``rho(P)`` and axes of symmetry.

``rho(P)`` is the order of the rotation group of the configuration about
its center: the number of rotations (including the identity) that map the
multiset of positions onto itself.  When ``rho(P) = 1`` the configuration
may still possess mirror symmetry; :func:`symmetry_axes` finds all axes.

Every symmetry of a point set fixes the center of its smallest enclosing
circle, so candidate rotations/reflections are generated from the ring of
points closest to that center and verified against the whole multiset.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geometry import Vec2, direction_angle, norm_angle
from ..geometry.memo import Memo, points_key
from ..geometry.tolerance import approx_eq
from .views import VIEW_EPS, _multiset

_RHO_MEMO = Memo("symmetry.rotational")
_AXES_MEMO = Memo("symmetry.axes")


def _rings(
    points: Sequence[tuple[Vec2, int]], center: Vec2, eps: float
) -> list[list[tuple[Vec2, int]]]:
    """Points grouped by distance to center, closest ring first."""
    annotated = sorted(
        ((p.dist(center), p, m) for p, m in points), key=lambda t: t[0]
    )
    rings: list[list[tuple[Vec2, int]]] = []
    for d, p, m in annotated:
        if rings and approx_eq(rings[-1][0][0].dist(center), d, eps):
            rings[-1].append((p, m))
        else:
            rings.append([(p, m)])
    return rings


def _maps_to_self(
    points: Sequence[tuple[Vec2, int]],
    transform,
    eps: float,
) -> bool:
    """Whether ``transform`` permutes the weighted multiset of points."""
    used = [False] * len(points)
    for p, m in points:
        image = transform(p)
        for j, (q, mq) in enumerate(points):
            if not used[j] and m == mq and image.approx_eq(q, eps):
                used[j] = True
                break
        else:
            return False
    return True


def rotational_symmetry(
    points: Sequence[Vec2], center: Vec2, eps: float = VIEW_EPS
) -> int:
    """The symmetricity ``rho(P)`` about ``center``.

    Points located at the center are rotation-invariant and ignored when
    generating candidates (but a centered point never breaks symmetry).
    """
    if _RHO_MEMO.active():
        key = (points_key(points, center), eps)
        hit, cached = _RHO_MEMO.lookup(key)
        if hit:
            return cached
    else:
        key = None
    multiset = [
        (p, m) for p, m in _multiset(points) if not p.approx_eq(center, eps)
    ]
    if not multiset:
        if key is not None:
            _RHO_MEMO.store(key, 1)
        return 1
    rings = _rings(multiset, center, eps)
    ring0 = rings[0]
    anchor = ring0[0][0]
    theta0 = direction_angle(center, anchor)
    count = 0
    seen: list[float] = []
    for q, _ in ring0:
        theta = norm_angle(direction_angle(center, q) - theta0)
        if any(_angle_eq(theta, s, eps) for s in seen):
            continue
        seen.append(theta)
        if _maps_to_self(multiset, lambda p, t=theta: p.rotated(t, center), eps):
            count += 1
    rho = max(count, 1)
    if key is not None:
        _RHO_MEMO.store(key, rho)
    return rho


def symmetry_axes(
    points: Sequence[Vec2], center: Vec2, eps: float = VIEW_EPS
) -> list[float]:
    """Directions (mod pi, in [0, pi)) of all mirror axes through ``center``."""
    if _AXES_MEMO.active():
        key = (points_key(points, center), eps)
        hit, cached = _AXES_MEMO.lookup(key)
        if hit:
            return list(cached)
    else:
        key = None
    multiset = [
        (p, m) for p, m in _multiset(points) if not p.approx_eq(center, eps)
    ]
    if not multiset:
        if key is not None:
            _AXES_MEMO.store(key, (0.0,))
        return [0.0]
    rings = _rings(multiset, center, eps)
    ring0 = rings[0]
    candidates: list[float] = []
    for p, _ in ring0:
        for q, _ in ring0:
            axis = norm_angle(
                (direction_angle(center, p) + direction_angle(center, q)) / 2.0
            ) % math.pi
            if not any(_axis_eq(axis, a, eps) for a in candidates):
                candidates.append(axis)
            # The two bisectors of a pair differ by pi/2.
            axis2 = (axis + math.pi / 2.0) % math.pi
            if not any(_axis_eq(axis2, a, eps) for a in candidates):
                candidates.append(axis2)
    axes: list[float] = []
    for axis in candidates:
        if _maps_to_self(
            multiset, lambda p, a=axis: _reflect(p, center, a), eps
        ):
            axes.append(axis)
    axes.sort()
    if key is not None:
        _AXES_MEMO.store(key, tuple(axes))
    return axes


def has_mirror_symmetry(
    points: Sequence[Vec2], center: Vec2, eps: float = VIEW_EPS
) -> bool:
    """Whether the configuration has at least one axis of symmetry."""
    return bool(symmetry_axes(points, center, eps))


def is_asymmetric(points: Sequence[Vec2], center: Vec2, eps: float = VIEW_EPS) -> bool:
    """``rho(P) = 1`` and no axis of symmetry — all views are distinct."""
    return rotational_symmetry(points, center, eps) == 1 and not has_mirror_symmetry(
        points, center, eps
    )


def _reflect(p: Vec2, center: Vec2, axis_angle: float) -> Vec2:
    """Reflect ``p`` across the line through ``center`` at ``axis_angle``."""
    v = p - center
    c, s = math.cos(2.0 * axis_angle), math.sin(2.0 * axis_angle)
    return center + Vec2(c * v.x + s * v.y, s * v.x - c * v.y)


def _angle_eq(a: float, b: float, eps: float) -> bool:
    d = norm_angle(a - b)
    return d <= eps or 2.0 * math.pi - d <= eps


def _axis_eq(a: float, b: float, eps: float) -> bool:
    d = abs(a - b) % math.pi
    return d <= eps or math.pi - d <= eps
