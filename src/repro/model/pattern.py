"""Target patterns ``F``.

A pattern is a multiset of points given to every robot *in its own local
coordinate system*; only its similarity class matters.  The library keeps
patterns in a canonical normal form — smallest enclosing circle centered at
the origin with radius 1 — mirroring the paper's convention that robots
rescale their frame so that ``C(P) = C(F)`` with unit radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..geometry import (
    EPS,
    Circle,
    Vec2,
    similar,
    smallest_enclosing_circle,
)


@dataclass(frozen=True)
class Pattern:
    """An immutable target pattern (multiset of points)."""

    points: tuple[Vec2, ...]

    @staticmethod
    def from_points(points: Iterable[Vec2]) -> "Pattern":
        """Build a pattern from any iterable of points."""
        pts = tuple(points)
        if not pts:
            raise ValueError("a pattern must contain at least one point")
        return Pattern(pts)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Vec2]:
        return iter(self.points)

    def sec(self) -> Circle:
        """Smallest enclosing circle ``C(F)``."""
        return smallest_enclosing_circle(self.points)

    def normalized(self) -> "Pattern":
        """The pattern scaled/translated so ``C(F)`` is the unit circle."""
        sec = self.sec()
        if sec.radius <= EPS:
            raise ValueError("cannot normalise a single-location pattern")
        return Pattern(
            tuple((p - sec.center) / sec.radius for p in self.points)
        )

    def distinct_points(self, eps: float = EPS) -> list[tuple[Vec2, int]]:
        """Distinct pattern locations with multiplicities."""
        found: list[tuple[Vec2, int]] = []
        for p in self.points:
            for i, (q, count) in enumerate(found):
                if p.approx_eq(q, eps):
                    found[i] = (q, count + 1)
                    break
            else:
                found.append((p, 1))
        return found

    def has_multiplicity(self, eps: float = EPS) -> bool:
        """True when some pattern location is requested more than once."""
        return any(count > 1 for _, count in self.distinct_points(eps))

    def second_closest_distance(self, center: Vec2) -> float:
        """``l_F``: distance to ``center`` of the second closest point."""
        distances = sorted(p.dist(center) for p in self.points)
        if len(distances) < 2:
            raise ValueError("l_F needs at least two pattern points")
        return distances[1]

    def matches(self, points: Sequence[Vec2], eps: float = EPS) -> bool:
        """Whether a configuration forms this pattern (similarity test)."""
        return similar(list(points), list(self.points), eps)

    def scaled_to(self, sec: Circle) -> "Pattern":
        """The pattern mapped so its enclosing circle equals ``sec``."""
        own = self.sec()
        factor = sec.radius / own.radius if own.radius > EPS else 1.0
        return Pattern(
            tuple(sec.center + (p - own.center) * factor for p in self.points)
        )
