"""Live telemetry: trace frames, the fan-out bus, spooling, the viewer.

The observability layer over the batch/service stack (ROADMAP item 5).
Strictly observe-only: enabling telemetry never consumes simulation
randomness and never changes a :class:`~repro.analysis.batch.RunRecord`
— the bit-for-bit equivalence suites run with it on and off.  Frames
are excluded from workload fingerprints; they are a *view* of a run,
not part of its identity.

Layers, bottom up:

* :mod:`repro.telemetry.frames` — the versioned frame schema and its
  single JSON serialization point (journal NaN/±inf sentinels);
* :mod:`repro.telemetry.bus` — bounded drop-oldest pub/sub between the
  job service and its SSE handler threads;
* :mod:`repro.telemetry.spool` — store-backed frame persistence for
  replay and fabric-mode streaming;
* :mod:`repro.telemetry.viewer` — the static HTML canvas viewer served
  at ``/v1/ui``.

Hook plumbing (how frames get *out* of the engine) lives in
:mod:`repro.hooks`; the wire surface lives in
:mod:`repro.service.http`.
"""

from .bus import Subscription, TelemetryBus
from .frames import (
    FRAME_SCHEMA_VERSION,
    TraceFrame,
    decode_frame,
    encode_frame,
)
from .spool import FrameSpool, spool_stats

__all__ = [
    "FRAME_SCHEMA_VERSION",
    "FrameSpool",
    "Subscription",
    "TelemetryBus",
    "TraceFrame",
    "decode_frame",
    "encode_frame",
    "spool_stats",
]
