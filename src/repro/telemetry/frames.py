"""Versioned, JSON-encodable per-step trace frames.

A :class:`TraceFrame` is the telemetry unit of the live observability
layer: one frame per applied scheduler action, carrying the acting
robot, the action kind and the full global configuration *after* the
action.  Frames are observational only — building one never touches a
simulation RNG, so a run with frames enabled is bit-for-bit identical
to the same run without (pinned by the telemetry equivalence tests).

The wire encoding is one standard-JSON line per frame with the exact
non-finite-float convention of the run journal
(:mod:`repro.analysis.journal`): ``NaN`` / ``±inf`` coordinates become
the string sentinels ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``.
The sentinel encoder is deliberately duplicated here rather than
imported — the journal module pulls in the batch/engine stack while
frames must stay importable from the engine itself — and a test pins
the two encoders to agree byte-for-byte.

``encode_frame`` is the *single* serialization point: the live SSE
stream, the store frame spool and the replay endpoint all emit its
output verbatim, which is what makes live-vs-replay byte equivalence a
structural property instead of a test-time coincidence.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

__all__ = [
    "FRAME_SCHEMA_VERSION",
    "TraceFrame",
    "decode_frame",
    "encode_frame",
]

#: Bump when the frame wire schema changes shape; spooled frames are
#: keyed by this version so old and new readers never mix payloads.
FRAME_SCHEMA_VERSION = 1


def _encode_float(value: float) -> "float | str":
    # Same sentinels as repro.analysis.journal._encode_float (pinned by
    # tests/telemetry/test_frames.py::test_sentinels_match_journal).
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_float(value) -> float:
    return float(value)


@dataclass(frozen=True)
class TraceFrame:
    """One applied scheduler action and the configuration it produced.

    Attributes:
        seed: the run's master seed (frames of one batch interleave on
            the wire; the seed is the demultiplexing key).
        step: the engine step counter after the action.
        action: ``"look"`` / ``"compute"`` / ``"move"``.
        robot: id of the robot the action was applied to.
        positions: global ``(x, y)`` of every robot, index-aligned with
            robot ids, after the action.
        phases: one character per robot — ``i`` idle, ``o`` observed,
            ``m`` moving — the LCM phase vector after the action.
        version: :data:`FRAME_SCHEMA_VERSION` of this frame's shape.
    """

    seed: int
    step: int
    action: str
    robot: int
    positions: tuple
    phases: str
    version: int = FRAME_SCHEMA_VERSION


def encode_frame(frame: TraceFrame) -> str:
    """One standard-JSON line for a frame (deterministic key order)."""
    payload = {
        "kind": "frame",
        "v": frame.version,
        "seed": frame.seed,
        "step": frame.step,
        "action": frame.action,
        "robot": frame.robot,
        "phases": frame.phases,
        "positions": [
            [_encode_float(float(x)), _encode_float(float(y))]
            for x, y in frame.positions
        ],
    }
    return json.dumps(payload, ensure_ascii=False, allow_nan=False)


def decode_frame(payload: "str | dict") -> TraceFrame:
    """Rebuild a frame from its JSON line (or already-parsed dict)."""
    if isinstance(payload, str):
        payload = json.loads(payload)
    if payload.get("kind") != "frame":
        raise ValueError(f"not a frame payload: kind={payload.get('kind')!r}")
    return TraceFrame(
        seed=int(payload["seed"]),
        step=int(payload["step"]),
        action=str(payload["action"]),
        robot=int(payload["robot"]),
        positions=tuple(
            (_decode_float(x), _decode_float(y))
            for x, y in payload["positions"]
        ),
        phases=str(payload["phases"]),
        version=int(payload.get("v", FRAME_SCHEMA_VERSION)),
    )
