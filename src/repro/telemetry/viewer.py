"""Static HTML viewer served at ``GET /v1/ui``.

One self-contained page, no external assets (the service is stdlib-only
and often runs air-gapped): a canvas rendering the robots of one seed
with zoom (wheel) and pan (drag), plus a stats panel fed by the same
SSE stream.  The page consumes the two streaming endpoints:

* ``/v1/jobs/<id>/events`` — live frames + rolling aggregates;
* ``/v1/runs/<fingerprint>/<seed>/replay`` — spooled replay.

It intentionally knows nothing the wire schema does not state: frames
are decoded per :data:`repro.telemetry.frames.FRAME_SCHEMA_VERSION`
and unknown event types are ignored, so viewer and service can evolve
independently under the /v1 contract.
"""

from __future__ import annotations

__all__ = ["VIEWER_HTML"]

VIEWER_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro telemetry viewer</title>
<style>
  body { margin: 0; font: 13px/1.4 system-ui, sans-serif; background: #11151a; color: #d8dee6; }
  #top { display: flex; gap: .5em; align-items: center; padding: .5em .75em; background: #1a2027; }
  #top input { background: #11151a; color: #d8dee6; border: 1px solid #3a4450; padding: .3em .5em; }
  #top button { background: #2a6db0; color: #fff; border: 0; padding: .35em .8em; cursor: pointer; }
  #wrap { display: flex; height: calc(100vh - 3em); }
  #canvas { flex: 1; cursor: grab; background: #11151a; }
  #stats { width: 19em; padding: .75em; background: #161b21; overflow-y: auto; }
  #stats h3 { margin: .2em 0 .5em; font-size: 1em; color: #8fb4d8; }
  #stats table { width: 100%; border-collapse: collapse; }
  #stats td { padding: .15em 0; border-bottom: 1px solid #242c35; }
  #stats td:last-child { text-align: right; font-variant-numeric: tabular-nums; }
  #status { color: #9aa7b4; margin-left: auto; }
</style>
</head>
<body>
<div id="top">
  <label>job <input id="job" size="8" placeholder="j1"></label>
  <button id="watch">watch</button>
  <label>replay <input id="fp" size="14" placeholder="fingerprint">
  <input id="seed" size="4" placeholder="seed"></label>
  <button id="replay">replay</button>
  <span id="status">idle</span>
</div>
<div id="wrap">
  <canvas id="canvas"></canvas>
  <div id="stats">
    <h3>frame</h3>
    <table>
      <tr><td>seed</td><td id="s-seed">-</td></tr>
      <tr><td>step</td><td id="s-step">-</td></tr>
      <tr><td>action</td><td id="s-action">-</td></tr>
      <tr><td>robot</td><td id="s-robot">-</td></tr>
      <tr><td>frames seen</td><td id="s-frames">0</td></tr>
    </table>
    <h3>batch</h3>
    <table>
      <tr><td>done / total</td><td id="s-done">-</td></tr>
      <tr><td>success</td><td id="s-success">-</td></tr>
      <tr><td>status</td><td id="s-jstatus">-</td></tr>
    </table>
  </div>
</div>
<script>
"use strict";
const canvas = document.getElementById("canvas");
const ctx = canvas.getContext("2d");
const FRAME_SCHEMA_VERSION = 1;
let view = { scale: 80, ox: 0, oy: 0 };
let frame = null, frames = 0, source = null, viewSeed = null;
let userView = false;  // once zoomed/panned, auto-fit stands down

function fitView(f) {
  // Auto-fit the world bounds of the first frame: swarm configurations
  // span hundreds of units, tiny formations a couple, and a fixed scale
  // renders one as a dot cloud off-screen and the other as one pixel.
  let lo_x = Infinity, hi_x = -Infinity, lo_y = Infinity, hi_y = -Infinity;
  f.positions.forEach((p) => {
    const x = num(p[0]), y = num(p[1]);
    if (!isFinite(x) || !isFinite(y)) return;
    lo_x = Math.min(lo_x, x); hi_x = Math.max(hi_x, x);
    lo_y = Math.min(lo_y, y); hi_y = Math.max(hi_y, y);
  });
  if (!isFinite(lo_x)) return;
  const span = Math.max(hi_x - lo_x, hi_y - lo_y, 1e-9);
  view.scale = 0.85 * Math.min(canvas.clientWidth, canvas.clientHeight) / span;
  view.ox = -(lo_x + hi_x) / 2;
  view.oy = -(lo_y + hi_y) / 2;
}
const PHASE_COLOR = { i: "#5d6b7a", o: "#e7c45a", m: "#57c7ff" };

function resize() {
  canvas.width = canvas.clientWidth * devicePixelRatio;
  canvas.height = canvas.clientHeight * devicePixelRatio;
  draw();
}
window.addEventListener("resize", resize);

function toScreen(x, y) {
  return [
    canvas.width / 2 + (x + view.ox) * view.scale * devicePixelRatio,
    canvas.height / 2 - (y + view.oy) * view.scale * devicePixelRatio,
  ];
}

function num(v) { return typeof v === "string" ? NaN : v; }

function draw() {
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  if (!frame) return;
  frame.positions.forEach((p, i) => {
    const x = num(p[0]), y = num(p[1]);
    if (!isFinite(x) || !isFinite(y)) return;
    const [sx, sy] = toScreen(x, y);
    ctx.beginPath();
    ctx.arc(sx, sy, 5 * devicePixelRatio, 0, 2 * Math.PI);
    ctx.fillStyle = PHASE_COLOR[frame.phases[i]] || "#d8dee6";
    ctx.fill();
    if (i === frame.robot) {
      ctx.strokeStyle = "#ff6d6d";
      ctx.lineWidth = 2 * devicePixelRatio;
      ctx.stroke();
    }
    ctx.fillStyle = "#9aa7b4";
    ctx.fillText(String(i), sx + 7 * devicePixelRatio, sy - 7 * devicePixelRatio);
  });
}

canvas.addEventListener("wheel", (e) => {
  e.preventDefault();
  userView = true;
  view.scale *= e.deltaY < 0 ? 1.15 : 1 / 1.15;
  draw();
}, { passive: false });
let drag = null;
canvas.addEventListener("mousedown", (e) => { drag = [e.clientX, e.clientY]; });
window.addEventListener("mouseup", () => { drag = null; });
window.addEventListener("mousemove", (e) => {
  if (!drag) return;
  userView = true;
  view.ox += (e.clientX - drag[0]) / view.scale;
  view.oy -= (e.clientY - drag[1]) / view.scale;
  drag = [e.clientX, e.clientY];
  draw();
});

function setStatus(text) { document.getElementById("status").textContent = text; }
function cell(id, value) { document.getElementById(id).textContent = value; }

function onFrame(payload) {
  const f = JSON.parse(payload);
  if (f.v !== FRAME_SCHEMA_VERSION) return;
  if (viewSeed === null) viewSeed = f.seed;
  if (f.seed !== viewSeed) return;  // render one seed; others pass by
  frame = f;
  frames += 1;
  if (frames === 1 && !userView) fitView(f);
  cell("s-seed", f.seed); cell("s-step", f.step);
  cell("s-action", f.action); cell("s-robot", f.robot);
  cell("s-frames", frames);
  draw();
}

function onAggregate(payload) {
  const a = JSON.parse(payload);
  cell("s-done", (a.done ?? "-") + " / " + (a.total ?? "-"));
  if (a.aggregate && a.aggregate.success !== undefined)
    cell("s-success", a.aggregate.success);
}

function onStatus(payload) {
  const s = JSON.parse(payload);
  if (s.status) cell("s-jstatus", s.status);
  if (s.done !== undefined) onAggregate(payload);
}

function connect(url, label) {
  if (source) source.close();
  frame = null; frames = 0; viewSeed = null; userView = false;
  source = new EventSource(url);
  setStatus("connecting: " + label);
  source.onopen = () => setStatus("streaming: " + label);
  source.onerror = () => setStatus("disconnected: " + label);
  source.addEventListener("frame", (e) => onFrame(e.data));
  source.addEventListener("aggregate", (e) => onAggregate(e.data));
  source.addEventListener("record", (e) => onAggregate(e.data));
  source.addEventListener("status", (e) => onStatus(e.data));
  source.addEventListener("end", () => { setStatus("ended: " + label); source.close(); });
}

document.getElementById("watch").onclick = () => {
  const job = document.getElementById("job").value.trim();
  if (job) connect("/v1/jobs/" + encodeURIComponent(job) + "/events", "job " + job);
};
document.getElementById("replay").onclick = () => {
  const fp = document.getElementById("fp").value.trim();
  const seed = document.getElementById("seed").value.trim();
  if (fp && seed !== "")
    connect("/v1/runs/" + encodeURIComponent(fp) + "/" + encodeURIComponent(seed) + "/replay",
            "replay " + fp.slice(0, 8) + "/" + seed);
};
resize();
</script>
</body>
</html>
"""
