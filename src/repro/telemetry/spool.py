"""Store-backed frame spooling for replay and fabric-mode streaming.

The :class:`FrameSpool` buffers encoded frames per seed and flushes
them in batches into the experiment store's ``frames`` table (see
:meth:`repro.store.ExperimentStore.put_frames`).  It is the bridge
between live telemetry and everything that happens *later*:

* ``GET /v1/runs/<fingerprint>/<seed>/replay`` streams the spooled
  payloads verbatim — byte-identical to the live SSE ``data:`` lines,
  because both sides serialize through
  :func:`repro.telemetry.frames.encode_frame` exactly once;
* in fabric mode the ledger-polling front-end has no in-process bus to
  the workers, so its SSE handler tails the spool instead.

Frames are deterministic (same code, same seed, same bytes), which
makes the spool naturally idempotent: the table's
``(fingerprint, seed, version, idx)`` primary key plus
``INSERT OR IGNORE`` means a retried worker attempt or a resubmitted
job re-writes identical rows and changes nothing.  A per-seed cap
bounds disk growth on pathological runs; capped-off frames are counted,
not silently lost (surfaced on ``/v1/readyz``).

Single-threaded by design: each spool instance lives inside one batch's
commit path (the facade's parent process), which is serial.  The
process-wide counters below are lock-guarded because several batches
may run on different threads of one service process.
"""

from __future__ import annotations

import threading

from .frames import TraceFrame, encode_frame

__all__ = ["FrameSpool", "spool_stats"]

#: Per-seed frame cap: a 300k-step run at ~60 bytes of JSON per robot
#: per frame is already tens of MB; beyond the cap frames are dropped
#: (counted) and the replay is a prefix.
DEFAULT_SEED_CAP = 100_000

#: Flush granularity: small enough that fabric-mode tailing sees frames
#: while the run is still going, large enough to amortize the insert.
DEFAULT_FLUSH_EVERY = 256

_STATS_LOCK = threading.Lock()
_STATS = {"spooled": 0, "dropped": 0}


def spool_stats() -> dict:
    """Process-wide spool counters (for the readiness endpoint)."""
    with _STATS_LOCK:
        return dict(_STATS)


def _count(key: str, amount: int) -> None:
    with _STATS_LOCK:
        _STATS[key] += amount


class FrameSpool:
    """Buffer frames per seed; flush encoded batches into a store."""

    def __init__(
        self,
        store,
        fingerprint: str,
        *,
        seed_cap: int = DEFAULT_SEED_CAP,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        self._store = store
        self._fingerprint = fingerprint
        self._seed_cap = seed_cap
        self._flush_every = max(1, flush_every)
        self._buffers: dict[int, list[str]] = {}
        self._counts: dict[int, int] = {}
        self._next_idx: dict[int, int] = {}
        self.spooled = 0
        self.dropped = 0

    def add(self, frame: TraceFrame) -> None:
        """Accept one frame; flush its seed's batch when full."""
        seed = frame.seed
        count = self._counts.get(seed, 0)
        if count >= self._seed_cap:
            self.dropped += 1
            _count("dropped", 1)
            return
        self._counts[seed] = count + 1
        buffer = self._buffers.setdefault(seed, [])
        buffer.append(encode_frame(frame))
        if len(buffer) >= self._flush_every:
            self.flush_seed(seed)

    def flush_seed(self, seed: int) -> None:
        """Write the seed's buffered frames through to the store."""
        buffer = self._buffers.pop(seed, None)
        if not buffer:
            return
        start = self._next_idx.get(seed, 0)
        self._store.put_frames(
            self._fingerprint, seed, buffer, start_idx=start
        )
        self._next_idx[seed] = start + len(buffer)
        self.spooled += len(buffer)
        _count("spooled", len(buffer))

    def flush_all(self) -> None:
        for seed in list(self._buffers):
            self.flush_seed(seed)

    def reset_seed(self, seed: int) -> None:
        """Restart a seed's spool (a pool worker died and is retried).

        Frames are deterministic, so the retry re-produces the flushed
        prefix byte-for-byte and ``INSERT OR IGNORE`` makes re-writing
        it a no-op — only the parent-side cursor has to rewind.
        """
        self._buffers.pop(seed, None)
        self._counts[seed] = 0
        self._next_idx[seed] = 0
