"""Bounded in-process pub/sub fan-out for telemetry events.

The :class:`TelemetryBus` sits between the job service (publisher) and
its SSE handler threads (subscribers).  Every subscriber owns a bounded
queue; a publish never blocks and never back-pressures the simulation —
when a subscriber's queue is full its *oldest* event is dropped to make
room (a live viewer wants the newest state, not a faithful backlog) and
the drop is counted, per subscriber and bus-wide.  The counters are
surfaced on ``GET /v1/readyz`` so a viewer that silently fell behind is
observable.

Events are plain dicts (``{"event": ..., "job": ..., "data": ...}``);
the bus does not interpret them.  Thread-safe throughout: publishers
and subscribers may run on any thread.
"""

from __future__ import annotations

import queue
import threading

__all__ = ["Subscription", "TelemetryBus"]

#: Default per-subscriber queue bound.  Sized for a viewer that polls
#: every few hundred milliseconds against a publisher emitting one
#: event per simulation step.
DEFAULT_QUEUE_SIZE = 1024


class Subscription:
    """One subscriber's bounded event queue (created by the bus)."""

    def __init__(self, maxlen: int) -> None:
        self._queue: "queue.Queue[dict]" = queue.Queue(maxsize=maxlen)
        self._dropped = 0
        self._lock = threading.Lock()

    @property
    def dropped(self) -> int:
        """Events dropped from *this* subscriber's queue (oldest-first)."""
        with self._lock:
            return self._dropped

    def get(self, timeout: "float | None" = None) -> "dict | None":
        """Next event, or ``None`` when ``timeout`` elapses empty."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()

    # Called only by the bus, under no external lock: the drop-oldest
    # dance tolerates races (a concurrent get just means less to drop).
    def _offer(self, event: dict) -> bool:
        try:
            self._queue.put_nowait(event)
            return True
        except queue.Full:
            pass
        try:
            self._queue.get_nowait()
        except queue.Empty:
            pass
        with self._lock:
            self._dropped += 1
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            pass
        return False


class TelemetryBus:
    """Drop-oldest fan-out of telemetry events to bounded subscribers."""

    def __init__(self, maxlen: int = DEFAULT_QUEUE_SIZE) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._subscribers: list[Subscription] = []
        self._published = 0
        self._dropped = 0

    def subscribe(self) -> Subscription:
        """Register a new subscriber; pair with :meth:`unsubscribe`."""
        sub = Subscription(self.maxlen)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscriber; unknown subscriptions are ignored."""
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def publish(self, event: dict) -> None:
        """Fan an event out to every subscriber without ever blocking."""
        with self._lock:
            subscribers = list(self._subscribers)
            self._published += 1
        dropped = 0
        for sub in subscribers:
            if not sub._offer(event):
                dropped += 1
        if dropped:
            with self._lock:
                self._dropped += dropped

    def stats(self) -> dict:
        """Counters for the readiness endpoint."""
        with self._lock:
            return {
                "subscribers": len(self._subscribers),
                "published": self._published,
                "dropped": self._dropped,
            }
