"""Baseline algorithms the experiments compare against."""

from .global_frame import GlobalFrameFormation
from .yamauchi_yamashita import YamauchiYamashita

__all__ = ["GlobalFrameFormation", "YamauchiYamashita"]
