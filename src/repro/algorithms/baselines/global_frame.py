"""Baseline: deterministic formation with a *shared* coordinate system.

The deterministic related work (Flocchini et al.; Fujinaga et al.)
established that oblivious robots can form any pattern exactly when they
agree on a common "North" and a common "Right" — i.e. a full common
coordinate system.  This baseline embodies that assumption in its
simplest useful form: every robot normalises its snapshot by the smallest
enclosing circle, sorts robots and targets in the (shared) lexicographic
order, and the first mismatched robot walks straight to its target.

It exists to make the paper's point measurable: under
:func:`repro.sim.engine.global_frames` it forms every pattern quickly and
deterministically; under the no-chirality frame policy the shared order
evaporates and it fails (experiment E4).
"""

from __future__ import annotations

from ...geometry import Similarity, Vec2, similar, smallest_enclosing_circle
from ...model import Pattern, Snapshot
from ...sim.context import ComputeContext
from ...sim.paths import Path
from ..base import Algorithm


class GlobalFrameFormation(Algorithm):
    """Deterministic pattern formation assuming a common frame."""

    name = "global-frame"

    def __init__(self, pattern: Pattern) -> None:
        self.target_pattern = pattern.normalized()
        self._targets = sorted(
            self.target_pattern.points, key=lambda p: (p.x, p.y)
        )

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        points = list(snapshot.points)
        if similar(points, list(self.target_pattern.points)):
            return None
        sec = smallest_enclosing_circle(points)
        if sec.radius <= 1e-12:
            return None
        norm = Similarity.scaling(1.0 / sec.radius).compose(
            Similarity.translation_of(-sec.center)
        )
        denorm = norm.inverse()
        normed = sorted(
            (norm.apply(p) for p in points), key=lambda p: (p.x, p.y)
        )
        me = norm.apply(snapshot.me)

        mover, target = self._next_move(normed)
        if mover is None or not me.approx_eq(mover, 1e-9):
            return None
        return Path.line(me, target).transformed(denorm)

    def _next_move(
        self, normed: list[Vec2]
    ) -> tuple[Vec2 | None, Vec2 | None]:
        """First mismatched robot (lex order) with a free target; if every
        mismatched robot's target is occupied (a permutation cycle), the
        first one detours to the midpoint to break the cycle."""
        mismatched: list[tuple[Vec2, Vec2]] = []
        for robot, target in zip(normed, self._targets):
            if not robot.approx_eq(target, 1e-9):
                mismatched.append((robot, target))
        if not mismatched:
            return None, None
        for robot, target in mismatched:
            if not any(q.approx_eq(target, 1e-9) for q in normed):
                return robot, target
        robot, target = mismatched[0]
        return robot, Vec2(
            (robot.x + target.x) / 2.0, (robot.y + target.y) / 2.0
        )
