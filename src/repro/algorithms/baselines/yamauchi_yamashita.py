"""Baseline: Yamauchi-Yamashita-style randomized formation.

[13] (Yamauchi & Yamashita, DISC 2014) solves randomized pattern
formation in ASYNC under three assumptions the paper under reproduction
removes: (i) common chirality, (ii) no pauses while moving, and (iii)
*continuous* randomness — each random choice draws a uniform point from a
segment, i.e. unboundedly many random bits (charged 64 per draw here).

No artifact of [13] exists; this is a faithful-in-spirit simplification
(documented in DESIGN.md): symmetry is broken by a single continuous draw
per closest robot (distinct radii with probability 1), the unique closest
robot then descends until *selected*, and the deterministic formation
phase is shared with the main algorithm so that measured differences
isolate the election.  Under a pausing ASYNC adversary the one-shot
continuous election can elect two robots concurrently (exactly the
failure mode assumption (ii) rules out), which experiment E5 measures.
"""

from __future__ import annotations

from ...model import Pattern, Snapshot
from ...sim.context import ComputeContext
from ...sim.paths import Path
from ..analysis import RTOL, Analysis
from ..dpf import dpf_compute
from ..form_pattern import FormPattern
from ..moves import radial_move


class YamauchiYamashita(FormPattern):
    """Randomized formation with chirality + continuous randomness."""

    name = "yamauchi-yamashita"

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        from ...geometry import similar

        from ..form_pattern import FORMATION_EPS

        an = Analysis(snapshot, self.pg.l_f)
        if similar(an.points, self.pg.points, FORMATION_EPS):
            return None
        join = self._final_join(an)
        if join is not None:
            mover, path = join
            return self._denormalize(an, path if an.i_am(mover) else None)
        rs = an.selected_robot
        if rs is not None:
            return self._denormalize(an, dpf_compute(an, self.pg, rs, ctx))
        return self._denormalize(an, self._continuous_election(an, ctx))

    def _continuous_election(
        self, an: Analysis, ctx: ComputeContext
    ) -> Path | None:
        """One continuous draw per tied-closest robot breaks every
        symmetry with probability 1; the unique closest robot descends
        until selected."""
        center = an.center
        my_radius = an.me.dist(center)
        others = [p for p in an.points if not an.i_am(p)]
        other_min = min(p.dist(center) for p in others)

        if my_radius < other_min - RTOL:
            # Unique closest: descend to the selected radius.
            target = 0.9 * min(an.l_f / 2.0, other_min / 2.0)
            if my_radius <= target + 1e-9:
                return None
            return radial_move(an.me, center, target)
        if my_radius > other_min + RTOL:
            return None
        # Tied among the closest: draw a uniform inward displacement.
        u = ctx.random_float()  # 64 bits — the cost the paper removes
        step = my_radius * (0.05 + 0.20 * u)
        return radial_move(an.me, center, my_radius - step)
