"""Pattern-side precomputation.

Everything the algorithm derives from the target pattern ``F`` alone —
independent of any snapshot — computed once when the algorithm is built:

* the normalised pattern (unit ``C(F)`` at the origin) and its center
  ``c(F)``;
* ``l_F`` (distance of the second closest point to the center), which
  scales the *selected robot* predicate;
* ``f_s``: the maximal-view point not holding ``C(F)`` — the selected
  robot's final destination — and ``F' = F - {f_s}``;
* ``f_max``: a maximal-view point of ``F'`` — the anchor that aligns the
  pattern with the global coordinate system ``Z``;
* ``theta_F'``: the angular clearance around ``f_max`` (condition (iv) of
  phase 1);
* the target circles ``C_1, ..., C_m`` (distinct radii of ``F'`` points,
  decreasing) with their multiplicities ``m_i``;
* the polar coordinates of every ``F'`` point in the ``f_max``-anchored
  frame, in the lexicographic order used to pair robots to destinations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cmp_to_key

from ..geometry import (
    Vec2,
    angmin,
    direction_angle,
    norm_angle,
    point_holds_sec,
    without_point,
)
from ..geometry.tolerance import approx_eq
from ..model import Pattern
from ..model.views import compare_views, local_view
from ..regular import config_center

#: Radius grouping tolerance for the target circles.
CIRCLE_TOL = 1e-7


@dataclass(frozen=True)
class TargetCircle:
    """One target circle ``C_i``: its radius and how many points it hosts."""

    radius: float
    count: int


class PatternGeometry:
    """Precomputed, snapshot-independent data about the target pattern."""

    def __init__(self, pattern: Pattern) -> None:
        if len(pattern) < 4:
            raise ValueError(
                "pattern formation needs at least 4 points (the paper's "
                "guarantees need n >= 7)"
            )
        normalized = pattern.normalized()
        self.pattern = normalized
        self.points: list[Vec2] = list(normalized.points)
        #: c(F) — regular-set center if F is regular, else the SEC center.
        self.center: Vec2 = config_center(self.points)

        radii = sorted(p.dist(self.center) for p in self.points)
        self.l_f: float = radii[1]

        self.f_s: Vec2 = self._pick_f_s()
        self.f_prime: list[Vec2] = without_point(self.points, self.f_s)
        self.f_max: Vec2 = self._pick_f_max()
        self.f_max_radius: float = self.f_max.dist(self.center)
        self.theta_f_prime: float = self._theta_f_prime()

        #: orientation of f_max's maximal view (True = counterclockwise in
        #: the pattern's own coordinates); fixes the mirror of F'.
        self.f_max_direct: bool = local_view(
            self.f_prime, self.center, self.f_max
        ).direct

        self.circles: list[TargetCircle] = self._target_circles()
        #: (radius, angle) of every F' point in the f_max-anchored polar
        #: frame, sorted lexicographically (the d_1 < ... < d_{n-1} order).
        self.targets: list[tuple[float, float]] = self._target_coords()

    # ------------------------------------------------------------------
    def _pick_f_s(self) -> Vec2:
        """Max-view point of F that does not hold C(F)."""
        candidates = [
            p
            for p in _distinct(self.points)
            if not p.approx_eq(self.center)
            and not point_holds_sec(self.points, p)
        ]
        if not candidates:
            raise ValueError("no pattern point is free of the enclosing circle")
        views = [(p, local_view(self.points, self.center, p)) for p in candidates]
        views.sort(
            key=cmp_to_key(lambda a, b: compare_views(a[1], b[1])), reverse=True
        )
        return views[0][0]

    def _pick_f_max(self) -> Vec2:
        """Max-view point of F' (about c(F))."""
        candidates = [
            p for p in _distinct(self.f_prime) if not p.approx_eq(self.center)
        ]
        views = [(p, local_view(self.f_prime, self.center, p)) for p in candidates]
        views.sort(
            key=cmp_to_key(lambda a, b: compare_views(a[1], b[1])), reverse=True
        )
        return views[0][0]

    def _theta_f_prime(self) -> float:
        """theta_F' = min({pi} U {angmin(f_max, c, f) : same-radius f})."""
        best = math.pi
        for f in self.f_prime:
            if f.approx_eq(self.f_max):
                continue
            if approx_eq(f.dist(self.center), self.f_max_radius, CIRCLE_TOL * 10):
                best = min(best, angmin(self.f_max, self.center, f))
        return best

    def _target_circles(self) -> list[TargetCircle]:
        """Distinct radii of F' (descending) with point counts."""
        radii = sorted((p.dist(self.center) for p in self.f_prime), reverse=True)
        circles: list[TargetCircle] = []
        for r in radii:
            if circles and approx_eq(circles[-1].radius, r, CIRCLE_TOL):
                circles[-1] = TargetCircle(circles[-1].radius, circles[-1].count + 1)
            else:
                circles.append(TargetCircle(r, 1))
        return circles

    def _target_coords(self) -> list[tuple[float, float]]:
        """F' points as (radius, angle) in the f_max frame, lex sorted.

        The frame: center c(F), reference direction through f_max, angles
        growing in f_max's view orientation.  This is exactly how F' is
        "mirrored and rotated" onto the global system Z.
        """
        ref = direction_angle(self.center, self.f_max)
        coords: list[tuple[float, float]] = []
        for p in self.f_prime:
            if p.approx_eq(self.center):
                coords.append((0.0, 0.0))
                continue
            raw = direction_angle(self.center, p) - ref
            angle = norm_angle(raw if self.f_max_direct else -raw)
            if angle > 2.0 * math.pi - 1e-9 or angle < 1e-12:
                angle = 0.0
            # Snap the radius to its circle's canonical value so the
            # lexicographic sort never lets 1e-16 radius noise outrank the
            # angle — the pairing with robots depends on this order.
            radius = p.dist(self.center)
            index = self.circle_index_of_radius(radius)
            if index is not None:
                radius = self.circles[index].radius
            coords.append((radius, angle))
        coords.sort()
        return coords

    # ------------------------------------------------------------------
    def circle_index_of_radius(self, radius: float) -> int | None:
        """Index i (0-based) of the circle with this radius, if any."""
        for i, c in enumerate(self.circles):
            if approx_eq(c.radius, radius, 1e-6):
                return i
        return None

    def smallest_circle_radius(self) -> float:
        """Radius of C_m (the innermost target circle)."""
        return self.circles[-1].radius


def _distinct(points: list[Vec2]) -> list[Vec2]:
    out: list[Vec2] = []
    for p in points:
        if not any(p.approx_eq(q) for q in out):
            out.append(p)
    return out
