"""ψ_RSB restricted to Q^c: no regular set in the configuration.

By Property 1 the configuration then has trivial symmetricity and no
mirror axis, so all views are distinct and a unique maximal-view robot
``r_max`` (among those not holding ``C(P)``) exists.  Only ``r_max``
moves: radially toward the center.  If some point of its radial path
turns the configuration into one *containing* a (shifted) regular set,
it stops at the first such point (handing over to ψ_RSB|Q); otherwise it
descends until it is selected.

With this library's view order (closest robots have the greatest views)
``r_max`` is always one of the innermost robots, so its descent crosses
no other robot's radius: the only structure it can create is a shifted
regular set in which it is the shifted robot, which is probed just below
the current innermost radius.
"""

from __future__ import annotations

from ...geometry import Vec2, without_point
from ...model.views import max_view_not_holding_sec
from ...regular import find_shifted_regular
from ...sim.paths import Path
from ..analysis import RTOL, Analysis
from ..moves import radial_move
from ..tuning import DEFAULT_TUNING, Tuning


def nonregular_compute(
    an: Analysis, tuning: Tuning = DEFAULT_TUNING
) -> Path | None:
    """Movement for the observing robot when no regular set exists."""
    center = an.center
    candidates = max_view_not_holding_sec(an.points, center)
    if len(candidates) != 1:
        # Near-symmetric tie below the regularity tolerance: measure-zero
        # for the workloads we run; waiting is always safe.
        return None
    rmax = candidates[0]
    if not an.i_am(rmax):
        return None

    my_radius = an.me.dist(center)
    d_min = min(p.dist(center) for p in an.points)
    # Probe: would standing strictly below every tie create a shifted
    # regular set with me as the shifted robot?  (Directions never change
    # along a radial path, so this single probe decides the whole ray.)
    probe_radius = 0.99 * d_min
    if probe_radius > 1e-9:
        probe_me = center + (an.me - center).normalized() * probe_radius
        probe_points = without_point(an.points, an.me) + [probe_me]
        if find_shifted_regular(probe_points) is not None:
            if my_radius > probe_radius + RTOL:
                return radial_move(an.me, center, probe_radius)
            return None

    others_min = min(
        (p.dist(center) for p in an.points if not an.i_am(p)),
        default=an.l_f,
    )
    target = tuning.select_margin * min(an.l_f / 2.0, others_min / 2.0)
    if my_radius <= target + 1e-9:
        return None  # already selected (caller re-dispatches next cycle)
    return radial_move(an.me, center, target)
