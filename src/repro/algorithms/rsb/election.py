"""ψ_RSB, regular branch: randomized robot election.

The configuration contains a (non-shifted) regular set ``Q``.  The robots
of ``Q`` that are closest to the center flip a fair coin: heads, move an
eighth of their radius toward the center; tails, move away (bounded so as
to stay strictly inside the largest disc free of ``P \\ Q`` robots).
A robot becomes *elected* when it is strictly below 7/8 of every other
member's radius; once it observes its own election it commits by shifting
on its circle, creating the 1/8-shifted regular set the next branch
handles.  One coin per robot per cycle — the paper's randomness budget.
"""

from __future__ import annotations

import math

from ...geometry import Vec2, direction_angle, min_angle
from ...geometry.tolerance import norm_angle, norm_angle_signed
from ...model.views import local_view
from ...regular import RegularSet
from ...sim.context import ComputeContext
from ...sim.paths import Path
from ..analysis import RTOL, Analysis
from ..moves import arc_move_to_angle, radial_move
from ..pattern_geometry import PatternGeometry
from ..tuning import DEFAULT_TUNING, Tuning
from .partial_pattern import partial_pattern_guard


def election_compute(
    an: Analysis,
    reg: RegularSet,
    pg: PatternGeometry,
    ctx: ComputeContext,
    tuning: Tuning = DEFAULT_TUNING,
) -> Path | None:
    """Movement for the observing robot in the election branch."""
    center = reg.geometry.center
    members = list(reg.members)
    if not any(an.i_am(p) for p in members):
        return None  # robots outside the regular set never move here

    # Appendix A guard: pull Q strictly inside the leftover pattern radii
    # before electing, and cap outward moves afterwards.
    guard = partial_pattern_guard(an, reg, pg)
    forced_radius = guard.move_for(an)
    if forced_radius is not None:
        return radial_move(an.me, center, forced_radius)
    if guard.moves:
        return None  # someone else must descend first

    my_radius = an.me.dist(center)
    others_q = [p for p in members if not an.i_am(p)]
    min_others_q = min(p.dist(center) for p in others_q)

    if my_radius < tuning.elect_threshold * min_others_q - RTOL:
        # I observe my own election: commit by shifting on my circle.
        return _elected_shift(an, center, ctx, tuning)

    if any(
        p.dist(center) < my_radius - RTOL
        for p in an.points
        if not an.i_am(p)
    ):
        return None  # someone is strictly closer; I do not move

    # I am one of the closest robots: flip the one coin of this cycle.
    complement = [
        p for p in an.points if not any(p.approx_eq(q) for q in members)
    ]
    d = min((p.dist(center) for p in complement), default=math.inf)
    if ctx.random_bit():
        return radial_move(an.me, center, my_radius * tuning.toward_factor)
    away = min(0.5 * (d - my_radius), my_radius * tuning.away_cap)
    if away <= 1e-12:
        return None
    target = my_radius + away
    if guard.cap is not None and target >= guard.cap - RTOL:
        return None
    return radial_move(an.me, center, target)


def _elected_shift(
    an: Analysis, center: Vec2, ctx: ComputeContext, tuning: Tuning
) -> Path:
    """The elected robot's commitment move: arc by alpha_min(P)/8 on its
    circle, toward its closest angular neighbour (the direction that
    decreases its minimum angle, as Definition 3(b) requires)."""
    alpha = min_angle(center, an.points)
    theta_me = direction_angle(center, an.me)
    side = _side_toward_nearest(an, center, theta_me, ctx)
    target = norm_angle(theta_me + side * alpha * tuning.shift_small)
    return arc_move_to_angle(an.me, center, target)


def _side_toward_nearest(
    an: Analysis, center: Vec2, theta_me: float, ctx: ComputeContext
) -> float:
    """+1/-1: the arc direction with the nearest angular neighbour.

    Ties (perfectly symmetric neighbourhoods) are broken by the robot's
    view orientation when it has one, else by its own chirality — either
    way the first δ of movement freezes the choice into the
    configuration."""
    best_delta = math.inf
    best_side = 0.0
    for q in an.points:
        if an.i_am(q) or q.approx_eq(center):
            continue
        signed = norm_angle_signed(direction_angle(center, q) - theta_me)
        if abs(signed) < 1e-9:
            continue
        if abs(signed) < best_delta - 1e-9:
            best_delta = abs(signed)
            best_side = 1.0 if signed > 0 else -1.0
        elif abs(abs(signed) - best_delta) <= 1e-9:
            best_side = 0.0  # tie: neighbours at equal angles on both sides
    if best_side != 0.0:
        return best_side
    view = local_view(an.points, center, an.me)
    if not view.symmetric:
        return 1.0 if view.direct else -1.0
    return 1.0 if ctx.own_chirality else -1.0
