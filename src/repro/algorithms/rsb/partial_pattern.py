"""``handlePartiallyFormedPattern`` (Appendix A of the paper).

Guard run before the probabilistic election: if the pattern could be
accidentally completed — the robots outside the regular set already sit on
pattern points (under some rotation/reflection with ``C(F) = C(P)``) and
all but one of the regular set's robots stand on half-lines through the
remaining pattern points — then the election's radial moves could create
the "n-1 robots form F minus a point" configuration without anyone
noticing.  The guard first pulls the regular set's robots strictly inside
the remaining pattern radii, then caps the election's outward moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...geometry import Vec2, direction_angle
from ...geometry.tolerance import approx_eq, norm_angle
from ...regular import RegularSet
from ..analysis import Analysis
from ..pattern_geometry import PatternGeometry

#: Tolerance for matching robots to pattern points / half-lines.
MATCH_TOL = 1e-6
ANGLE_MATCH_TOL = 1e-5


@dataclass
class PartialPatternGuard:
    """Outcome of the guard.

    ``moves`` maps robots (by position) to target radii they must reach
    before the election may continue; ``cap`` bounds the radius of any
    outward election move (None = no cap).
    """

    moves: list[tuple[Vec2, float]] = field(default_factory=list)
    cap: float | None = None

    def move_for(self, an: Analysis) -> float | None:
        """Target radius for the observing robot, if it must move."""
        for p, radius in self.moves:
            if an.i_am(p):
                return radius
        return None


def partial_pattern_guard(
    an: Analysis, reg: RegularSet, pg: PatternGeometry
) -> PartialPatternGuard:
    """Evaluate the Appendix A guard for the current configuration."""
    center = reg.geometry.center
    members = list(reg.members)
    complement = [
        p for p in an.points if not any(p.approx_eq(q) for q in members)
    ]
    f_rest = _align_complement(an, center, complement, pg, members)
    if f_rest is None:
        return PartialPatternGuard()
    if not _enough_on_half_lines(center, members, f_rest):
        return PartialPatternGuard()

    radii = sorted((f.dist(center) for f in f_rest), reverse=True)
    d1 = radii[0]
    inner = [r for r in radii if r < d1 - MATCH_TOL]
    d2 = inner[0] if inner else d1
    d = (d1 + d2) / 2.0

    above_d1 = [p for p in members if p.dist(center) > d1 + MATCH_TOL]
    if above_d1:
        return PartialPatternGuard(moves=[(p, d1) for p in above_d1])
    above_d = [p for p in members if p.dist(center) > d + MATCH_TOL]
    if above_d:
        return PartialPatternGuard(moves=[(p, d) for p in above_d])
    return PartialPatternGuard(cap=d)


def _align_complement(
    an: Analysis,
    center: Vec2,
    complement: list[Vec2],
    pg: PatternGeometry,
    members: list[Vec2],
) -> list[Vec2] | None:
    """Find a rotation/reflection of F (with C(F)=C(P)) placing every
    complement robot on a pattern point; return the unmatched pattern
    points ``F_r``, or None.

    With a proper complement, every checked rotation must match it point
    for point.  With Q = P the complement is empty and any rotation
    matches trivially — candidates are then anchored on the regular set's
    own members (their *directions* are what condition (ii) tests), and
    the guard's half-line count does the filtering.
    """
    pattern = pg.points  # unit SEC at origin, like the analysis frame
    if len(complement) >= len(pattern):
        return None
    candidate_angles = _candidate_rotations(center, complement, pattern, members)
    best: list[Vec2] | None = None
    for reflect in (False, True):
        for theta in candidate_angles:
            mapped = [_transform(f, theta, reflect) for f in pattern]
            rest = _match_all(complement, mapped)
            if rest is None:
                continue
            if complement:
                return rest
            # Empty complement: keep the first rotation whose half-line
            # condition actually holds; trivial matches are not enough.
            if _enough_on_half_lines(center, members, rest):
                return rest
            best = best if best is not None else rest
    return best


def _candidate_rotations(
    center: Vec2,
    complement: list[Vec2],
    pattern: list[Vec2],
    members: list[Vec2],
) -> list[float]:
    """Rotations aligning a pattern point with an anchor robot.

    Anchors are complement robots when they exist (the rotation must map
    pattern points onto them exactly) and regular-set members otherwise
    (their directions must align with pattern directions)."""
    out: list[float] = []
    if complement:
        for p in complement[:2]:
            tp = direction_angle(Vec2.zero(), p) if not p.approx_eq(Vec2.zero()) else 0.0
            rp = p.norm()
            for f in pattern:
                if not approx_eq(f.norm(), rp, 10 * MATCH_TOL):
                    continue
                tf = direction_angle(Vec2.zero(), f) if not f.approx_eq(Vec2.zero()) else 0.0
                out.append(norm_angle(tp - tf))
                out.append(norm_angle(-(tp + tf)))  # reflection partner
        return out
    for p in members[:2]:
        if p.approx_eq(center):
            continue
        tp = direction_angle(center, p)
        for f in pattern:
            if f.approx_eq(Vec2.zero()):
                continue
            tf = direction_angle(Vec2.zero(), f)
            out.append(norm_angle(tp - tf))
            out.append(norm_angle(-(tp + tf)))
    return out or [0.0]


def _transform(f: Vec2, theta: float, reflect: bool) -> Vec2:
    g = f.mirrored_x() if reflect else f
    return g.rotated(theta)


def _match_all(complement: list[Vec2], mapped: list[Vec2]) -> list[Vec2] | None:
    """Match every complement robot to a distinct mapped pattern point;
    return leftover pattern points or None."""
    remaining = list(mapped)
    for p in complement:
        for i, f in enumerate(remaining):
            if p.approx_eq(f, 10 * MATCH_TOL):
                del remaining[i]
                break
        else:
            return None
    return remaining


def _enough_on_half_lines(
    center: Vec2, members: list[Vec2], f_rest: list[Vec2]
) -> bool:
    """At least |Q|-1 members stand on half-lines through distinct F_r
    points."""
    needed = len(members) - 1
    used = [False] * len(f_rest)
    count = 0
    for p in members:
        tp = direction_angle(center, p)
        for i, f in enumerate(f_rest):
            if used[i] or f.approx_eq(center):
                continue
            tf = direction_angle(center, f)
            diff = norm_angle(tp - tf)
            if min(diff, 2.0 * 3.141592653589793 - diff) <= ANGLE_MATCH_TOL:
                used[i] = True
                count += 1
                break
    return count >= needed
