"""ψ_RSB, shifted branch: the configuration contains an ε-shifted set.

State machine (following the paper's prose — the pseudo-code's ``S`` is
over the members of the shifted regular set ``Q``, the robots of
``P \\ Q`` never move in this sub-algorithm):

  A. some Q-robot is off the shifted robot's circle and ε != 1/8
       → the shifted robot adjusts its arc so ε becomes exactly 1/8;
  B. some Q-robot is off the circle and ε = 1/8
       → those robots descend radially onto the shifted robot's circle;
  C. every Q-robot sits on the shifted robot's circle and ε < 1/4
       → the shifted robot arcs on to ε = 1/4 (it now *knows* the others
         are static: a robot exactly on the target circle has finished);
  D. ε = 1/4 and the other Q-robots share one circle at or above the
     shifted robot
       → the shifted robot moves radially inward until *selected*.

Definition 3(c) guarantees the shifted robot is one of the closest robots
of the whole configuration, so "off the circle" always means strictly
farther out.
"""

from __future__ import annotations

from ...geometry import Vec2, angmin, direction_angle
from ...geometry.tolerance import approx_eq, norm_angle, norm_angle_signed
from ...regular import ShiftedRegularSet
from ...sim.paths import Path
from ..analysis import Analysis
from ..moves import arc_move_to_angle, radial_move
from ..tuning import DEFAULT_TUNING, Tuning

#: Tolerance on "ε equals 1/8 (or 1/4)".
EPS_TOL = 1e-4

#: Tolerance for "on the same circle" radius comparisons.  The shifted
#: set's center is recovered numerically (to ~1e-7 in unit-scale
#: coordinates), so radii measured from it carry that noise; 5e-5 is far
#: above it and far below every geometric scale of the algorithm.
CIRCLE_TOL = 5e-5

#: Safety factor for the selected-radius destination.
SELECT_MARGIN = 0.9


def shifted_compute(
    an: Analysis,
    shifted: ShiftedRegularSet,
    tuning: Tuning = DEFAULT_TUNING,
) -> Path | None:
    """Movement for the observing robot in the shifted branch."""
    center = shifted.center
    re = shifted.shifted_robot
    re_radius = re.dist(center)
    others = [q for q in shifted.members if not q.approx_eq(re)]
    off_circle = [
        q for q in others if q.dist(center) > re_radius + CIRCLE_TOL
    ]
    eps = shifted.epsilon

    # D first: ε = 1/4 and the other Q-robots all share one circle at or
    # above me — I am in (or about to start) the final dive, and the fact
    # that I am *below* their common circle must not re-trigger case A.
    radii = [q.dist(center) for q in others]
    common_circle = bool(radii) and max(radii) - min(radii) <= CIRCLE_TOL
    if (
        approx_eq(eps, tuning.shift_big, EPS_TOL)
        and common_circle
        and min(radii) >= re_radius - CIRCLE_TOL
    ):
        if not an.i_am(re):
            return None
        other_min = min(
            (p.dist(center) for p in an.points if not p.approx_eq(re)),
            default=an.l_f,
        )
        target = tuning.select_margin * min(an.l_f / 2.0, other_min / 2.0)
        if re_radius <= target + 1e-9:
            return None  # already selected; nothing to do
        return radial_move(an.me, center, target)

    if off_circle and not approx_eq(eps, tuning.shift_small, EPS_TOL):
        # A: adjust the shift to exactly 1/8 (only the shifted robot moves).
        if an.i_am(re):
            return _arc_to_shift(an, shifted, tuning.shift_small)
        return None

    if off_circle:
        # B: ε = 1/8 — the off-circle members of Q descend to re's circle.
        for q in off_circle:
            if an.i_am(q):
                return radial_move(an.me, center, re_radius)
        return None

    if not an.i_am(re):
        return None

    if eps < tuning.shift_big - EPS_TOL:
        # C: everyone is on my circle and static; open the shift to 1/4.
        return _arc_to_shift(an, shifted, tuning.shift_big)
    return None


def _arc_to_shift(
    an: Analysis, shifted: ShiftedRegularSet, target_eps: float
) -> Path:
    """Arc on my circle so the shift becomes ``target_eps`` exactly.

    The side is the one I already committed to (the side of the virtual
    grid position r' I currently stand on) — condition (b) of
    Definition 3 encodes it in the configuration itself.
    """
    center = shifted.center
    theta_virtual = direction_angle(center, shifted.virtual_position)
    theta_me = direction_angle(center, an.me)
    side = 1.0 if norm_angle_signed(theta_me - theta_virtual) >= 0.0 else -1.0
    alpha_min = angmin(an.me, center, shifted.virtual_position) / shifted.epsilon
    target_angle = norm_angle(theta_virtual + side * target_eps * alpha_min)
    return arc_move_to_angle(an.me, center, target_angle)
