"""ψ_RSB: the randomized symmetry-breaking algorithm (Section 3).

Dispatch: a configuration with an ε-shifted regular set is handled by the
deterministic shift/descend machinery; one with a plain regular set by the
coin-flipping election; anything else (asymmetric) by the deterministic
``r_max`` descent.  The branch partition mirrors the paper's
``ψ_RSB|Q`` / ``ψ_RSB|Q^c`` split, and every branch's goal is the same:
produce a configuration with a *selected* robot, at which point the
deterministic pattern formation ψ_DPF takes over.
"""

from __future__ import annotations

from ...sim.context import ComputeContext
from ...sim.paths import Path
from ..analysis import Analysis
from ..pattern_geometry import PatternGeometry
from ..tuning import DEFAULT_TUNING, Tuning
from .election import election_compute
from .nonregular_case import nonregular_compute
from .shifted_case import shifted_compute


def rsb_compute(
    an: Analysis,
    pg: PatternGeometry,
    ctx: ComputeContext,
    tuning: Tuning = DEFAULT_TUNING,
) -> Path | None:
    """One ψ_RSB step for the observing robot."""
    shifted = an.shifted
    if shifted is not None:
        return shifted_compute(an, shifted, tuning)
    reg = an.regular
    if reg is not None:
        return election_compute(an, reg, pg, ctx, tuning)
    return nonregular_compute(an, tuning)
