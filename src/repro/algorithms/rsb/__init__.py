"""ψ_RSB — randomized symmetry breaking (probabilistic leader election)."""

from .election import election_compute
from .nonregular_case import nonregular_compute
from .partial_pattern import PartialPatternGuard, partial_pattern_guard
from .rsb import rsb_compute
from .shifted_case import shifted_compute

__all__ = [
    "PartialPatternGuard",
    "election_compute",
    "nonregular_compute",
    "partial_pattern_guard",
    "rsb_compute",
    "shifted_compute",
]
