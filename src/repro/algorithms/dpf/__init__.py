"""ψ_DPF — deterministic pattern formation without chirality."""

from .dpf import dpf_compute, dpf_decision
from .frame import FrameResult, build_frame, find_rmax, pattern_angle_guard, phase1
from .rotation import is_pattern_prime_formed, paired_targets, rotation_phase
from .state import DpfState

__all__ = [
    "DpfState",
    "FrameResult",
    "build_frame",
    "dpf_compute",
    "dpf_decision",
    "find_rmax",
    "is_pattern_prime_formed",
    "paired_targets",
    "pattern_angle_guard",
    "phase1",
    "rotation_phase",
]
