"""Shared state for one ψ_DPF activation.

Built once per compute() call after phase 1 succeeds: the global frame Z,
the robots of ``P' = P - {r_s}`` with their Z-polar coordinates in the
canonical lexicographic order, and the angular-safety bound protecting
``r_max``'s uniqueness (no robot may ever become strictly angularly closer
to the selected robot than ``r_max`` is).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...geometry import PolarFrame, Vec2, angmin
from ...geometry.tolerance import approx_eq
from ...sim.paths import Path
from ..analysis import Analysis
from ..moves import arc_move_sweep, radial_move
from ..pattern_geometry import PatternGeometry
from .frame import pattern_angle_guard

#: Position matching tolerances (normalised units / radians).
RAD_TOL = 1e-6
ANG_TOL = 1e-6


@dataclass
class DpfState:
    """Everything phases 2-3 need, computed once per activation."""

    an: Analysis
    pg: PatternGeometry
    rs: Vec2
    rmax: Vec2
    z: PolarFrame
    prime: list[Vec2] = field(init=False)
    coords: list[tuple[Vec2, float, float]] = field(init=False)  # (p, r, ang)
    eta: float = field(init=False)
    guard: float = field(init=False)
    park_bound: float = field(init=False)

    def __post_init__(self) -> None:
        self.prime = [p for p in self.an.points if not p.approx_eq(self.rs)]
        coords = []
        for p in self.prime:
            polar = self.z.to_polar(p)
            angle = polar.angle
            if angle > 2.0 * math.pi - ANG_TOL or angle < ANG_TOL:
                angle = 0.0
            # Snap radii onto the target circles so the lexicographic
            # order is immune to 1e-12 noise in "on the circle" radii.
            radius = polar.radius
            index = self.pg.circle_index_of_radius(radius)
            if index is not None:
                radius = self.pg.circles[index].radius
            coords.append((p, radius, angle))
        coords.sort(key=lambda t: (t[1], t[2]))
        self.coords = coords
        self.eta = angmin(self.rs, self.z.center, self.rmax)
        self.guard = pattern_angle_guard(self.pg)
        # Robots may park at angles strictly below this; it keeps every
        # robot's angular distance to r_s strictly above eta (see frame.py).
        self.park_bound = 2.0 * math.pi - self.eta - self.guard / 2.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def coord_of(self, p: Vec2) -> tuple[float, float]:
        """(radius, Z-angle) of a robot of P'."""
        for q, r, a in self.coords:
            if q.approx_eq(p, 1e-9):
                return r, a
        polar = self.z.to_polar(p)
        return polar.radius, polar.angle

    def on_circle(self, radius: float) -> list[tuple[Vec2, float]]:
        """Robots of P' on the circle of ``radius``, with angles, sorted by
        angle ascending."""
        out = [
            (p, a)
            for p, r, a in self.coords
            if approx_eq(r, radius, RAD_TOL)
        ]
        out.sort(key=lambda t: t[1])
        return out

    def interior_of(self, radius: float) -> list[tuple[Vec2, float, float]]:
        """Robots of P' strictly inside ``radius`` (lex sorted)."""
        return [t for t in self.coords if t[1] < radius - RAD_TOL]

    def between(self, r_low: float, r_high: float) -> list[tuple[Vec2, float, float]]:
        """Robots of P' strictly between the two radii (lex sorted)."""
        return [
            t for t in self.coords if r_low + RAD_TOL < t[1] < r_high - RAD_TOL
        ]

    def is_rmax(self, p: Vec2) -> bool:
        return p.approx_eq(self.rmax, 1e-9)

    # ------------------------------------------------------------------
    # movement constructors (Z-aware)
    # ------------------------------------------------------------------
    def arc_to(self, me: Vec2, target_angle: float, increasing: bool) -> Path:
        """Arc on my circle to a Z-angle, sweeping in the given Z sense."""
        _, cur = self.coord_of(me)
        if increasing:
            sweep_z = (target_angle - cur) % (2.0 * math.pi)
        else:
            sweep_z = -((cur - target_angle) % (2.0 * math.pi))
        sweep_local = sweep_z if self.z.direct else -sweep_z
        return arc_move_sweep(me, self.z.center, sweep_local)

    def radial(self, me: Vec2, target_radius: float) -> Path:
        """Radial move toward/away from the center."""
        return radial_move(me, self.z.center, target_radius)

    def ray_blocked(self, me: Vec2, target_radius: float) -> bool:
        """Whether another robot stands on my ray between me and target."""
        my_r, my_a = self.coord_of(me)
        lo, hi = sorted((my_r, target_radius))
        for p, r, a in self.coords:
            if p.approx_eq(me, 1e-9):
                continue
            if lo - RAD_TOL <= r <= hi + RAD_TOL and _ang_eq(a, my_a):
                return True
        rs_polar = self.z.to_polar(self.rs)
        if lo - RAD_TOL <= rs_polar.radius <= hi + RAD_TOL and _ang_eq(
            rs_polar.angle, my_a
        ):
            return True
        return False

    def free_parking_angle(
        self, start: float, low: float, high: float
    ) -> float:
        """An angle in (low, high) near ``start`` with no robot on it (any
        circle) — avoids creating ray or position coincidences."""
        if high - low <= 3 * ANG_TOL:
            # Degenerate interval (should not happen once the over-bound
            # pre-phase has cleared the parking zone); stay near its middle.
            return (low + high) / 2.0
        candidate = min(max(start, low + ANG_TOL), high - ANG_TOL)
        taken = [a for _, _, a in self.coords]
        rs_angle = self.z.to_polar(self.rs).angle
        taken.append(rs_angle)
        for _ in range(64):
            if all(not _ang_eq(candidate, t, 10 * ANG_TOL) for t in taken):
                return candidate
            candidate = low + (candidate - low) * 0.87
        return candidate


def _ang_eq(a: float, b: float, tol: float = ANG_TOL) -> bool:
    d = abs(a - b) % (2.0 * math.pi)
    return d <= tol or 2.0 * math.pi - d <= tol


def max_gap_with(angles: list[float], extra: float | None = None) -> float:
    """Largest angular gap among the given directions (2*pi when empty)."""
    values = sorted(angles + ([extra] if extra is not None else []))
    if not values:
        return 2.0 * math.pi
    gaps = [
        (values[(i + 1) % len(values)] - values[i]) % (2.0 * math.pi)
        for i in range(len(values) - 1)
    ]
    gaps.append((values[0] - values[-1]) % (2.0 * math.pi))
    return max(gaps)
