"""ψ_DPF: deterministic pattern formation without chirality (Section 4).

Orchestrates the phase chain.  Every activation re-derives the whole
pipeline from the snapshot (robots are oblivious) and executes the first
phase whose condition fails:

  1. global coordinate system (phase1 / frame.py);
  2. null-angle pre-phase, |C(F) ∩ F'| = 2 pre-phase;
  3. per-circle triplet clean_exterior / locate_enough / remove_excess;
  4. rotation onto the pattern points.

The final step — the selected robot joining the pattern — is the main
algorithm's line 3 and lives in form_pattern.py.
"""

from __future__ import annotations

from ...geometry import Vec2
from ...sim.context import ComputeContext
from ...sim.paths import Path
from ..analysis import Analysis
from ..pattern_geometry import PatternGeometry
from .fix_enclosing import fix_enclosing_phase
from .frame import phase1
from .placement import (
    Moves,
    clean_exterior,
    locate_enough,
    null_angle_phase,
    over_bound_phase,
    remove_excess,
)
from .rotation import rotation_phase
from .state import DpfState


def dpf_compute(
    an: Analysis, pg: PatternGeometry, rs: Vec2, ctx: ComputeContext
) -> Path | None:
    """One ψ_DPF step for the observing robot (r_s is selected)."""
    return _my_move(an, dpf_decision(an, pg, rs))


def dpf_decision(
    an: Analysis, pg: PatternGeometry, rs: Vec2
) -> "tuple[tuple[Vec2, Path], ...]":
    """The configuration-level ψ_DPF decision: who moves, and where.

    Pure function of the analysed configuration (never touches the
    compute context): the phase chain nominates movers with their paths
    in normalised coordinates, and each robot merely checks whether it
    is one of them.  Exposed separately so the observer-independent part
    can be memoised per configuration (see ``FormPattern.compute``)."""
    result = phase1(an, pg, rs)
    if result.move is not None:
        return (result.move,)
    if result.frame is None or result.rmax is None:
        return ()

    state = DpfState(an, pg, rs, result.rmax, result.frame)

    for moves in _phase_chain(state):
        if moves is None:
            continue
        return tuple(moves)
    return ()


def _phase_chain(state: DpfState):
    yield null_angle_phase(state)
    yield over_bound_phase(state)
    yield fix_enclosing_phase(state)
    for i in range(len(state.pg.circles)):
        yield clean_exterior(state, i)
        yield locate_enough(state, i)
        yield remove_excess(state, i)
    yield rotation_phase(state)


def _my_move(an: Analysis, moves: Moves) -> Path | None:
    for mover, path in moves:
        if an.i_am(mover):
            return path
    return None
