"""ψ_DPF phase 3: rotate robots on their circles onto the pattern points.

Robots and targets are paired by the shared lexicographic order on
(radius, Z-angle); every robot moves along its own circle toward its
target through the arc that does **not** contain the null-angle point (so
the pairing order is invariant), stopping halfway to any robot in the
way; robots on the enclosing circle additionally never let ``C(P)``
change.  The waiting relation is acyclic (robots on a circle behave as on
a segment), so no deadlock is possible — Lemma 10 of the paper.
"""

from __future__ import annotations

import math

from ...geometry.tolerance import approx_eq
from .placement import Moves, _sec_arc
from .state import ANG_TOL, RAD_TOL, DpfState


def _close(a: float, b: float, tol: float = ANG_TOL) -> bool:
    d = abs(a - b) % (2.0 * math.pi)
    return d <= tol or 2.0 * math.pi - d <= tol


def rotation_phase(state: DpfState) -> Moves | None:
    """Move each mismatched robot toward its paired target."""
    pairs = paired_targets(state)
    if pairs is None:
        return None  # radius profile mismatched: earlier phases must act
    moves: Moves = []
    done = True
    for (robot, my_r, my_a), (t_r, t_a) in pairs:
        if _close(my_a, t_a):
            continue
        done = False
        path = _arc_toward(state, robot, my_r, my_a, t_a)
        if path is not None:
            moves.append((robot, path))
    if done:
        return None
    return moves if moves else None


def paired_targets(state: DpfState):
    """Robots of P' paired with F' targets by lexicographic rank.

    Returns None when the radius profiles disagree (phase 2 incomplete).
    """
    if len(state.coords) != len(state.pg.targets):
        return None
    pairs = []
    for robot_entry, target in zip(state.coords, state.pg.targets):
        _, my_r, _ = robot_entry
        t_r, _ = target
        if not approx_eq(my_r, t_r, 10 * RAD_TOL):
            return None
        pairs.append((robot_entry, target))
    return pairs


def is_pattern_prime_formed(state: DpfState) -> bool:
    """Whether P' already coincides with F' in the global frame."""
    pairs = paired_targets(state)
    if pairs is None:
        return False
    return all(_close(a, t_a) for (_, _, a), (_, t_a) in pairs)


def _arc_toward(
    state: DpfState, robot, my_r: float, my_a: float, t_a: float
):
    """One rotation step: toward the target, not through angle 0, halting
    halfway to any same-circle robot on the way.

    A robot already standing on my own target does not block me when the
    target is a multiplicity point with room left (the Appendix C rule:
    robots sharing a destination may stack there)."""
    increasing = t_a > my_a
    target_mult = sum(
        1
        for r_t, a_t in state.pg.targets
        if approx_eq(r_t, my_r, 10 * RAD_TOL) and _close(a_t, t_a)
    )
    bound = t_a
    for other, ang in state.on_circle(my_r):
        if other.approx_eq(robot, 1e-9):
            continue
        if target_mult > 1 and _close(ang, t_a):
            continue  # stacking onto my own multiplicity target
        if increasing and my_a < ang <= bound + ANG_TOL:
            bound = min(bound, (my_a + ang) / 2.0)
        elif not increasing and bound - ANG_TOL <= ang < my_a:
            bound = max(bound, (my_a + ang) / 2.0)
    if abs(bound - my_a) <= ANG_TOL:
        return None
    if approx_eq(my_r, 1.0, RAD_TOL):
        return _sec_arc(state, robot, my_a, bound, state.on_circle(1.0))
    return state.arc_to(robot, bound, increasing)
