"""ψ_DPF special pre-phase (Appendix B): ``|C(F) ∩ F'| = 2``.

When the pattern keeps only two points on the enclosing circle, the two
robots that will hold ``C(P)`` must be steered to *exactly* those two
(antipodal) points before anyone else may leave the circle — two robots
cannot rotate on ``C(P)`` without breaking it, so a third robot is raised
first, then the greatest and smallest robots dock at the two targets
while the others spread between them, and finally the leftovers descend.
"""

from __future__ import annotations

import math

from ...geometry.tolerance import approx_eq
from .placement import (
    Moves,
    _highest_radius_below,
    _lowest_radius_above,
    _next_angle_above,
    _sec_arc,
    _shares_circle,
)
from .state import ANG_TOL, RAD_TOL, DpfState


def fix_enclosing_phase(state: DpfState) -> Moves | None:
    """Active only when the pattern has exactly two enclosing points."""
    if state.pg.circles[0].count != 2:
        return None
    targets = sorted(
        a for r, a in state.pg.targets if approx_eq(r, 1.0, RAD_TOL)
    )
    if len(targets) != 2:
        return None
    t_lo, t_hi = targets
    on_sec = state.on_circle(1.0)

    if len(on_sec) == 2:
        angles = sorted(a for _, a in on_sec)
        if _close(angles[0], t_lo) and _close(angles[1], t_hi):
            return None  # docked: phase satisfied
        return _raise_third(state)

    if len(on_sec) < 2:
        return _raise_third(state)

    # Three or more robots on C(P): dock the extremes, spread the middle.
    r_lo, a_lo = on_sec[0]
    r_hi, a_hi = on_sec[-1]
    if _close(a_lo, t_lo) and _close(a_hi, t_hi):
        # Anchors docked: the second smallest robot steps inward.
        mover, my_a = on_sec[1]
        barrier = _highest_radius_below(state, 1.0, floor=_floor(state))
        target_radius = (1.0 + barrier) / 2.0
        if state.ray_blocked(mover, target_radius):
            nxt = _next_angle_above(state, my_a)
            park = state.free_parking_angle((my_a + nxt) / 2.0, my_a, nxt)
            return [(mover, state.arc_to(mover, park, increasing=True))]
        return [(mover, state.radial(mover, target_radius))]

    moves: Moves = []
    middles = on_sec[1:-1]
    span = t_hi - t_lo
    for idx, (robot, ang) in enumerate(on_sec):
        if robot.approx_eq(r_lo, 1e-9) and idx == 0:
            goal = t_lo
        elif robot.approx_eq(r_hi, 1e-9) and idx == len(on_sec) - 1:
            goal = t_hi
        else:
            j = idx  # middles keep their rank between the anchors
            goal = t_lo + span * j / (len(middles) + 1)
        if _close(ang, goal):
            continue
        path = _sec_arc(state, robot, ang, goal, on_sec)
        if path is not None:
            moves.append((robot, path))
    return moves if moves else None


def _raise_third(state: DpfState) -> Moves:
    """Raise the greatest interior robot onto C(P), below everyone there."""
    interior = state.interior_of(1.0)
    mover, my_r, my_a = interior[-1]
    if state.is_rmax(mover):
        # Never consume r_max for this; take the next greatest.
        if len(interior) >= 2:
            mover, my_r, my_a = interior[-2]
        else:
            return []
    if _shares_circle(state, mover, my_r):
        barrier = _lowest_radius_above(state, my_r, cap=1.0)
        return [(mover, state.radial(mover, (my_r + barrier) / 2.0))]
    on_sec = state.on_circle(1.0)
    a = min((ang for _, ang in on_sec), default=2.0 * math.pi)
    a = min(a, state.park_bound)
    if 0.0 < my_a < a - ANG_TOL and not state.ray_blocked(mover, 1.0):
        return [(mover, state.radial(mover, 1.0))]
    park = state.free_parking_angle(a / 2.0, 0.0, a)
    return [(mover, state.arc_to(mover, park, increasing=False))]


def _floor(state: DpfState) -> float:
    if len(state.pg.circles) > 1:
        return state.pg.circles[1].radius
    return 2.0 * state.z.to_polar(state.rs).radius + RAD_TOL


def _close(a: float, b: float, tol: float = ANG_TOL) -> bool:
    d = abs(a - b) % (2.0 * math.pi)
    return d <= tol or 2.0 * math.pi - d <= tol
