"""ψ_DPF phase 1: create the global oriented coordinate system ``Z``.

``Z`` is the polar frame every robot can reconstruct from any snapshot:
center ``c(P)``, reference direction through ``r_max``, orientation the
one maximising the selected robot's coordinates.  ``r_max`` is the unique
robot of ``P - {r_s}`` that is simultaneously

  (i)   radially innermost,
  (ii)  angularly closest to the selected robot, with
  (iii) ``|r_max| <= |f_max|``, and
  (iv)  enough angular clearance: ``2 angmin(r_s, c, r_max) < theta_F``.

When no such robot exists the selected robot manufactures one: it walks
to the center, then steps out a small angle away from the closest robot.

Note on (iv): the paper bounds the clearance by ``theta_F'`` computed over
same-radius pattern points only.  For the frame to survive phases 2-3 no
robot may ever become strictly angularly closer to ``r_s`` than ``r_max``
— including robots standing on *any* pattern point near ``r_max``'s ray —
so this implementation strengthens the bound to the minimum over all
pattern directions (documented in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...geometry import PolarFrame, Vec2, angmin, direction_angle
from ...geometry.tolerance import norm_angle
from ...sim.paths import Path
from ..analysis import RTOL, Analysis
from ..moves import move_toward, radial_move
from ..pattern_geometry import PatternGeometry


@dataclass
class FrameResult:
    """Outcome of phase 1 for one activation."""

    frame: PolarFrame | None          # defined when r_max exists
    rmax: Vec2 | None
    move: tuple[Vec2, Path] | None    # (mover, path) when the phase is active
    satisfied: bool                   # all four conditions hold


def pattern_angle_guard(pg: PatternGeometry) -> float:
    """The strengthened clearance bound: minimum positive angular distance
    from ``f_max``'s direction to any other F' point's direction, capped by
    ``theta_F'`` and pi."""
    guard = min(math.pi, pg.theta_f_prime)
    for radius, angle in pg.targets:
        if radius <= 1e-9:
            continue
        dist = min(angle, 2.0 * math.pi - angle)
        if dist > 1e-9:
            guard = min(guard, dist)
    return guard


def build_frame(an: Analysis, rs: Vec2, rmax: Vec2) -> PolarFrame:
    """The global frame Z for a given r_s / r_max pair."""
    center = an.center
    reference = direction_angle(center, rmax)
    ccw_angle = norm_angle(direction_angle(center, rs) - reference)
    # Orientation maximising r_s's angular coordinate.
    direct = ccw_angle > math.pi
    return PolarFrame(center, reference, direct)


def find_rmax(
    an: Analysis, pg: PatternGeometry, rs: Vec2
) -> tuple[Vec2 | None, bool]:
    """(r_max, condition_iii) — r_max satisfying (i), (ii), (iv), or None.

    The second component reports whether (iii) also holds.
    """
    center = an.center
    others = [p for p in an.points if not p.approx_eq(rs)]
    if not others or rs.approx_eq(center):
        return None, False
    min_radius = min(p.dist(center) for p in others)
    min_angle_rs = min(angmin(rs, center, p) for p in others)
    guard = pattern_angle_guard(pg)

    candidates = [
        p
        for p in others
        if abs(p.dist(center) - min_radius) <= RTOL
        and abs(angmin(rs, center, p) - min_angle_rs) <= 1e-7
    ]
    if len(candidates) != 1:
        return None, False
    rmax = candidates[0]
    if 2.0 * angmin(rs, center, rmax) >= guard:
        return None, False
    cond_iii = rmax.dist(center) <= pg.f_max_radius + RTOL
    return rmax, cond_iii


def phase1(an: Analysis, pg: PatternGeometry, rs: Vec2) -> FrameResult:
    """Evaluate phase 1; return the frame and/or the required movement."""
    center = an.center
    others = [p for p in an.points if not p.approx_eq(rs)]

    if rs.approx_eq(center, 1e-7):
        # r_s is parked at the center: step out to manufacture r_max.
        target = _step_out_target(an, pg, rs, others)
        return FrameResult(None, None, (rs, move_toward(rs, target)), False)

    rmax, cond_iii = find_rmax(an, pg, rs)
    if rmax is None:
        # No admissible r_max: r_s walks to the center first.
        return FrameResult(None, None, (rs, move_toward(rs, center)), False)

    frame = build_frame(an, rs, rmax)
    if not cond_iii:
        # r_max must descend to |f_max| (radial: the frame is unaffected).
        return FrameResult(
            frame, rmax, (rmax, radial_move(rmax, center, pg.f_max_radius)), False
        )
    return FrameResult(frame, rmax, None, True)


def _step_out_target(
    an: Analysis, pg: PatternGeometry, rs: Vec2, others: list[Vec2]
) -> Vec2:
    """Where r_s moves when leaving the center.

    Distance ``min(l_F, min |r|) / 2``; direction a small angle off the
    closest robot, so that robot becomes the unique r_max satisfying (ii)
    and (iv)."""
    center = an.center
    min_radius = min(p.dist(center) for p in others)
    d = min(an.l_f, min_radius) / 2.0
    closest = [p for p in others if abs(p.dist(center) - min_radius) <= RTOL]
    anchor = _best_anchor(an, closest)
    theta_anchor = direction_angle(center, anchor)

    guard = pattern_angle_guard(pg)
    # Angular clearance to the anchor's nearest same-or-other robots, so
    # the anchor is the *unique* angularly-closest robot to r_s.
    nearest_gap = min(
        (
            angmin(anchor, center, q)
            for q in others
            if not q.approx_eq(anchor)
        ),
        default=math.pi,
    )
    eta = 0.25 * min(guard / 2.0, nearest_gap)
    return center + Vec2.polar(d, theta_anchor + eta)


def _best_anchor(an: Analysis, closest: list[Vec2]) -> Vec2:
    """Deterministic choice among radius-tied closest robots."""
    # Any deterministic, similarity-invariant choice works; use the robot
    # with the lexicographically greatest local view.
    from functools import cmp_to_key

    from ...model.views import compare_views, local_view

    if len(closest) == 1:
        return closest[0]
    entries = [(p, local_view(an.points, an.center, p)) for p in closest]
    entries.sort(key=cmp_to_key(lambda a, b: compare_views(a[1], b[1])), reverse=True)
    return entries[0][0]
