"""ψ_DPF phase 2: put the right number of robots on each target circle.

Sub-phases, each with a *phase condition* (when it holds the sub-phase is
skipped); a robot's activation executes the first sub-phase whose
condition fails:

* ``null_angle`` — no robot other than ``r_max`` may stand on ``r_max``'s
  half-line (unless it occupies an F' target that lies on it);
* ``clean_exterior(i)`` — no robot strictly between ``C_{i-1}`` and
  ``C_i``: stragglers are parked on ``C_i`` beyond everyone already there;
* ``locate_enough(i)`` — ``C_i`` hosts at least ``m_i`` robots: interior
  robots are raised onto ``C_i`` below everyone already there;
* ``remove_excess(i)`` — ``C_i`` hosts exactly ``m_i`` robots: for inner
  circles the smallest robot steps off inward; on the enclosing circle the
  ``m_1`` keepers first form a regular ``m_1``-gon (so the others can
  leave without disturbing ``C(P)``).

All parking angles stay inside ``(0, park_bound)``: strictly off
``r_max``'s half-line and strictly clear of the selected robot's angular
neighbourhood, which keeps the global frame Z well-defined throughout.
"""

from __future__ import annotations

import math

from ...geometry import Vec2
from ...geometry.tolerance import approx_eq
from ...sim.paths import Path
from .state import ANG_TOL, RAD_TOL, DpfState, max_gap_with

Moves = list[tuple[Vec2, Path]]

#: Tolerance for the C(P)-preservation gap check: the enclosing circle is
#: preserved as long as no angular gap *exceeds* pi (a gap of exactly pi
#: means a diametral support pair, which still determines the circle).
SEC_GAP_SLACK = 1e-9


# ----------------------------------------------------------------------
# pre-phase: clear r_max's half-line
# ----------------------------------------------------------------------
def null_angle_phase(state: DpfState) -> Moves | None:
    """Move robots (other than r_max) off the null angle."""
    offenders = []
    for p, r, a in state.coords:
        if state.is_rmax(p):
            continue
        if a > ANG_TOL:
            continue
        if _on_null_target(state, r):
            continue
        offenders.append((p, r))
    if not offenders:
        return None

    positive = [a for _, _, a in state.coords if a > ANG_TOL]
    limit = min(positive) if positive else math.pi / 2.0
    limit = min(limit, state.park_bound)
    moves: Moves = []
    for k, (p, _) in enumerate(offenders):
        target = state.free_parking_angle(
            limit * (k + 1) / (len(offenders) + 1), 0.0, limit
        )
        moves.append((p, state.arc_to(p, target, increasing=True)))
    return moves


def _on_null_target(state: DpfState, radius: float) -> bool:
    """Whether an F' target with null angle exists at this radius."""
    for r_t, a_t in state.pg.targets:
        if approx_eq(r_t, radius, RAD_TOL) and (
            a_t <= ANG_TOL or a_t >= 2.0 * math.pi - ANG_TOL
        ):
            return True
    return False


# ----------------------------------------------------------------------
# pre-phase: clear the angular safety zone near r_s's direction
# ----------------------------------------------------------------------
def over_bound_phase(state: DpfState) -> Moves | None:
    """Relocate robots parked beyond the angular safety bound.

    Initial (or RSB-inherited) positions may place robots at Z-angles in
    ``(park_bound, 2*pi)`` — inside the corridor reserved for the selected
    robot's direction.  The placement machinery assumes that corridor is
    empty on the *inner* circles (parking intervals invert otherwise), so
    such robots arc back below the bound first.  Robots on the enclosing
    circle are exempt: their angular moves are constrained by C(P)
    preservation and are handled by the dedicated enclosing-circle phases.
    Robots standing on an F' target (angle below the bound by
    construction) are never offenders.
    """
    offenders = [
        (p, r, a)
        for p, r, a in state.coords
        if a > state.park_bound + ANG_TOL
        and not state.is_rmax(p)
        and r < 1.0 - RAD_TOL
    ]
    if not offenders:
        return None
    # The smallest-angle offender goes first: everything between it and
    # the free zone is below the bound already, so its way is clear up to
    # (at worst) a halfway clamp against a same-circle robot.
    mover, my_r, my_a = min(offenders, key=lambda t: t[2])
    below = [
        a
        for p, r, a in state.coords
        if not p.approx_eq(mover, 1e-9) and a < my_a
    ]
    floor = max(below) if below else 0.0
    floor = min(floor, state.park_bound - 2 * ANG_TOL)
    target = state.free_parking_angle(
        (floor + state.park_bound) / 2.0, floor, state.park_bound
    )
    # Stop halfway to any same-circle robot on the decreasing way.
    for other, ang in state.on_circle(my_r):
        if other.approx_eq(mover, 1e-9):
            continue
        if target - ANG_TOL <= ang < my_a:
            target = max(target, (my_a + ang) / 2.0)
    if abs(target - my_a) <= ANG_TOL:
        return []
    if approx_eq(my_r, 1.0, RAD_TOL):
        path = _sec_arc(state, mover, my_a, target, state.on_circle(1.0))
        return [(mover, path)] if path is not None else []
    return [(mover, state.arc_to(mover, target, increasing=False))]


# ----------------------------------------------------------------------
# clean_exterior(i)
# ----------------------------------------------------------------------
def clean_exterior(state: DpfState, i: int) -> Moves | None:
    """No robot may remain strictly between C_{i-1} and C_i."""
    if i == 0:
        return None
    r_i = state.pg.circles[i].radius
    r_prev = state.pg.circles[i - 1].radius
    stragglers = state.between(r_i, r_prev)
    if not stragglers:
        return None
    mover, my_r, my_a = stragglers[0]  # lex-smallest in exterior(C_i)

    if _shares_circle(state, mover, my_r):
        barrier = _highest_radius_below(state, my_r, floor=r_i)
        return [(mover, state.radial(mover, (my_r + barrier) / 2.0))]

    on_target = state.on_circle(r_i)
    a = max((ang for _, ang in on_target), default=0.0)
    if my_a > a + ANG_TOL and not state.ray_blocked(mover, r_i):
        return [(mover, state.radial(mover, r_i))]
    target = state.free_parking_angle(
        (a + state.park_bound) / 2.0, a, state.park_bound
    )
    return [(mover, state.arc_to(mover, target, increasing=True))]


# ----------------------------------------------------------------------
# locate_enough(i)
# ----------------------------------------------------------------------
def locate_enough(state: DpfState, i: int) -> Moves | None:
    """C_i must host at least m_i robots."""
    circle = state.pg.circles[i]
    if len(state.on_circle(circle.radius)) >= circle.count:
        return None
    interior = state.interior_of(circle.radius)
    if not interior:
        return None  # nothing to raise; earlier stages must act first
    mover, my_r, my_a = interior[-1]  # lex-greatest interior robot

    if state.is_rmax(mover):
        # r_max keeps its null angle: pure radial ascent onto C_i (its
        # target f_max lives there at angle 0).
        return [(mover, state.radial(mover, circle.radius))]

    if _shares_circle(state, mover, my_r):
        barrier = _lowest_radius_above(state, my_r, cap=circle.radius)
        return [(mover, state.radial(mover, (my_r + barrier) / 2.0))]

    on_target = state.on_circle(circle.radius)
    a = min((ang for _, ang in on_target), default=2.0 * math.pi)
    a = min(a, state.park_bound)
    if 0.0 < my_a < a - ANG_TOL and not state.ray_blocked(mover, circle.radius):
        return [(mover, state.radial(mover, circle.radius))]
    target = state.free_parking_angle(a / 2.0, 0.0, a)
    return [(mover, state.arc_to(mover, target, increasing=False))]


# ----------------------------------------------------------------------
# remove_excess(i)
# ----------------------------------------------------------------------
def remove_excess(state: DpfState, i: int) -> Moves | None:
    """C_i must host exactly m_i robots."""
    circle = state.pg.circles[i]
    on_circle = state.on_circle(circle.radius)
    if len(on_circle) <= circle.count:
        return None
    if i > 0:
        mover, _ = on_circle[0]  # smallest robot on C_i
        floor = (
            state.pg.circles[i + 1].radius
            if i + 1 < len(state.pg.circles)
            else 2.0 * state.z.to_polar(state.rs).radius + RAD_TOL
        )
        barrier = _highest_radius_below(state, circle.radius, floor=floor)
        target_radius = (circle.radius + barrier) / 2.0
        if state.ray_blocked(mover, target_radius):
            # Nudge off the blocked ray first.
            _, my_a = state.coord_of(mover)
            nxt = _next_angle_above(state, my_a)
            target = state.free_parking_angle(
                (my_a + nxt) / 2.0, my_a, nxt
            )
            return [(mover, state.arc_to(mover, target, increasing=True))]
        return [(mover, state.radial(mover, target_radius))]
    return _remove_excess_sec(state, circle.count, on_circle)


def _remove_excess_sec(
    state: DpfState, m1: int, on_circle: list[tuple[Vec2, float]]
) -> Moves | None:
    """Excess robots on the enclosing circle (i = 1, m1 >= 3).

    The m1 greatest robots aim at the regular m1-gon with the null-angle
    line as axis of symmetry (vertices at (2k+1) pi/m1); the excess robots
    squeeze into the arc (0, pi/m1).  Once the gon stands, the smallest
    robot steps inward.
    """
    extras = len(on_circle) - m1
    keepers = on_circle[extras:]
    gon = [(2 * k + 1) * math.pi / m1 for k in range(m1)]
    keepers_placed = all(
        _ang_close(ang, g) for (_, ang), g in zip(keepers, gon)
    )
    if keepers_placed:
        mover, _ = on_circle[0]
        barrier = _highest_radius_below(state, 1.0, floor=_next_circle_floor(state))
        target_radius = (1.0 + barrier) / 2.0
        if state.ray_blocked(mover, target_radius):
            _, my_a = state.coord_of(mover)
            nxt = _next_angle_above(state, my_a)
            target = state.free_parking_angle((my_a + nxt) / 2.0, my_a, nxt)
            return [(mover, state.arc_to(mover, target, increasing=True))]
        return [(mover, state.radial(mover, target_radius))]

    moves: Moves = []
    slot = math.pi / m1
    extra_targets = [slot * (j + 1) / (extras + 1) for j in range(extras)]
    assignments = list(zip(on_circle, extra_targets + gon))
    for (robot, ang), target in assignments:
        if _ang_close(ang, target):
            continue
        path = _sec_arc(state, robot, ang, target, on_circle)
        if path is not None:
            moves.append((robot, path))
    return moves if moves else None


# ----------------------------------------------------------------------
# arcs on the enclosing circle that must preserve C(P)
# ----------------------------------------------------------------------
def _sec_arc(
    state: DpfState,
    me: Vec2,
    my_angle: float,
    target: float,
    on_circle: list[tuple[Vec2, float]],
) -> Path | None:
    """Arc toward ``target`` on C(P): never pass a neighbour, never let the
    largest angular gap of the enclosing-circle robots exceed pi."""
    increasing = target > my_angle
    others = [
        ang for robot, ang in on_circle if not robot.approx_eq(me, 1e-9)
    ]
    # Order preservation: stop halfway to the first robot on the way —
    # including one sitting exactly on the target (tolerances on both
    # ends, or an ulp of angle noise lets a full move land on a robot).
    bound = target
    for ang in others:
        if increasing and my_angle < ang <= target + ANG_TOL:
            bound = min(bound, (my_angle + ang) / 2.0)
        elif not increasing and target - ANG_TOL <= ang < my_angle:
            bound = max(bound, (my_angle + ang) / 2.0)
    # C(P) preservation: binary search the farthest admissible angle.
    admissible = _max_sec_preserving(others, my_angle, bound, increasing)
    if abs(admissible - my_angle) <= ANG_TOL:
        return None
    return state.arc_to(me, admissible, increasing)


def _max_sec_preserving(
    others: list[float], start: float, goal: float, increasing: bool
) -> float:
    """Farthest angle toward ``goal`` keeping max gap <= pi."""
    if max_gap_with(others, goal) <= math.pi + SEC_GAP_SLACK:
        return goal
    lo, hi = 0.0, 1.0  # fraction of the way from start to goal
    for _ in range(50):
        mid = (lo + hi) / 2.0
        candidate = start + (goal - start) * mid
        if max_gap_with(others, candidate) <= math.pi + SEC_GAP_SLACK:
            lo = mid
        else:
            hi = mid
    return start + (goal - start) * lo


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _shares_circle(state: DpfState, me: Vec2, my_r: float) -> bool:
    for p, r, _ in state.coords:
        if p.approx_eq(me, 1e-9):
            continue
        if approx_eq(r, my_r, RAD_TOL):
            return True
    rs_r = state.z.to_polar(state.rs).radius
    return approx_eq(rs_r, my_r, RAD_TOL)


def _highest_radius_below(state: DpfState, radius: float, floor: float) -> float:
    best = floor
    for _, r, _ in state.coords:
        if r < radius - RAD_TOL:
            best = max(best, r)
    rs_r = state.z.to_polar(state.rs).radius
    if rs_r < radius - RAD_TOL:
        best = max(best, rs_r)
    return best


def _lowest_radius_above(state: DpfState, radius: float, cap: float) -> float:
    best = cap
    for _, r, _ in state.coords:
        if r > radius + RAD_TOL:
            best = min(best, r)
    return best


def _next_circle_floor(state: DpfState) -> float:
    if len(state.pg.circles) > 1:
        return state.pg.circles[1].radius
    return 2.0 * state.z.to_polar(state.rs).radius + RAD_TOL


def _next_angle_above(state: DpfState, angle: float) -> float:
    candidates = [a for _, _, a in state.coords if a > angle + ANG_TOL]
    nxt = min(candidates) if candidates else 2.0 * math.pi
    return min(nxt, state.park_bound if state.park_bound > angle else nxt)


def _ang_close(a: float, b: float, tol: float = ANG_TOL) -> bool:
    d = abs(a - b) % (2.0 * math.pi)
    return d <= tol or 2.0 * math.pi - d <= tol
