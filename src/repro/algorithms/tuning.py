"""Tunable constants of the randomized symmetry-breaking phase.

The paper fixes several magic constants: the committed shift ε = 1/8, the
pre-descent shift ε = 1/4, the election threshold 7/8, the inward coin
step |r|/8 and the outward cap |r|/7.  They are inter-constrained — the
correctness argument needs

* ``shift_small < shift_big <= 1/4`` (Definition 3's admissible range),
* ``elect_threshold < 1`` with the inward step consistent with it
  (a robot stepping inward by ``1 - elect_threshold`` of its radius twice
  in a row becomes elected), and
* ``away_cap`` small enough that an away-mover stays inside the free disc.

The ablation experiment (E8) sweeps these within their admissible ranges;
:class:`Tuning` validates the constraints so inadmissible combinations
fail fast instead of silently livelocking.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tuning:
    """Constants of ψ_RSB (paper defaults)."""

    #: committed shift after election (paper: 1/8).
    shift_small: float = 0.125
    #: shift announcing the final descent (paper: 1/4).
    shift_big: float = 0.25
    #: a robot is elected below this fraction of the others' radii (7/8).
    elect_threshold: float = 0.875
    #: outward coin move cap as a fraction of radius (paper: 1/7).
    away_cap: float = 1.0 / 7.0
    #: selected-radius safety margin (fraction of the theoretical bound).
    select_margin: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.shift_small < self.shift_big <= 0.25:
            raise ValueError(
                "need 0 < shift_small < shift_big <= 1/4 (Definition 3)"
            )
        if not 0.5 <= self.elect_threshold < 1.0:
            raise ValueError("elect_threshold must be in [0.5, 1)")
        if not 0.0 < self.away_cap < 0.5:
            raise ValueError("away_cap must be in (0, 0.5)")
        if not 0.0 < self.select_margin < 1.0:
            raise ValueError("select_margin must be in (0, 1)")

    @property
    def toward_factor(self) -> float:
        """Inward coin move target fraction (7/8 of the radius by default,
        matching the election threshold so one further step elects)."""
        return self.elect_threshold


DEFAULT_TUNING = Tuning()
