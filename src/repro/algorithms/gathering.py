"""Gathering: all robots meet at one point (the total-multiplicity pattern).

The pattern-formation algorithm deliberately excludes the gathered
configuration (its normalisation needs ``C(P)`` non-degenerate), and the
paper handles "F is a single point of multiplicity n" by first forming an
auxiliary two-location pattern.  This module provides the direct classic
solution used as that final stage and as a standalone primitive:
center-of-gravity gathering with multiplicity detection, correct in
SSYNC (and in practice robust under our ASYNC adversary thanks to the
largest-stack tie-breaking):

* if one location already hosts a strict majority of robots, everyone
  else moves there (majority stacks can never lose their majority:
  movers arrive one by one);
* otherwise robots move toward the center of the smallest enclosing
  circle, which is invariant while only interior robots move.

This is a pragmatic engineering primitive, not a reproduction of the
FSYNC/SSYNC gathering literature's strongest results; its tests pin down
exactly the guarantees it does provide.
"""

from __future__ import annotations

from ..geometry import Vec2, smallest_enclosing_circle
from ..model import Snapshot
from ..sim.context import ComputeContext
from ..sim.paths import Path
from .base import Algorithm


class Gathering(Algorithm):
    """Gather all robots at a single point."""

    name = "gathering"
    requires_multiplicity_detection = True

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        distinct = snapshot.distinct()
        if len(distinct) == 1:
            return None  # gathered

        total = sum(m for _, m in distinct)
        location, count = max(distinct, key=lambda t: (t[1],))
        if 2 * count > total:
            # A strict-majority stack is the rendezvous point.
            if snapshot.me.approx_eq(location, 1e-9):
                return None
            return Path.line(snapshot.me, location)

        target = smallest_enclosing_circle(snapshot.points).center
        if snapshot.me.approx_eq(target, 1e-9):
            return None
        return Path.line(snapshot.me, target)
