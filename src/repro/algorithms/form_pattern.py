"""The paper's main algorithm: ``formPattern``.

Per activation (lines 1-17 of the paper's main pseudo-code):

1. if the pattern is already formed — do nothing (terminal);
2. if a unique maximal-view robot ``r`` exists whose removal leaves
   ``F`` minus a maximal-view point — ``r`` performs the *final join*,
   walking straight to the missing pattern point;
3. else if a *selected* robot exists — run the deterministic pattern
   formation ψ_DPF;
4. else — run the randomized symmetry breaking ψ_RSB.

All reasoning happens in normalised coordinates (unit ``C(P)`` at the
origin); the resulting path is mapped back to the robot's raw local frame
before being returned to the engine.
"""

from __future__ import annotations

from functools import cmp_to_key

from ..geometry import Vec2, find_similarity, point_holds_sec, similar, without_point
from ..geometry.memo import cache_enabled, points_key
from ..model import Pattern, Snapshot
from ..model.views import compare_views, local_view, max_view_points
from ..sim.context import ComputeContext
from ..sim.paths import Path
from .analysis import Analysis
from .base import Algorithm
from .dpf import dpf_decision
from .pattern_geometry import PatternGeometry
from .rsb import rsb_compute
from .tuning import DEFAULT_TUNING, Tuning


#: Tolerance (normalised units) for "the pattern is formed" matching.
#: Per-cycle renormalisation leaves ~1e-6 of noise on parked robots, so
#: formation checks must be an order of magnitude looser than that while
#: staying far below every geometric feature of the algorithm.
FORMATION_EPS = 2e-5



class FormPattern(Algorithm):
    """Probabilistic asynchronous arbitrary pattern formation.

    Forms ``pattern`` from any general-position initial configuration of
    ``len(pattern)`` robots, under any fair scheduler (FSYNC to full
    ASYNC), without any agreement on coordinate systems, using one random
    bit per robot per cycle.  Guarantees hold for ``n >= 7`` (Theorem 2).

    Args:
        pattern: the target pattern (any similarity representative).
        tuning: ψ_RSB constants (paper defaults; see :class:`Tuning`).
    """

    name = "formPattern"

    def __init__(self, pattern: Pattern, tuning: Tuning = DEFAULT_TUNING) -> None:
        if pattern.has_multiplicity():
            raise ValueError(
                "this algorithm requires a multiplicity-free pattern; use "
                "MultiplicityFormPattern for patterns with multiplicities"
            )
        self.pg = PatternGeometry(pattern)
        self.tuning = tuning
        self.target_pattern = self.pg.pattern
        #: the maximal-view non-holding points of F (the paper's ClosestF).
        self.closest_f = self._closest_f()
        #: Configuration-level decision memo: normalised point key ->
        #: tuple of (mover, path) in normalised coordinates.  Lines 1-3
        #: and ψ_DPF are deterministic functions of the configuration
        #: alone — each robot only checks whether it is a nominated
        #: mover — so the decision is shared by every observer whose
        #: normalised points are bit-identical.  Under per-robot random
        #: frames the keys never collide (each robot's coordinates carry
        #: its own frame's rounding), so this is inert for the scalar
        #: engine; under the array engine's canonical frames (and the
        #: terminal probe's shared frames) same-chirality robots hit the
        #: same entry.  ψ_RSB consumes randomness and is never cached.
        self._decisions: dict = {}

    def _closest_f(self) -> list[Vec2]:
        pts = self.pg.points
        center = self.pg.center
        candidates = [
            p
            for p in pts
            if not p.approx_eq(center) and not point_holds_sec(pts, p)
        ]
        entries = [(p, local_view(pts, center, p)) for p in candidates]
        entries.sort(
            key=cmp_to_key(lambda a, b: compare_views(a[1], b[1])), reverse=True
        )
        top = entries[0][1]
        out: list[Vec2] = []
        for p, v in entries:
            if compare_views(v, top) != 0:
                break
            if not any(p.approx_eq(q) for q in out):
                out.append(p)
        return out

    # ------------------------------------------------------------------
    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        if len(snapshot.points) != len(self.pg.points):
            raise ValueError(
                f"configuration has {len(snapshot.points)} robots, pattern "
                f"needs {len(self.pg.points)}"
            )
        an = Analysis(snapshot, self.pg.l_f)

        key = points_key(tuple(an.points)) if cache_enabled() else None
        if key is not None:
            cached = self._decisions.get(key)
            if cached is not None:
                return self._my_path(an, cached)

        moves = self._decide(an)
        if moves is None:
            # ψ_RSB flips coins: every activation must draw them live.
            return self._denormalize(an, rsb_compute(an, self.pg, ctx, self.tuning))
        if key is not None:
            self._decisions[key] = moves
        return self._my_path(an, moves)

    def _decide(self, an: Analysis):
        """Lines 1-3 + ψ_DPF: the configuration-level decision.

        Returns the (mover, path) tuple shared by every observer of this
        configuration, or ``None`` when no robot is selected and the
        randomized ψ_RSB must run live.
        """
        if similar(an.points, self.pg.points, FORMATION_EPS):
            return ()  # pattern formed: stay put forever
        join = self._final_join(an)
        if join is not None:
            return (join,)
        rs = an.selected_robot
        if rs is not None:
            return dpf_decision(an, self.pg, rs)
        return None

    def _my_path(self, an: Analysis, moves) -> Path | None:
        """The observer's share of a configuration-level decision."""
        for mover, path in moves:
            if an.i_am(mover):
                return self._denormalize(an, path)
        return None

    # ------------------------------------------------------------------
    def _final_join(self, an: Analysis) -> tuple[Vec2, Path] | None:
        """Line 3: the unique maximal-view robot walks to the missing
        pattern point when everyone else already forms F minus one."""
        closest_p = max_view_points(an.points, an.center)
        if len(closest_p) != 1:
            return None
        r = closest_p[0]
        rest = without_point(an.points, r)
        for f in self.closest_f:
            f_rest = without_point(self.pg.points, f)
            transform = find_similarity(f_rest, rest, FORMATION_EPS)
            if transform is None:
                continue
            target = transform.apply(f)
            if target.approx_eq(r, 1e-9):
                return None  # formed (caught by the similarity check anyway)
            return r, Path.line(r, target)
        return None

    @staticmethod
    def _denormalize(an: Analysis, path: Path | None) -> Path | None:
        if path is None or path.is_trivial():
            return None
        return path.transformed(an.denorm)
