"""Algorithm interface.

An algorithm is a pure function from a snapshot (the configuration in the
robot's own coordinate system) to a movement path, plus access to local
randomness.  Robots are oblivious: no state survives between cycles, so
implementations must not keep per-robot mutable state — everything must be
recomputed from the snapshot.  The paths returned are expressed in the
same local frame as the snapshot; the engine maps them back to global
coordinates.
"""

from __future__ import annotations

import abc

from ..model import Pattern, Snapshot
from ..sim.context import ComputeContext
from ..sim.paths import Path

__all__ = ["Algorithm", "ComputeContext"]


class Algorithm(abc.ABC):
    """A distributed mobile-robot algorithm."""

    #: Human-readable name for result tables.
    name: str = "algorithm"

    #: Whether robots must be able to see multiplicities.
    requires_multiplicity_detection: bool = False

    #: The pattern the algorithm forms, when it is a formation algorithm.
    target_pattern: Pattern | None = None

    @abc.abstractmethod
    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        """Compute the movement for this cycle.

        Args:
            snapshot: the observed configuration, in the robot's frame.
            ctx: randomness / chirality context.

        Returns:
            The path to follow (local frame), or None to stay put.
        """
