"""Combination of algorithms (Section 2 of the paper).

Oblivious robots cannot "run phase 1, then phase 2": nothing remembers
which phase is current.  The paper's substitute is the *combination*: a
set of sub-algorithms with **disjoint active sets**, each satisfying the
**termination awareness** property (configurations in which it orders no
movement are terminal for it), glued together by inferring from the
current configuration which sub-algorithm applies.  A combination is
*partially ordered* when the reachability relation ψ1 ↝ ψ2 (an execution
of ψ1 can enter ψ2's active set) has an acyclic transitive closure — then
the combination terminates iff every member does.

This module provides the executable version of that formalism: a
:class:`CombinedAlgorithm` built from guarded sub-algorithms, plus
empirical checkers for active-set disjointness and termination awareness
used by the test-suite (the paper's formPattern is *hand-fused* for
efficiency, but its phase structure is exactly a combination, and the
checkers validate that structure on sampled configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..geometry import Vec2
from ..model import LocalFrame, Snapshot, make_snapshot
from ..scheduler.rng import ForcedBits
from ..sim.context import ComputeContext
from ..sim.paths import Path
from .base import Algorithm

#: A guard deciding whether a configuration is in a phase's active set.
Guard = Callable[[Snapshot], bool]


@dataclass(frozen=True)
class Phase:
    """One guarded sub-algorithm of a combination."""

    name: str
    guard: Guard
    algorithm: Algorithm


class CombinedAlgorithm(Algorithm):
    """Executes the first phase whose guard accepts the configuration.

    Guards are evaluated in order; robots are oblivious, so the dispatch
    re-runs from scratch at every activation — exactly the paper's
    "find the first phase with a condition that is not verified".
    """

    name = "combination"

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ValueError("a combination needs at least one phase")
        self.phases = list(phases)

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        for phase in self.phases:
            if phase.guard(snapshot):
                return phase.algorithm.compute(snapshot, ctx)
        return None

    def active_phase(self, snapshot: Snapshot) -> Phase | None:
        """Which phase a configuration dispatches to (None = terminal)."""
        for phase in self.phases:
            if phase.guard(snapshot):
                return phase
        return None


def _probe_snapshots(points: Sequence[Vec2], multiplicity: bool):
    frame = LocalFrame.identity_at(Vec2.zero())
    for p in points:
        yield make_snapshot(list(points), p, frame.observe, multiplicity)


def orders_movement(
    algorithm: Algorithm,
    points: Sequence[Vec2],
    multiplicity_detection: bool = False,
) -> bool:
    """Whether the algorithm orders any robot to move in ``points``.

    Probes every robot with both coin outcomes and both chiralities, the
    same procedure the engine's terminal test uses.
    """
    for snapshot in _probe_snapshots(points, multiplicity_detection):
        for bit in (0, 1):
            for chirality in (True, False):
                ctx = ComputeContext(ForcedBits(bit), own_chirality=chirality)
                path = algorithm.compute(snapshot, ctx)
                if path is not None and not path.is_trivial(1e-9):
                    return True
    return False


def check_disjoint_active_sets(
    combination: CombinedAlgorithm,
    configurations: Sequence[Sequence[Vec2]],
) -> list[str]:
    """Empirically check active-set disjointness on sample configurations.

    Returns a list of violation descriptions (empty = no violation found):
    a configuration may satisfy at most one guard.
    """
    violations: list[str] = []
    frame = LocalFrame.identity_at(Vec2.zero())
    for i, points in enumerate(configurations):
        snapshot = make_snapshot(list(points), list(points)[0], frame.observe)
        active = [p.name for p in combination.phases if p.guard(snapshot)]
        if len(active) > 1:
            violations.append(
                f"configuration #{i} active in several phases: {active}"
            )
    return violations


def check_termination_awareness(
    algorithm: Algorithm,
    configurations: Sequence[Sequence[Vec2]],
    is_active: Guard | None = None,
    multiplicity_detection: bool = False,
) -> list[str]:
    """Empirically check termination awareness on sample configurations.

    For each sampled configuration that the algorithm treats as *empty*
    (orders no movement), the configuration must be outside the active
    set — i.e. genuinely terminal, not a silent deadlock.  ``is_active``
    is the active-set predicate; with None, every sampled configuration
    is considered active, so any empty one is reported.
    """
    violations: list[str] = []
    frame = LocalFrame.identity_at(Vec2.zero())
    for i, points in enumerate(configurations):
        if orders_movement(algorithm, points, multiplicity_detection):
            continue
        if is_active is None:
            violations.append(f"configuration #{i} is empty but sampled as active")
            continue
        snapshot = make_snapshot(
            list(points), list(points)[0], frame.observe, multiplicity_detection
        )
        if is_active(snapshot):
            violations.append(
                f"configuration #{i} is empty yet still in the active set"
            )
    return violations
