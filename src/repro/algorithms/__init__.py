"""Algorithms: the paper's formPattern (ψ_RSB + ψ_DPF) and baselines."""

from .analysis import Analysis
from .base import Algorithm, ComputeContext
from .baselines import GlobalFrameFormation, YamauchiYamashita
from .form_pattern import FormPattern
from .multiplicity import MultiplicityFormPattern
from .pattern_geometry import PatternGeometry, TargetCircle
from .scattering import ScatterThenForm, Scattering
from .tuning import DEFAULT_TUNING, Tuning

__all__ = [
    "Algorithm",
    "Analysis",
    "ComputeContext",
    "DEFAULT_TUNING",
    "FormPattern",
    "GlobalFrameFormation",
    "MultiplicityFormPattern",
    "PatternGeometry",
    "ScatterThenForm",
    "Scattering",
    "TargetCircle",
    "Tuning",
    "YamauchiYamashita",
]
