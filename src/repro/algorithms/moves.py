"""Movement constructors shared by all algorithm phases.

All helpers build :class:`~repro.sim.paths.Path` objects in the same
(normalised) coordinates as the analysis, starting exactly at the moving
robot's observed position — the engine checks that invariant.
"""

from __future__ import annotations

from ..geometry import Circle, Vec2, direction_angle
from ..geometry.tolerance import norm_angle_signed
from ..sim.paths import Path


def radial_move(me: Vec2, center: Vec2, target_radius: float) -> Path:
    """Move along the half-line from ``center`` through ``me`` to the
    given radius (inward or outward)."""
    direction = (me - center).normalized()
    return Path.line(me, center + direction * target_radius)


def move_toward(me: Vec2, target: Vec2, distance: float | None = None) -> Path:
    """Straight move toward ``target``; optionally only ``distance`` far."""
    if distance is None:
        return Path.line(me, target)
    gap = me.dist(target)
    if gap <= 1e-15 or distance >= gap:
        return Path.line(me, target)
    return Path.line(me, me + (target - me) * (distance / gap))


def arc_move_to_angle(me: Vec2, center: Vec2, target_angle: float) -> Path:
    """Move on my circle (around ``center``) to ``target_angle``, taking
    the shorter way."""
    radius = me.dist(center)
    circle = Circle(center, radius)
    current = direction_angle(center, me)
    sweep = norm_angle_signed(target_angle - current)
    return Path.arc(circle, current, sweep)


def arc_move_sweep(me: Vec2, center: Vec2, sweep: float) -> Path:
    """Move on my circle by the signed ``sweep`` angle."""
    radius = me.dist(center)
    circle = Circle(center, radius)
    current = direction_angle(center, me)
    return Path.arc(circle, current, sweep)
