"""Per-activation configuration analysis.

Everything the paper's predicates derive from one snapshot, computed once
and shared by all sub-phases of the algorithm:

* the configuration normalised so that ``C(P)`` is the unit circle at the
  origin (the paper's convention ``C(P) = C(F)`` with unit radius);
* the center ``c(P)`` (regular-set center or SEC center);
* the selected robot, if any;
* lazily, the regular set ``reg(P)`` and any shifted regular set.

All coordinates here are *normalised local* coordinates; the algorithm
transforms computed paths back into the robot's raw frame at the end.
"""

from __future__ import annotations

from functools import cached_property

from ..geometry import (
    Circle,
    Similarity,
    Vec2,
    smallest_enclosing_circle,
)
from ..geometry.memo import Memo, points_key
from ..geometry.tolerance import approx_le, approx_lt
from ..model import Snapshot
from ..regular import (
    RegularSet,
    ShiftedRegularSet,
    find_regular,
    find_shifted_regular,
    regular_set_of,
)

#: Tolerance for "strictly closer" radius comparisons in the algorithm.
RTOL = 1e-6

#: Configuration-level normalisation memo: raw point key -> (norm,
#: denorm, normalised points).  The normalisation is a pure function of
#: the observed points alone (not of ``me``), and both the engine's
#: terminal probe (shared frames) and the array engine (canonical
#: frames) hand every robot of one configuration bit-identical raw
#: points — so the SEC solve and the transform applications are shared
#: work.  Under the scalar engine's per-robot random frames the keys
#: rarely collide outside the probe, matching the other geometry memos.
_NORM_MEMO = Memo("analysis.normalize")


class Analysis:
    """Normalised view of one snapshot plus cached derived structures."""

    def __init__(self, snapshot: Snapshot, l_f: float) -> None:
        raw_points = list(snapshot.points)
        if _NORM_MEMO.active():
            key = points_key(raw_points)
            hit, cached = _NORM_MEMO.lookup(key)
        else:
            key, hit, cached = None, False, None
        if hit:
            self.norm, self.denorm, pts = cached
            self.points: list[Vec2] = list(pts)
        else:
            sec = smallest_enclosing_circle(raw_points)
            if sec.radius <= 1e-12:
                raise ValueError(
                    "degenerate configuration: all robots gathered"
                )
            #: raw local frame -> normalised coordinates
            self.norm = Similarity.scaling(1.0 / sec.radius).compose(
                Similarity.translation_of(-sec.center)
            )
            self.denorm = self.norm.inverse()
            self.points = self.norm.apply_all(raw_points)
            if key is not None:
                _NORM_MEMO.store(
                    key, (self.norm, self.denorm, tuple(self.points))
                )
        self.me: Vec2 = self.norm.apply(snapshot.me)
        self.multiplicity_detection = snapshot.multiplicity_detection
        self.l_f = l_f

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @cached_property
    def sec(self) -> Circle:
        """``C(P)`` in normalised coordinates (the unit circle)."""
        return Circle(Vec2.zero(), 1.0)

    @cached_property
    def whole_regular(self):
        """Definition 1 on the whole configuration (None if not regular)."""
        return find_regular(self.points)

    @cached_property
    def center(self) -> Vec2:
        """``c(P)``: regular-set center when P is regular, else SEC center."""
        if self.whole_regular is not None:
            return self.whole_regular.center
        return Vec2.zero()

    def radius_of(self, p: Vec2) -> float:
        """``|p|``: distance of a robot to ``c(P)``."""
        return p.dist(self.center)

    def i_am(self, p: Vec2) -> bool:
        """Whether ``p`` is the observing robot's own location."""
        return self.me.approx_eq(p, 1e-9)

    def others(self) -> list[Vec2]:
        """All robots except (one occurrence of) the observer."""
        out = list(self.points)
        for i, p in enumerate(out):
            if self.i_am(p):
                del out[i]
                return out
        return out

    # ------------------------------------------------------------------
    # paper predicates
    # ------------------------------------------------------------------
    @cached_property
    def selected_robot(self) -> Vec2 | None:
        """The selected robot, if one exists.

        A robot ``r`` is selected when ``|r| <= l_F / 2`` and no other
        robot lies strictly inside ``D(2 |r|)`` (the disc around ``c(P)``).
        A robot at the center itself also counts (phase 1 of the
        deterministic algorithm parks the selected robot there briefly).
        """
        best: Vec2 | None = None
        best_radius = float("inf")
        for p in self.points:
            radius = self.radius_of(p)
            if radius < best_radius:
                best, best_radius = p, radius
        if best is None:
            return None
        if not approx_le(best_radius, self.l_f / 2.0, RTOL):
            return None
        for q in self.points:
            if q.approx_eq(best, 1e-9):
                continue
            if approx_lt(self.radius_of(q), 2.0 * best_radius, RTOL):
                return None
        return best

    @cached_property
    def regular(self) -> RegularSet | None:
        """``reg(P)`` (Definition 2), or None."""
        if any(p.approx_eq(self.center, 1e-9) for p in self.points):
            return None
        return regular_set_of(self.points)

    @cached_property
    def shifted(self) -> ShiftedRegularSet | None:
        """The ε-shifted regular set (Definition 3), or None."""
        if any(p.approx_eq(self.center, 1e-9) for p in self.points):
            return None
        return find_shifted_regular(self.points)

    # ------------------------------------------------------------------
    def n(self) -> int:
        """Number of robots observed."""
        return len(self.points)
