"""Extension: patterns with multiplicity points (Section 5 + Appendix C).

With (strong) multiplicity detection the main algorithm forms patterns in
which several robots share a location: robots heading for the same target
are allowed to stack.  The only genuinely special case is a multiplicity
at the pattern's center ``c(F)`` — no ordering can funnel several robots
*through* the center — so the algorithm first forms the auxiliary pattern
``F~`` in which the center stack is displaced to ``g_F`` (the midpoint of
the center and the maximal-view point), then the stacked robots walk the
final half-line into the center one after another.
"""

from __future__ import annotations

from ..geometry import (
    Vec2,
    direction_angle,
    find_similarity,
    midpoint,
    similar,
)
from ..geometry.tolerance import norm_angle
from ..model import Pattern, Snapshot
from ..regular import config_center
from ..sim.context import ComputeContext
from ..sim.paths import Path
from .analysis import Analysis
from .form_pattern import FormPattern


class MultiplicityFormPattern(FormPattern):
    """Pattern formation for patterns that contain multiplicity points.

    Requires robots endowed with strong multiplicity detection.  The
    initial configuration must still be multiplicity-free (scattering from
    multiplicities is the open ASYNC problem the paper leaves for future
    work).
    """

    name = "formPattern+multiplicity"
    requires_multiplicity_detection = True

    def __init__(self, pattern: Pattern) -> None:
        normalized = pattern.normalized()
        center = config_center(list(normalized.points))
        self.center_count = sum(
            1 for p in normalized.points if p.approx_eq(center, 1e-9)
        )
        self.full_pattern = normalized
        if self.center_count >= 1 and len(normalized) - self.center_count >= 1:
            working = _displace_center(normalized, center, self.center_count)
        else:
            working = normalized
        # Bypass FormPattern.__init__'s multiplicity rejection: build the
        # geometry for the working pattern directly.
        from .pattern_geometry import PatternGeometry
        from .tuning import DEFAULT_TUNING

        self.pg = PatternGeometry(working)
        self.tuning = DEFAULT_TUNING
        self.target_pattern = self.full_pattern
        self.closest_f = self._closest_f()
        self._decisions = {}

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        from .form_pattern import FORMATION_EPS

        an = Analysis(snapshot, self.pg.l_f)
        if similar(an.points, list(self.full_pattern.points), FORMATION_EPS):
            return None
        if self.center_count >= 1:
            last = self._center_stack_move(an)
            if last is not None:
                mover, path = last
                return self._denormalize(an, path if an.i_am(mover) else None)
            if self._in_last_stage(an):
                return None  # someone else's walk into the center is due
        return super().compute(snapshot, ctx)

    # ------------------------------------------------------------------
    def _in_last_stage(self, an: Analysis) -> bool:
        """Whether the auxiliary pattern F~ has been formed (possibly with
        some robots already moved toward the center)."""
        return self._stack_state(an) is not None

    def _center_stack_move(self, an: Analysis) -> tuple[Vec2, Path] | None:
        """The next robot of the displaced stack walks into the center."""
        state = self._stack_state(an)
        if state is None:
            return None
        center, walkers = state
        if not walkers:
            return None
        # Walk them in from the closest first: the half-line stays simple
        # and no robot ever crosses another.
        mover = min(walkers, key=lambda p: p.dist(center))
        return mover, Path.line(mover, center)

    def _stack_state(self, an: Analysis) -> tuple[Vec2, list[Vec2]] | None:
        """Detect the last stage: the m closest robots share one half-line
        from the center (some possibly already at the center) and the rest
        forms F minus its center stack.  Returns (center, robots still to
        walk in)."""
        m = self.center_count
        rest_pattern = [
            p
            for p in self.full_pattern.points
            if not _is_center_point(self.full_pattern, p)
        ]
        if len(rest_pattern) + m != len(an.points):
            return None
        # Candidate center: where the pattern's center lands — recover it
        # by matching the outer robots against the outer pattern.
        from .form_pattern import FORMATION_EPS

        ranked = sorted(an.points, key=lambda p: p.dist(an.center))
        stack, outer = ranked[:m], ranked[m:]
        if not similar(outer, rest_pattern, FORMATION_EPS):
            return None
        transform = find_similarity(rest_pattern, outer, FORMATION_EPS)
        if transform is None:
            return None
        pattern_center = config_center(list(self.full_pattern.points))
        center = transform.apply(pattern_center)
        # All stack robots on one half-line from the center.
        direction: float | None = None
        walkers: list[Vec2] = []
        for p in stack:
            if p.approx_eq(center, 1e-7):
                continue
            theta = direction_angle(center, p)
            if direction is None:
                direction = theta
            elif abs(norm_angle(theta - direction)) > 1e-5 and (
                2.0 * 3.141592653589793 - abs(norm_angle(theta - direction))
            ) > 1e-5:
                return None
            walkers.append(p)
        return center, walkers


def _displace_center(pattern: Pattern, center: Vec2, count: int) -> Pattern:
    """Build F~: the center stack displaced to g_F (Appendix C)."""
    rest = [p for p in pattern.points if not p.approx_eq(center, 1e-9)]
    if not rest:
        raise ValueError("a pure gathering pattern needs at least 2 locations")
    from functools import cmp_to_key

    from ..model.views import compare_views, local_view

    distinct = []
    for p in rest:
        if not any(p.approx_eq(q) for q in distinct):
            distinct.append(p)
    entries = [(p, local_view(rest, center, p)) for p in distinct]
    entries.sort(key=cmp_to_key(lambda a, b: compare_views(a[1], b[1])), reverse=True)
    g_f = midpoint(center, entries[0][0])
    return Pattern.from_points(rest + [g_f] * count)


def _is_center_point(pattern: Pattern, p: Vec2) -> bool:
    center = config_center(list(pattern.points))
    return p.approx_eq(center, 1e-9)
