"""Scattering, and the SSYNC scatter-then-form combination (Section 5).

The paper's algorithm requires a multiplicity-free *initial*
configuration.  Its Section 5 sketches the fix the authors leave as
future work for ASYNC but note is straightforward in SSYNC: run a
scattering phase whenever the configuration contains multiplicity points
that do not belong to a legitimate path toward the pattern, and the
formation algorithm otherwise.  In SSYNC each activated robot acts on a
*fresh* snapshot, which is what makes the naive combination sound.

The scattering algorithm follows the random-bit scattering idea of
Bramas & Tixeuil (cited as [4]): every robot on a multiplicity point
draws ``bits`` random bits, picks one of ``2^bits`` directions, and steps
a short distance out.  Co-located robots cannot be distinguished by the
adversary's scheduler choice alone once their coins differ, so each round
splits every stack with positive probability and the configuration is
multiplicity-free after finitely many rounds with probability 1.
"""

from __future__ import annotations

import math

from ..geometry import Vec2
from ..model import Pattern, Snapshot
from ..sim.context import ComputeContext
from ..sim.paths import Path
from .base import Algorithm
from .form_pattern import FormPattern


class Scattering(Algorithm):
    """Break multiplicity points with random short hops (SSYNC).

    Args:
        bits: random bits drawn per hop (2^bits candidate directions).
        step_fraction: hop length as a fraction of the distance to the
            nearest other occupied location (keeps hops collision-free).
    """

    name = "scattering"
    requires_multiplicity_detection = True

    def __init__(self, bits: int = 3, step_fraction: float = 0.2) -> None:
        if bits < 1:
            raise ValueError("need at least one random bit per hop")
        if not 0.0 < step_fraction < 0.5:
            raise ValueError("step_fraction must be in (0, 0.5)")
        self.bits = bits
        self.step_fraction = step_fraction

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        occupancy = sum(
            1 for p in snapshot.points if p.approx_eq(snapshot.me, 1e-9)
        )
        if occupancy <= 1:
            return None
        others = [
            p for p in snapshot.points if not p.approx_eq(snapshot.me, 1e-9)
        ]
        if others:
            clearance = min(snapshot.me.dist(p) for p in others)
        else:
            sec = snapshot.sec()
            clearance = max(sec.radius, 1.0)
        step = max(clearance * self.step_fraction, 1e-6)

        index = 0
        for _ in range(self.bits):
            index = (index << 1) | ctx.random_bit()
        sectors = 1 << self.bits
        angle = 2.0 * math.pi * index / sectors
        return Path.line(snapshot.me, snapshot.me + Vec2.polar(step, angle))


class ScatterThenForm(Algorithm):
    """SSYNC combination: scatter away multiplicities, then form.

    Dispatch is inferred from the configuration (robots are oblivious):
    any multiplicity point that is not part of the *target* pattern's own
    multiplicities routes to scattering; otherwise the pattern formation
    algorithm runs.  Sound in SSYNC (moves always act on fresh
    snapshots); ASYNC composition is the paper's stated open problem.
    """

    name = "scatter-then-form"
    requires_multiplicity_detection = True

    def __init__(self, pattern: Pattern, bits: int = 3) -> None:
        self.formation = FormPattern(pattern)
        self.scattering = Scattering(bits=bits)
        self.target_pattern = self.formation.target_pattern

    def compute(self, snapshot: Snapshot, ctx: ComputeContext) -> Path | None:
        if self._has_illegitimate_multiplicity(snapshot):
            return self.scattering.compute(snapshot, ctx)
        collapsed = Snapshot(
            tuple(_dedupe(snapshot.points)), snapshot.me, False
        )
        return self.formation.compute(collapsed, ctx)

    def _has_illegitimate_multiplicity(self, snapshot: Snapshot) -> bool:
        counts: dict[tuple[float, float], int] = {}
        for p in snapshot.points:
            for q in counts:
                if abs(p.x - q[0]) <= 1e-9 and abs(p.y - q[1]) <= 1e-9:
                    counts[q] += 1
                    break
            else:
                counts[p.as_tuple()] = 1
        # The base pattern is multiplicity-free: any stack is illegitimate.
        return any(c > 1 for c in counts.values())


def _dedupe(points) -> list[Vec2]:
    out: list[Vec2] = []
    for p in points:
        if not any(p.approx_eq(q, 1e-9) for q in out):
            out.append(p)
    return out
