"""Reproducibility: identical seeds give identical executions."""

from repro import patterns
from repro.algorithms import FormPattern
from repro.scheduler import AsyncScheduler, SsyncScheduler
from repro.sim import Simulation


def run_once(seed):
    pat = patterns.regular_polygon(7)
    sim = Simulation.random(
        7,
        FormPattern(pat),
        AsyncScheduler(seed=seed * 31),
        seed=seed,
        max_steps=300_000,
    )
    res = sim.run()
    return res


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = run_once(5)
        b = run_once(5)
        assert a.steps == b.steps
        assert a.metrics.random_bits == b.metrics.random_bits
        assert abs(a.metrics.distance - b.metrics.distance) < 1e-12
        for p, q in zip(
            a.final_configuration.points(), b.final_configuration.points()
        ):
            assert p.approx_eq(q, 1e-15)

    def test_different_seed_different_trajectory(self):
        a = run_once(5)
        b = run_once(6)
        assert a.steps != b.steps or abs(
            a.metrics.distance - b.metrics.distance
        ) > 1e-9

    def test_scheduler_seed_isolated_from_robot_seed(self):
        pat = patterns.regular_polygon(7)
        sims = [
            Simulation.random(
                7, FormPattern(pat), SsyncScheduler(seed=1), seed=7,
                max_steps=300_000,
            )
            for _ in range(2)
        ]
        results = [s.run() for s in sims]
        assert results[0].steps == results[1].steps
