"""Failure-injection and robustness integration tests.

Pushes the model's adversarial knobs to their extremes: truncation to the
δ floor on every move, pausing mid-move, starvation up to the fairness
bound, extreme frame scales, and stale-compute stress.
"""

import math

import pytest

from repro import patterns
from repro.algorithms import FormPattern
from repro.analysis import no_multiplicity_checker
from repro.geometry import Vec2
from repro.scheduler import AsyncScheduler, SsyncScheduler
from repro.sim import Simulation, random_frames


def ngon(n, phase=0.1):
    return [Vec2.polar(1.0, phase + 2 * math.pi * i / n) for i in range(n)]


class TestTruncationExtremes:
    def test_always_truncated_ssync(self):
        pat = patterns.regular_polygon(7)
        sim = Simulation.random(
            7,
            FormPattern(pat),
            SsyncScheduler(seed=1, truncate_prob=1.0),
            seed=2,
            delta=0.02,
            max_steps=400_000,
            checkers=[no_multiplicity_checker()],
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed

    def test_large_delta_effectively_rigid(self):
        pat = patterns.regular_polygon(7)
        sim = Simulation.random(
            7,
            FormPattern(pat),
            SsyncScheduler(seed=3, truncate_prob=1.0),
            seed=4,
            delta=10.0,  # delta exceeds every path: movement is rigid
            max_steps=300_000,
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed


class TestPausingAdversary:
    def test_heavy_pausing(self):
        scheduler = AsyncScheduler(
            seed=5,
            pause_prob=0.7,
            min_chunk=0.05,
            max_chunk=0.3,
            max_move_chunks=16,
            compute_delay_prob=0.6,
        )
        pat = patterns.regular_polygon(7)
        sim = Simulation.random(
            7, FormPattern(pat), scheduler, seed=6, max_steps=600_000,
            checkers=[no_multiplicity_checker()],
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed

    def test_pausing_with_symmetric_start(self):
        scheduler = AsyncScheduler.aggressive(seed=7)
        pat = patterns.random_pattern(7, seed=5)
        sim = Simulation(
            ngon(7), FormPattern(pat), scheduler, seed=8, max_steps=600_000
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed


class TestFrameExtremes:
    @pytest.mark.parametrize("scales", [(1e-3, 1e-2), (10.0, 1000.0)])
    def test_extreme_scales(self, scales):
        lo, hi = scales
        pat = patterns.regular_polygon(7)
        sim = Simulation.random(
            7,
            FormPattern(pat),
            SsyncScheduler(seed=9),
            seed=10,
            frame_policy=random_frames(True, lo, hi),
            max_steps=300_000,
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed


class TestScaleInvariance:
    def test_tiny_and_huge_configurations(self):
        pat = patterns.regular_polygon(7)
        for factor in (1e-3, 1e3):
            initial = [
                p * factor for p in patterns.random_configuration(7, seed=11)
            ]
            sim = Simulation(
                initial,
                FormPattern(pat),
                SsyncScheduler(seed=12),
                seed=13,
                delta=1e-3 * factor,
                max_steps=300_000,
            )
            res = sim.run()
            assert res.terminated and res.pattern_formed, factor

    def test_far_from_origin(self):
        pat = patterns.regular_polygon(7)
        offset = Vec2(500.0, -300.0)
        initial = [
            p + offset for p in patterns.random_configuration(7, seed=14)
        ]
        sim = Simulation(
            initial,
            FormPattern(pat),
            SsyncScheduler(seed=15),
            seed=16,
            max_steps=300_000,
        )
        res = sim.run()
        assert res.terminated and res.pattern_formed
