"""End-to-end pattern formation runs (Theorem 2 exercised).

Each test runs the full algorithm inside the engine until the terminal
configuration and asserts the pattern was formed, no multiplicity was
ever created, and the randomness budget was respected.
"""

import math

import pytest

from repro import patterns
from repro.algorithms import FormPattern
from repro.analysis import no_multiplicity_checker
from repro.geometry import Vec2
from repro.scheduler import (
    AsyncScheduler,
    FsyncScheduler,
    RoundRobinScheduler,
    SsyncScheduler,
)
from repro.sim import Simulation, chirality_frames, global_frames


def ngon(n, phase=0.1):
    return [Vec2.polar(1.0, phase + 2 * math.pi * i / n) for i in range(n)]


def run_formation(pattern, initial, scheduler, seed=1, max_steps=250_000, **kw):
    alg = FormPattern(pattern)
    sim = Simulation(
        initial,
        alg,
        scheduler,
        seed=seed,
        max_steps=max_steps,
        checkers=[no_multiplicity_checker()],
        **kw,
    )
    return sim, sim.run()


class TestRandomInitial:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_roundrobin(self, seed):
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=seed)
        _, res = run_formation(pat, initial, RoundRobinScheduler(), seed=seed)
        assert res.terminated and res.pattern_formed

    @pytest.mark.parametrize("seed", [0, 1])
    def test_async(self, seed):
        pat = patterns.random_pattern(8, seed=40)
        initial = patterns.random_configuration(8, seed=seed + 10)
        _, res = run_formation(pat, initial, AsyncScheduler(seed=seed), seed=seed)
        assert res.terminated and res.pattern_formed

    def test_fsync(self):
        pat = patterns.star_pattern(4)
        initial = patterns.random_configuration(8, seed=4)
        _, res = run_formation(pat, initial, FsyncScheduler())
        assert res.terminated and res.pattern_formed

    def test_ssync_with_truncation(self):
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=5)
        _, res = run_formation(
            pat, initial, SsyncScheduler(seed=2, truncate_prob=0.4)
        )
        assert res.terminated and res.pattern_formed


class TestSymmetricInitial:
    """Fully symmetric starts force the probabilistic election."""

    def test_polygon_start_roundrobin(self):
        pat = patterns.random_pattern(7, seed=5)
        sim, res = run_formation(pat, ngon(7), RoundRobinScheduler(), seed=3)
        assert res.terminated and res.pattern_formed
        assert sim.metrics.random_bits > 0  # coins were actually used
        assert sim.metrics.bits_per_cycle() <= 1.0 + 1e-9

    def test_polygon_start_async(self):
        pat = patterns.random_pattern(7, seed=5)
        _, res = run_formation(pat, ngon(7), AsyncScheduler(seed=8), seed=9)
        assert res.terminated and res.pattern_formed

    def test_biangular_start(self):
        n, a = 8, 0.5
        b = 4 * math.pi / n - a
        dirs, t = [], 0.0
        for i in range(n):
            dirs.append(t)
            t += a if i % 2 == 0 else b
        initial = [Vec2.polar(1.0, d) for d in dirs]
        pat = patterns.random_pattern(8, seed=6)
        _, res = run_formation(pat, initial, RoundRobinScheduler(), seed=2)
        assert res.terminated and res.pattern_formed

    def test_aggressive_async(self):
        pat = patterns.random_pattern(7, seed=5)
        _, res = run_formation(
            pat, ngon(7), AsyncScheduler.aggressive(seed=1), seed=4
        )
        assert res.terminated and res.pattern_formed


class TestNoChirality:
    """The headline claim: no common North, no common chirality needed."""

    def test_mirrored_frames(self):
        # Default frame policy already mirrors half the robots each Look;
        # run with chirality-free frames explicitly at extreme scales.
        from repro.sim import random_frames

        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=7)
        _, res = run_formation(
            pat,
            initial,
            RoundRobinScheduler(),
            frame_policy=random_frames(True, 0.01, 100.0),
        )
        assert res.terminated and res.pattern_formed

    def test_chirality_only_frames_also_fine(self):
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=8)
        _, res = run_formation(
            pat, initial, RoundRobinScheduler(), frame_policy=chirality_frames()
        )
        assert res.terminated and res.pattern_formed

    def test_global_frames_also_fine(self):
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=9)
        _, res = run_formation(
            pat, initial, RoundRobinScheduler(), frame_policy=global_frames()
        )
        assert res.terminated and res.pattern_formed


class TestVariousPatterns:
    @pytest.mark.parametrize(
        "pattern_factory",
        [
            lambda: patterns.regular_polygon(8),
            lambda: patterns.nested_rings([5, 3]),
            lambda: patterns.star_pattern(4),
            lambda: patterns.random_pattern(8, seed=77),
            lambda: patterns.grid_pattern(2, 4),
        ],
    )
    def test_pattern(self, pattern_factory):
        pat = pattern_factory()
        n = len(pat)
        initial = patterns.random_configuration(n, seed=21)
        _, res = run_formation(pat, initial, RoundRobinScheduler(), seed=5)
        assert res.terminated and res.pattern_formed

    def test_larger_swarm(self):
        pat = patterns.random_pattern(12, seed=1)
        initial = patterns.random_configuration(12, seed=2)
        _, res = run_formation(pat, initial, RoundRobinScheduler(), seed=6)
        assert res.terminated and res.pattern_formed


class TestDeltaRobustness:
    @pytest.mark.parametrize("delta", [1e-1, 1e-2, 1e-4])
    def test_delta_sweep(self, delta):
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=3)
        _, res = run_formation(
            pat,
            initial,
            SsyncScheduler(seed=1, truncate_prob=0.5),
            delta=delta,
        )
        assert res.terminated and res.pattern_formed


class TestStationarity:
    def test_remains_stationary_after_formation(self):
        # Once formed, re-running never moves anyone (terminal = stationary).
        pat = patterns.regular_polygon(7)
        initial = patterns.random_configuration(7, seed=1)
        sim, res = run_formation(pat, initial, RoundRobinScheduler(), seed=1)
        assert res.terminated
        assert sim.is_terminal()

    def test_starting_formed_is_terminal(self):
        pat = patterns.regular_polygon(8)
        initial = [p.rotated(0.4) * 2 + Vec2(5, 5) for p in pat.points]
        sim, res = run_formation(pat, initial, RoundRobinScheduler())
        assert res.terminated and res.pattern_formed
        assert res.metrics.distance == 0
