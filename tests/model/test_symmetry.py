"""Unit tests for symmetricity and mirror axes."""

import math

from repro.geometry import Vec2
from repro.model import (
    has_mirror_symmetry,
    is_asymmetric,
    rotational_symmetry,
    symmetry_axes,
)

from ..conftest import polygon, random_points


class TestRotationalSymmetry:
    def test_regular_polygons(self):
        for n in (3, 4, 5, 6, 7, 8):
            assert rotational_symmetry(polygon(n), Vec2.zero()) == n

    def test_asymmetric_config(self):
        pts = random_points(7, seed=1)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        assert rotational_symmetry(pts, c) == 1

    def test_nested_polygons(self):
        pts = polygon(8) + polygon(4, radius=0.5, phase=0.3)
        assert rotational_symmetry(pts, Vec2.zero()) == 4

    def test_incommensurate_rings(self):
        pts = polygon(4) + polygon(3, radius=0.5, phase=0.2)
        assert rotational_symmetry(pts, Vec2.zero()) == 1

    def test_center_point_ignored(self):
        pts = polygon(5) + [Vec2.zero()]
        assert rotational_symmetry(pts, Vec2.zero()) == 5

    def test_multiplicity_breaks_symmetry(self):
        pts = polygon(4) + [polygon(4)[0]]  # double one vertex
        assert rotational_symmetry(pts, Vec2.zero()) == 1

    def test_two_antipodal(self):
        assert rotational_symmetry([Vec2(1, 0), Vec2(-1, 0)], Vec2.zero()) == 2


class TestMirrorSymmetry:
    def test_polygon_axes_count(self):
        for n in (3, 4, 5, 6):
            assert len(symmetry_axes(polygon(n), Vec2.zero())) == n

    def test_isoceles_has_one_axis(self):
        pts = [Vec2(0, 1), Vec2(-1, -1), Vec2(1, -1)]
        axes = symmetry_axes(pts, Vec2.zero())
        assert len(axes) == 1
        assert abs(axes[0] - math.pi / 2) < 1e-6

    def test_scalene_no_axis(self):
        pts = [Vec2(0, 1), Vec2(-1.2, -0.7), Vec2(0.8, -1.1)]
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        assert not has_mirror_symmetry(pts, c)

    def test_random_no_axis(self):
        pts = random_points(8, seed=2)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        assert not has_mirror_symmetry(pts, c)

    def test_mirror_pair(self):
        pts = [Vec2(1, 0.5), Vec2(1, -0.5), Vec2(-1, 0.3), Vec2(-1, -0.3)]
        assert has_mirror_symmetry(pts, Vec2.zero())


class TestIsAsymmetric:
    def test_random_is_asymmetric(self):
        pts = random_points(9, seed=3)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        assert is_asymmetric(pts, c)

    def test_polygon_is_not(self):
        assert not is_asymmetric(polygon(5), Vec2.zero())

    def test_mirror_only_is_not(self):
        pts = [Vec2(0, 1), Vec2(-1, -1), Vec2(1, -1)]
        assert not is_asymmetric(pts, Vec2.zero())
