"""Unit tests for snapshots."""

import pytest

from repro.geometry import Vec2
from repro.model import LocalFrame, Snapshot, make_snapshot

from ..conftest import polygon


class TestSnapshot:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            Snapshot(tuple(), Vec2.zero())

    def test_n(self):
        s = Snapshot(tuple(polygon(4)), polygon(4)[0])
        assert s.n() == 4

    def test_others_removes_one_self(self):
        pts = polygon(4)
        s = Snapshot(tuple(pts), pts[0])
        others = s.others()
        assert len(others) == 3
        assert all(not p.approx_eq(pts[0]) for p in others)

    def test_distinct(self):
        pts = [Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)]
        s = Snapshot(tuple(pts), Vec2(1, 0), multiplicity_detection=True)
        d = dict((p.as_tuple(), m) for p, m in s.distinct())
        assert d[(0.0, 0.0)] == 2

    def test_sec(self):
        s = Snapshot(tuple(polygon(5)), polygon(5)[0])
        assert abs(s.sec().radius - 1) < 1e-7


class TestMakeSnapshot:
    def test_local_coordinates(self):
        pts = polygon(4)
        frame = LocalFrame.identity_at(pts[0])
        s = make_snapshot(pts, pts[0], frame.observe)
        assert s.me.approx_eq(Vec2.zero())
        assert len(s.points) == 4

    def test_without_detection_collapses_multiplicity(self):
        pts = [Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)]
        frame = LocalFrame.identity_at(pts[2])
        s = make_snapshot(pts, pts[2], frame.observe, multiplicity_detection=False)
        assert len(s.points) == 2

    def test_with_detection_keeps_duplicates(self):
        pts = [Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)]
        frame = LocalFrame.identity_at(pts[2])
        s = make_snapshot(pts, pts[2], frame.observe, multiplicity_detection=True)
        assert len(s.points) == 3

    def test_moving_robots_look_static(self):
        # A snapshot is positions only: nothing distinguishes a mover.
        pts = polygon(4)
        frame = LocalFrame.identity_at(pts[0])
        s1 = make_snapshot(pts, pts[0], frame.observe)
        s2 = make_snapshot(list(pts), pts[0], frame.observe)
        assert s1.points == s2.points
