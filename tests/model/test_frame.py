"""Unit tests for local frames."""

import random

from repro.geometry import Vec2
from repro.model import LocalFrame

from ..conftest import random_points


class TestLocalFrame:
    def test_identity_at_centers_origin(self):
        f = LocalFrame.identity_at(Vec2(3, 4))
        assert f.observe(Vec2(3, 4)).approx_eq(Vec2.zero())

    def test_observe_roundtrip(self):
        f = LocalFrame.identity_at(Vec2(1, -1))
        p = Vec2(7, 2)
        assert f.to_global(f.observe(p)).approx_eq(p, 1e-9)

    def test_random_frame_is_ego_centered(self):
        rng = random.Random(1)
        for _ in range(10):
            origin = Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5))
            f = LocalFrame.random_at(origin, rng)
            assert f.observe(origin).approx_eq(Vec2.zero(), 1e-9)

    def test_random_frame_roundtrip(self):
        rng = random.Random(2)
        f = LocalFrame.random_at(Vec2(1, 2), rng)
        for p in random_points(5, seed=3):
            assert f.to_global(f.observe(p)).approx_eq(p, 1e-9)

    def test_random_frame_preserves_relative_structure(self):
        # Frames are similarities: distance RATIOS must be preserved.
        rng = random.Random(4)
        f = LocalFrame.random_at(Vec2.zero(), rng)
        a, b, c = Vec2(1, 0), Vec2(0, 2), Vec2(-1, -1)
        la, lb, lc = f.observe(a), f.observe(b), f.observe(c)
        ratio_before = a.dist(b) / a.dist(c)
        ratio_after = la.dist(lb) / la.dist(lc)
        assert abs(ratio_before - ratio_after) < 1e-9

    def test_reflection_occurs(self):
        rng = random.Random(5)
        flags = {LocalFrame.random_at(Vec2.zero(), rng).is_mirrored() for _ in range(50)}
        assert flags == {True, False}

    def test_no_reflection_when_disallowed(self):
        rng = random.Random(6)
        for _ in range(20):
            f = LocalFrame.random_at(Vec2.zero(), rng, allow_reflection=False)
            assert not f.is_mirrored()

    def test_scale_bounds(self):
        rng = random.Random(7)
        for _ in range(50):
            f = LocalFrame.random_at(Vec2.zero(), rng, min_scale=0.5, max_scale=2.0)
            # |observe(unit)| equals the frame scale
            scale = f.observe(Vec2(1, 0)).dist(f.observe(Vec2.zero()))
            assert 0.5 - 1e-9 <= scale <= 2.0 + 1e-9
