"""Unit tests for patterns."""

import pytest

from repro.geometry import Vec2
from repro.model import Pattern

from ..conftest import polygon, random_points


class TestPattern:
    def test_from_points(self):
        p = Pattern.from_points(polygon(4))
        assert len(p) == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Pattern.from_points([])

    def test_normalized_unit_sec(self):
        p = Pattern.from_points([q * 5 + Vec2(3, 3) for q in polygon(5)])
        n = p.normalized()
        sec = n.sec()
        assert sec.center.approx_eq(Vec2.zero(), 1e-7)
        assert abs(sec.radius - 1) < 1e-7

    def test_normalize_degenerate_raises(self):
        with pytest.raises(ValueError):
            Pattern.from_points([Vec2(1, 1), Vec2(1, 1)]).normalized()

    def test_distinct_points(self):
        p = Pattern.from_points([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])
        assert len(p.distinct_points()) == 2
        assert p.has_multiplicity()

    def test_no_multiplicity(self):
        assert not Pattern.from_points(polygon(4)).has_multiplicity()

    def test_second_closest_distance(self):
        p = Pattern.from_points([Vec2(0.2, 0), Vec2(0.5, 0), Vec2(-1, 0), Vec2(1, 0)])
        assert abs(p.second_closest_distance(Vec2.zero()) - 0.5) < 1e-9

    def test_second_closest_needs_two(self):
        with pytest.raises(ValueError):
            Pattern.from_points([Vec2(1, 0)]).second_closest_distance(Vec2.zero())

    def test_matches_similar(self):
        p = Pattern.from_points(polygon(6))
        rotated = [q.rotated(0.7) * 2 + Vec2(1, 1) for q in polygon(6)]
        assert p.matches(rotated)

    def test_matches_rejects(self):
        p = Pattern.from_points(polygon(6))
        assert not p.matches(random_points(6, seed=2))

    def test_scaled_to(self):
        from repro.geometry import Circle

        p = Pattern.from_points(polygon(3))
        target = Circle(Vec2(5, 5), 2.0)
        scaled = p.scaled_to(target)
        sec = scaled.sec()
        assert sec.center.approx_eq(Vec2(5, 5), 1e-6)
        assert abs(sec.radius - 2.0) < 1e-6

    def test_iter(self):
        pts = polygon(3)
        assert list(Pattern.from_points(pts)) == pts
