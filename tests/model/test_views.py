"""Unit tests for local views and the view order."""

import math

import pytest

from repro.geometry import Vec2
from repro.model import (
    compare_views,
    equivalent_views,
    local_view,
    max_view_not_holding_sec,
    max_view_points,
    view_order,
)

from ..conftest import polygon, random_points


class TestLocalView:
    def test_view_of_center_robot_raises(self):
        pts = polygon(4) + [Vec2.zero()]
        with pytest.raises(ValueError):
            local_view(pts, Vec2.zero(), Vec2.zero())

    def test_own_coordinate_is_unit(self):
        pts = polygon(5)
        v = local_view(pts, Vec2.zero(), pts[0])
        assert any(abs(a) < 1e-9 and abs(r - 1) < 1e-9 for a, r, _ in v.coords)

    def test_polygon_views_equal(self):
        pts = polygon(6, phase=0.3)
        views = [local_view(pts, Vec2.zero(), p) for p in pts]
        for v in views[1:]:
            assert compare_views(views[0], v) == 0

    def test_polygon_views_symmetric(self):
        pts = polygon(6)
        v = local_view(pts, Vec2.zero(), pts[0])
        assert v.symmetric  # every vertex sits on a mirror axis

    def test_asymmetric_views_differ(self):
        pts = random_points(6, seed=3)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        views = [local_view(pts, c, p) for p in pts if not p.approx_eq(c)]
        distinct = 0
        for i in range(len(views)):
            for j in range(i + 1, len(views)):
                if compare_views(views[i], views[j]) != 0:
                    distinct += 1
        assert distinct == len(views) * (len(views) - 1) // 2

    def test_rotation_invariance(self):
        pts = random_points(7, seed=4)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        v1 = local_view(pts, c, pts[0])
        theta = 1.1
        rotated = [p.rotated(theta) for p in pts]
        v2 = local_view(rotated, c.rotated(theta), rotated[0])
        assert compare_views(v1, v2) == 0

    def test_reflection_invariance(self):
        # The view maximises over orientation, so mirroring cannot change it.
        pts = random_points(7, seed=5)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        v1 = local_view(pts, c, pts[2])
        mirrored = [p.mirrored_x() for p in pts]
        v2 = local_view(mirrored, c.mirrored_x(), mirrored[2])
        assert compare_views(v1, v2) == 0

    def test_scaling_invariance(self):
        pts = random_points(7, seed=6)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        v1 = local_view(pts, c, pts[1])
        scaled = [p * 3.7 for p in pts]
        v2 = local_view(scaled, c * 3.7, scaled[1])
        assert compare_views(v1, v2) == 0

    def test_multiplicity_distinguishes(self):
        base = polygon(5)
        single = base + [Vec2(0.3, 0.2)]
        double = base + [Vec2(0.3, 0.2), Vec2(0.3, 0.2)]
        v1 = local_view(single, Vec2.zero(), base[0])
        v2 = local_view(double, Vec2.zero(), base[0])
        assert compare_views(v1, v2) != 0


class TestViewOrder:
    def test_closest_robot_has_max_view(self):
        # Library convention: closer to the center = greater view.
        pts = polygon(6) + [Vec2(0.2, 0.1)]
        top = max_view_points(pts, Vec2.zero())
        assert len(top) == 1
        assert top[0].approx_eq(Vec2(0.2, 0.1))

    def test_order_is_descending(self):
        pts = random_points(8, seed=7)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        ordered = view_order(pts, c)
        for (_, v1), (_, v2) in zip(ordered, ordered[1:]):
            assert compare_views(v1, v2) >= 0

    def test_max_view_ties_on_polygon(self):
        pts = polygon(5)
        assert len(max_view_points(pts, Vec2.zero())) == 5

    def test_center_robot_excluded(self):
        pts = polygon(5) + [Vec2.zero()]
        ordered = view_order(pts, Vec2.zero())
        assert len(ordered) == 5

    def test_max_view_not_holding_sec(self):
        # Two diametral robots hold the SEC; the inner ones do not.
        pts = [Vec2(-1, 0), Vec2(1, 0), Vec2(0.3, 0.4), Vec2(-0.2, 0.5), Vec2(0, -0.6), Vec2(0.5, 0.1), Vec2(-0.5, -0.2)]
        top = max_view_not_holding_sec(pts, Vec2.zero())
        assert top
        for p in top:
            assert not p.approx_eq(Vec2(-1, 0))
            assert not p.approx_eq(Vec2(1, 0))


class TestEquivalence:
    def test_equivalent_on_symmetric_pair(self):
        pts = polygon(4, phase=0.2)
        v1 = local_view(pts, Vec2.zero(), pts[0])
        v2 = local_view(pts, Vec2.zero(), pts[1])
        assert equivalent_views(v1, v2)

    def test_not_equivalent_different_configs(self):
        pts = random_points(5, seed=9)
        from repro.geometry import smallest_enclosing_circle

        c = smallest_enclosing_circle(pts).center
        views = [local_view(pts, c, p) for p in pts if not p.approx_eq(c)]
        assert not equivalent_views(views[0], views[1])
