"""Unit tests for configurations."""

from repro.geometry import Vec2
from repro.model import Configuration, robots_on_circle, robots_within

from ..conftest import polygon


class TestConfiguration:
    def test_from_points_and_len(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(1, 1)])
        assert len(cfg) == 2

    def test_indexing(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(1, 1)])
        assert cfg[1] == Vec2(1, 1)

    def test_iteration(self):
        pts = [Vec2(0, 0), Vec2(1, 1)]
        cfg = Configuration.from_points(pts)
        assert list(cfg) == pts

    def test_points_copy(self):
        cfg = Configuration.from_points([Vec2(0, 0)])
        pts = cfg.points()
        pts.append(Vec2(9, 9))
        assert len(cfg) == 1

    def test_distinct_points_multiplicity(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])
        distinct = cfg.distinct_points()
        assert len(distinct) == 2
        counts = {p.as_tuple(): m for p, m in distinct}
        assert counts[(0.0, 0.0)] == 2
        assert counts[(1.0, 0.0)] == 1

    def test_multiplicity_of(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])
        assert cfg.multiplicity_of(Vec2(0, 0)) == 2
        assert cfg.multiplicity_of(Vec2(5, 5)) == 0

    def test_has_multiplicity(self):
        assert Configuration.from_points([Vec2(0, 0), Vec2(0, 0)]).has_multiplicity()
        assert not Configuration.from_points([Vec2(0, 0), Vec2(1, 0)]).has_multiplicity()

    def test_sec(self):
        cfg = Configuration.from_points(polygon(4))
        assert abs(cfg.sec().radius - 1) < 1e-7

    def test_moved(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(1, 1)])
        moved = cfg.moved(0, Vec2(5, 5))
        assert moved[0] == Vec2(5, 5)
        assert cfg[0] == Vec2(0, 0)  # original untouched

    def test_translated(self):
        cfg = Configuration.from_points([Vec2(0, 0), Vec2(1, 0)])
        t = cfg.translated(Vec2(1, 2))
        assert t[0] == Vec2(1, 2)
        assert t[1] == Vec2(2, 2)


class TestSpatialQueries:
    def test_robots_within(self):
        pts = polygon(6) + [Vec2(0.1, 0.0)]
        inner = robots_within(pts, Vec2.zero(), 0.5)
        assert len(inner) == 1

    def test_robots_within_excludes_boundary(self):
        pts = [Vec2(0.5, 0)]
        assert robots_within(pts, Vec2.zero(), 0.5) == []

    def test_robots_on_circle(self):
        from repro.geometry import Circle

        pts = polygon(5) + [Vec2(0.3, 0)]
        on = robots_on_circle(pts, Circle(Vec2.zero(), 1.0))
        assert len(on) == 5
