"""Cache-on vs cache-off equivalence: the memoisation contract.

The geometry / terminal-probe caches key on the bit-exact coordinate
fingerprint and every memoised function is pure, so a cache hit returns
a value computed from bit-identical inputs by the identical code path.
The observable consequence — pinned here — is that every field of every
:class:`RunRecord` is bit-for-bit identical with caching enabled and
disabled, across scenarios, for the serial runner and the process pool
alike.

``TestSmoke`` is the quick subset CI runs on every push
(``pytest tests/analysis/test_cache_equivalence.py -k Smoke``); the
full matrix below it covers two scenarios, three seeds and both
runners.
"""

import pytest

from repro.analysis import BatchConfig, run
from repro.analysis.scenarios import ScenarioSpec
from repro.geometry.memo import (
    cache_enabled,
    clear_caches,
    set_cache_enabled,
)

from .records import assert_records_equal, serial_reference

SPECS = [
    ScenarioSpec(
        name="equiv-polygon7",
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 7}),
        pattern=("polygon", {"n": 7}),
        max_steps=200_000,
    ),
    ScenarioSpec(
        name="equiv-rings9",
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 9}),
        pattern=("rings", {"counts": [5, 4]}),
        max_steps=200_000,
    ),
]

SEEDS = [0, 1, 2]


@pytest.fixture(autouse=True)
def _restore_cache_switch():
    previous = cache_enabled()
    yield
    set_cache_enabled(previous)
    clear_caches()


def _runs(spec, seeds, *, enabled, workers=None):
    set_cache_enabled(enabled)
    clear_caches()
    if workers is None:
        return serial_reference(spec, seeds).runs
    return run(spec, seeds, BatchConfig(workers=workers)).runs


class TestSmoke:
    """One scenario, one seed, serial: the fast CI gate."""

    def test_serial_single_seed(self):
        on = _runs(SPECS[0], [0], enabled=True)
        off = _runs(SPECS[0], [0], enabled=False)
        assert_records_equal(on, off)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestSerialEquivalence:
    def test_bit_for_bit(self, spec):
        on = _runs(spec, SEEDS, enabled=True)
        off = _runs(spec, SEEDS, enabled=False)
        assert_records_equal(on, off)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestParallelEquivalence:
    def test_bit_for_bit(self, spec):
        on = _runs(spec, SEEDS, enabled=True, workers=2)
        off = _runs(spec, SEEDS, enabled=False, workers=2)
        assert_records_equal(on, off)

    def test_parallel_matches_serial_with_caches_on(self, spec):
        # The pool inherits the cache switch through the environment
        # mirror; its records must equal the serial reference exactly.
        parallel = _runs(spec, SEEDS, enabled=True, workers=2)
        serial = _runs(spec, SEEDS, enabled=True)
        assert_records_equal(parallel, serial)
