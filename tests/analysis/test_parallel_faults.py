"""Fault injection: hangs, worker death and in-run exceptions.

Uses the registry's ``faulty-random`` initial-configuration builder,
which can hang, hard-kill the worker process (simulating OOM/segfault
death) or raise for chosen seeds — and appends every execution attempt
to a log file so retry counts are observable.
"""

import pytest

from repro.analysis import BatchConfig, ScenarioSpec, run

from .records import assert_records_equal, serial_reference

N = 5
SEEDS = list(range(6))


def _spec(tmp_path, **fault_params):
    log = tmp_path / "attempts.log"
    params = {"n": N, "attempts_log": str(log), **fault_params}
    spec = ScenarioSpec(
        name="faulty-scn",
        algorithm="form-pattern",
        scheduler="round-robin",
        initial=("faulty-random", params),
        pattern=("polygon", {"n": N}),
        max_steps=5_000,
    )
    return spec, log


def _attempts(log):
    return [int(line) for line in log.read_text().split()]


def _clean_reference(seeds):
    spec = ScenarioSpec(
        name="faulty-scn",
        algorithm="form-pattern",
        scheduler="round-robin",
        initial=("faulty-random", {"n": N}),
        pattern=("polygon", {"n": N}),
        max_steps=5_000,
    )
    return serial_reference(spec, seeds)


def test_hanging_seed_times_out_others_survive(tmp_path):
    spec, _ = _spec(tmp_path, hang_seeds=[3], hang_time=60.0)
    batch = run(spec, SEEDS, BatchConfig(workers=2, timeout=0.5))
    by_seed = {r.seed: r for r in batch.runs}
    assert by_seed[3].reason == "timeout"
    assert not by_seed[3].formed and not by_seed[3].terminated
    good = [r for r in batch.runs if r.seed != 3]
    reference = {r.seed: r for r in _clean_reference(SEEDS).runs}
    assert_records_equal(good, [reference[r.seed] for r in good])


def test_worker_death_retries_then_records_failure(tmp_path):
    spec, log = _spec(tmp_path, crash_seeds=[2])
    batch = run(
        spec, SEEDS, BatchConfig(workers=2, retries=2, backoff=0.0)
    )
    by_seed = {r.seed: r for r in batch.runs}
    assert by_seed[2].reason == "worker_died"
    # Initial attempt + exactly the configured number of retries.
    assert _attempts(log).count(2) == 1 + 2
    for seed in SEEDS:
        if seed != 2:
            assert by_seed[seed].reason == "terminal"
            assert _attempts(log).count(seed) == 1


def test_worker_death_zero_retries(tmp_path):
    spec, log = _spec(tmp_path, crash_seeds=[1])
    batch = run(spec, [0, 1], BatchConfig(workers=2, retries=0))
    by_seed = {r.seed: r for r in batch.runs}
    assert by_seed[1].reason == "worker_died"
    assert _attempts(log).count(1) == 1


def test_raising_seed_becomes_error_record_without_retry(tmp_path):
    spec, log = _spec(tmp_path, error_seeds=[1])
    batch = run(spec, SEEDS, BatchConfig(workers=2, retries=3))
    by_seed = {r.seed: r for r in batch.runs}
    assert by_seed[1].reason == "error: RuntimeError: injected fault for seed 1"
    # A deterministic exception is not retried.
    assert _attempts(log).count(1) == 1
    assert all(by_seed[s].reason == "terminal" for s in SEEDS if s != 1)


def test_every_seed_yields_exactly_one_record(tmp_path):
    spec, _ = _spec(
        tmp_path, crash_seeds=[0], error_seeds=[4], hang_seeds=[5],
        hang_time=60.0,
    )
    batch = run(
        spec,
        SEEDS,
        BatchConfig(workers=3, timeout=0.5, retries=1, backoff=0.0),
    )
    assert [r.seed for r in batch.runs] == SEEDS
    reasons = {r.seed: r.reason for r in batch.runs}
    assert reasons[0] == "worker_died"
    assert reasons[4].startswith("error:")
    assert reasons[5] == "timeout"
    assert reasons[1] == reasons[2] == reasons[3] == "terminal"


def test_negative_retries_rejected(tmp_path):
    spec, _ = _spec(tmp_path)
    with pytest.raises(ValueError):
        run(spec, SEEDS, BatchConfig(workers=2, retries=-1))
