"""Run-journal round-trips and batch resume semantics."""

import json
import math

import pytest

from repro.analysis import (
    BatchConfig,
    RunJournal,
    RunRecord,
    ScenarioSpec,
    failure_record,
    run,
)
from repro.analysis.journal import decode_record, encode_record

from .records import assert_record_equal, assert_records_equal, serial_reference


def _record(seed, distance=1.5, reason="terminal"):
    return RunRecord(
        seed=seed,
        formed=True,
        terminated=True,
        steps=120,
        cycles=40,
        epochs=6,
        random_bits=3,
        coin_flips=3,
        float_draws=0,
        distance=distance,
        reason=reason,
    )


class TestRoundTrip:
    def test_plain_record(self):
        rec = _record(7)
        assert_record_equal(decode_record(json.loads(encode_record(rec))), rec)

    @pytest.mark.parametrize(
        "distance", [float("nan"), float("inf"), float("-inf")]
    )
    def test_nonfinite_distance(self, distance):
        rec = _record(1, distance=distance)
        line = encode_record(rec)
        # Every journal line must stay standard JSON (no bare NaN token).
        json.loads(line, parse_constant=pytest.fail)
        out = decode_record(json.loads(line))
        if math.isnan(distance):
            assert math.isnan(out.distance)
        else:
            assert out.distance == distance

    def test_unicode_reason(self):
        rec = _record(2, reason="δ-stalled ✓ 中断")
        out = decode_record(json.loads(encode_record(rec)))
        assert out.reason == "δ-stalled ✓ 中断"

    def test_float_distance_exact(self):
        rec = _record(3, distance=0.1 + 0.2)
        out = decode_record(json.loads(encode_record(rec)))
        assert out.distance == rec.distance  # bit-for-bit via repr round-trip

    def test_failure_record_round_trip(self):
        rec = failure_record(9, "error: RuntimeError: boom")
        out = decode_record(json.loads(encode_record(rec)))
        assert_record_equal(out, rec)


class TestJournalFile:
    def test_append_and_load(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.start("scn", "abc123", {"name": "scn"})
        records = [_record(0), _record(1, distance=float("inf"))]
        for rec in records:
            journal.append(rec)
        state = journal.load()
        assert state.meta["scenario"] == "scn"
        assert state.meta["fingerprint"] == "abc123"
        assert state.seeds() == {0, 1}
        assert_records_equal(
            [state.records[0], state.records[1]], records
        )
        assert not state.truncated

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.start("scn", "abc123")
        journal.append(_record(0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "run", "seed": 1, "for')  # killed mid-write
        state = journal.load()
        assert state.truncated
        assert state.seeds() == {0}

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"kind": "run"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt journal line 1"):
            RunJournal(path).load()

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown journal line kind"):
            RunJournal(path).load()

    def test_missing_file_loads_empty(self, tmp_path):
        state = RunJournal(tmp_path / "absent.jsonl").load()
        assert state.meta is None and not state.records


def _spec(attempts_log=None, n=5):
    initial_params = {"n": n}
    if attempts_log is not None:
        initial_params["attempts_log"] = str(attempts_log)
    return ScenarioSpec(
        name="journal-scn",
        algorithm="form-pattern",
        scheduler="round-robin",
        initial=("faulty-random", initial_params),
        pattern=("polygon", {"n": n}),
        max_steps=5_000,
    )


def _attempts(path):
    if not path.exists():
        return []
    return [int(line) for line in path.read_text().split()]


class TestResume:
    SEEDS = list(range(12))

    def test_resume_skips_journaled_seeds_and_matches_uninterrupted(
        self, tmp_path
    ):
        journal = tmp_path / "batch.jsonl"
        log = tmp_path / "attempts.log"
        spec = _spec(attempts_log=log)

        # An "interrupted" batch: only the first half of the seeds got
        # journaled before the process died.
        first = run(
            spec, self.SEEDS[:6], BatchConfig(workers=2, journal=journal)
        )
        assert sorted(_attempts(log)) == self.SEEDS[:6]

        resumed = run(
            spec,
            self.SEEDS,
            BatchConfig(workers=2, journal=journal, resume=True),
        )
        # No seed ran twice: the journaled half was loaded, not re-run.
        assert sorted(_attempts(log)) == self.SEEDS
        assert [r.seed for r in resumed.runs] == self.SEEDS

        # And the resumed batch is bit-for-bit an uninterrupted one.
        uninterrupted = serial_reference(_spec(), self.SEEDS)
        assert_records_equal(resumed.runs, uninterrupted.runs)
        assert resumed.row() == uninterrupted.row()
        assert_records_equal(resumed.runs[:6], first.runs)

    def test_journal_written_during_interrupted_half(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        spec = _spec()
        run(spec, [0, 1, 2], BatchConfig(workers=2, journal=journal))
        state = RunJournal(journal).load()
        assert state.seeds() == {0, 1, 2}
        assert state.meta["fingerprint"] == spec.fingerprint()

    def test_existing_journal_without_resume_refused(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        spec = _spec()
        run(spec, [0], BatchConfig(workers=1, journal=journal))
        with pytest.raises(ValueError, match="resume"):
            run(spec, [0, 1], BatchConfig(workers=1, journal=journal))

    def test_foreign_journal_refused(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        run(_spec(), [0], BatchConfig(workers=1, journal=journal))
        other = _spec(n=6)
        with pytest.raises(ValueError, match="different scenario"):
            run(
                other,
                [0, 1],
                BatchConfig(workers=1, journal=journal, resume=True),
            )

    def test_resume_with_fresh_journal_is_plain_run(self, tmp_path):
        journal = tmp_path / "new.jsonl"
        batch = run(
            _spec(),
            [0, 1],
            BatchConfig(workers=1, journal=journal, resume=True),
        )
        assert [r.seed for r in batch.runs] == [0, 1]
        assert RunJournal(journal).load().seeds() == {0, 1}
