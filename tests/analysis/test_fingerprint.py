"""The canonical workload fingerprint is one scheme, everywhere.

``ScenarioSpec.fingerprint()`` (what the journal records),
``spec_fingerprint(dict)`` (what the store and the service compute from
plain data) and the value read back out of a journal metadata line must
agree — for every registered pattern, algorithm, scheduler, initial
builder and frame policy.  The parameter tables below are checked for
exhaustiveness against the live registries, so registering a new
component without extending the cross-check fails loudly.
"""

import json

import pytest

from repro.analysis import RunJournal, ScenarioSpec, spec_fingerprint
from repro.analysis.scenarios import (
    ALGORITHM_BUILDERS,
    FRAME_POLICY_BUILDERS,
    INITIAL_BUILDERS,
    PATTERN_BUILDERS,
    SCHEDULER_BUILDERS,
    canonical_spec_json,
)

#: Minimal valid parameters per registered component name.
PATTERN_PARAMS = {
    "polygon": {"n": 6},
    "line": {"n": 5},
    "grid": {"rows": 2, "cols": 3},
    "star": {"spikes": 3},
    "rings": {"counts": [4, 3]},
    "random": {"n": 6, "seed": 1},
    "center-multiplicity": {"n_outer": 5, "center_count": 2},
    "multiplicity": {"base": ["polygon", {"n": 5}], "doubled_indices": [0]},
}
ALGORITHM_PARAMS = {
    "form-pattern": {},
    "multiplicity-form-pattern": {},
    "yamauchi-yamashita": {},
    "global-frame": {},
    "scattering": {"bits": 2},
}
SCHEDULER_PARAMS = {
    "fsync": {},
    "round-robin": {},
    "ssync": {},
    "async": {},
    "async-aggressive": {},
}
INITIAL_PARAMS = {
    "random": {"n": 5},
    "ngon": {"n": 5},
    "faulty-random": {"n": 5},
    "swarm-grid": {"n": 9, "jitter": 0.25},
    "swarm-ring": {"n": 9},
    "swarm-cluster": {"n": 9, "clusters": 3},
    "stacked": {"n": 8, "stack_size": 4},
}
FRAME_POLICY_PARAMS = {
    "random": {},
    "chirality": {},
    "global": {},
}
FAULT_VARIANTS = [
    None,
    {"sensor": {"sigma": 1e-6}},
    {"crash": {"count": 1, "window": [0, 500]}},
]


def _specs():
    """One spec per registered component (plus fault variants)."""
    specs = []
    for pattern, params in PATTERN_PARAMS.items():
        specs.append(
            ScenarioSpec(
                name=f"pattern-{pattern}",
                initial=("random", {"n": 6}),
                pattern=(pattern, params),
            )
        )
    for algorithm, params in ALGORITHM_PARAMS.items():
        specs.append(
            ScenarioSpec(
                name=f"algo-{algorithm}", algorithm=(algorithm, params)
            )
        )
    for scheduler, params in SCHEDULER_PARAMS.items():
        specs.append(
            ScenarioSpec(
                name=f"sched-{scheduler}", scheduler=(scheduler, params)
            )
        )
    specs.append(
        ScenarioSpec(
            name="sched-async-adversarial",
            scheduler=("async", {"policy": "starve"}),
        )
    )
    for initial, params in INITIAL_PARAMS.items():
        specs.append(
            ScenarioSpec(name=f"init-{initial}", initial=(initial, params))
        )
    for policy, params in FRAME_POLICY_PARAMS.items():
        specs.append(
            ScenarioSpec(name=f"frames-{policy}", frame_policy=(policy, params))
        )
    for faults in FAULT_VARIANTS:
        specs.append(ScenarioSpec(name="faulted", faults=faults))
    specs.append(
        ScenarioSpec(name="sensed", sensing=("limited", {"radius": 3.0}))
    )
    return specs


def test_parameter_tables_cover_every_registered_component():
    assert set(PATTERN_PARAMS) == set(PATTERN_BUILDERS)
    assert set(ALGORITHM_PARAMS) == set(ALGORITHM_BUILDERS)
    assert set(SCHEDULER_PARAMS) == set(SCHEDULER_BUILDERS)
    assert set(INITIAL_PARAMS) == set(INITIAL_BUILDERS)
    assert set(FRAME_POLICY_PARAMS) == set(FRAME_POLICY_BUILDERS)


@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
def test_dict_scheme_agrees_with_method(spec):
    """spec_fingerprint over plain (JSON round-tripped) data == method."""
    as_plain = json.loads(json.dumps(spec.to_dict()))
    assert spec_fingerprint(as_plain) == spec.fingerprint()


@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
def test_journal_metadata_agrees_with_canonical_scheme(spec, tmp_path):
    """What a journal records is what the store/service would compute."""
    journal = RunJournal(tmp_path / "j.jsonl")
    journal.start(spec.name, spec.fingerprint(), spec.to_dict())
    meta = journal.load().meta
    assert meta["fingerprint"] == spec.fingerprint()
    assert spec_fingerprint(meta["spec"]) == meta["fingerprint"]


def test_canonical_json_is_normalisation_stable():
    spec = ScenarioSpec(name="n", scheduler="async")  # shorthand component
    explicit = ScenarioSpec(name="n", scheduler=("async", {}))
    assert canonical_spec_json(spec.to_dict()) == canonical_spec_json(
        explicit.to_dict()
    )
    assert spec.fingerprint() == explicit.fingerprint()


def test_distinct_workloads_distinct_fingerprints():
    base = ScenarioSpec(name="n")
    assert (
        ScenarioSpec(name="n", faults={"sensor": {"sigma": 1e-6}}).fingerprint()
        != base.fingerprint()
    )
    assert ScenarioSpec(name="n", max_steps=1).fingerprint() != base.fingerprint()
