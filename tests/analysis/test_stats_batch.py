"""Unit tests for statistics and the batch runner."""

import math

import pytest

from repro import patterns
from repro.algorithms import FormPattern
from repro.analysis import (
    BatchResult,
    RunRecord,
    binomial_ci,
    format_table,
    geometric_mean,
    mean,
    median,
    percentile,
    stddev,
    variance,
)
from repro.analysis.batch import _run_batch_factories
from repro.scheduler import RoundRobinScheduler


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert math.isnan(mean([]))

    def test_variance_stddev(self):
        assert abs(variance([1, 2, 3]) - 1.0) < 1e-12
        assert abs(stddev([1, 2, 3]) - 1.0) < 1e-12
        assert variance([5]) == 0

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_percentile(self):
        vals = list(range(1, 11))
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 10
        assert abs(percentile(vals, 50) - 5.5) < 1e-12

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            percentile([1], 150)
        with pytest.raises(ValueError):
            percentile([1], -0.5)

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))
        assert math.isnan(median([]))

    def test_percentile_nan_input_propagates(self):
        # A NaN among the values poisons the order statistics; the result
        # must be NaN rather than an arbitrary sort-dependent number.
        nan = float("nan")
        for q in (0, 50, 100):
            assert math.isnan(percentile([1.0, nan, 3.0], q))
        assert math.isnan(median([nan, 2.0]))

    def test_percentile_single_element(self):
        for q in (0, 37.5, 50, 100):
            assert percentile([4.2], q) == 4.2
        assert median([4.2]) == 4.2

    def test_percentile_ties(self):
        assert percentile([2, 2, 2, 2], 25) == 2
        assert percentile([2, 2, 2, 2], 90) == 2
        assert median([2, 2, 2, 2]) == 2
        assert median([1, 2, 2, 3]) == 2

    def test_percentile_endpoints_and_interpolation(self):
        assert percentile([1, 3], 0) == 1
        assert percentile([1, 3], 100) == 3
        assert percentile([1, 3], 25) == 1.5

    def test_binomial_ci(self):
        lo, hi = binomial_ci(90, 100)
        assert 0.8 < lo < 0.9 < hi <= 1.0

    def test_binomial_ci_empty(self):
        assert binomial_ci(0, 0) == (0.0, 1.0)

    def test_binomial_ci_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            binomial_ci(1, -1)
        with pytest.raises(ValueError):
            binomial_ci(-1, 10)
        with pytest.raises(ValueError):
            binomial_ci(11, 10)

    def test_binomial_ci_extremes_stay_in_unit_interval(self):
        lo, hi = binomial_ci(0, 20)
        assert lo <= 1e-12 and 0.0 < hi < 1.0
        lo, hi = binomial_ci(20, 20)
        assert 0.0 < lo < 1.0 and hi >= 1.0 - 1e-12

    def test_geometric_mean(self):
        assert abs(geometric_mean([1, 4]) - 2.0) < 1e-12
        with pytest.raises(ValueError):
            geometric_mean([0, 1])


class TestBatchResult:
    def _record(self, seed, formed=True, cycles=100, bits=10):
        return RunRecord(
            seed=seed,
            formed=formed,
            terminated=formed,
            steps=1000,
            cycles=cycles,
            epochs=10,
            random_bits=bits,
            coin_flips=bits,
            float_draws=0,
            distance=5.0,
            reason="terminal" if formed else "max_steps",
        )

    def test_success_rate(self):
        b = BatchResult("x")
        b.runs = [self._record(0), self._record(1, formed=False)]
        assert b.success_rate() == 0.5

    def test_stats_over_successes_only(self):
        b = BatchResult("x")
        b.runs = [self._record(0, cycles=100), self._record(1, formed=False, cycles=9999)]
        assert b.stat("cycles") == 100

    def test_bits_per_cycle(self):
        b = BatchResult("x")
        b.runs = [self._record(0, cycles=100, bits=50)]
        assert b.bits_per_cycle() == 0.5

    def test_row_keys(self):
        b = BatchResult("scenario-1")
        b.runs = [self._record(0)]
        row = b.row()
        assert row["scenario"] == "scenario-1"
        assert row["success"] == 1.0

    def test_stat_aggregations(self):
        b = BatchResult("x")
        b.runs = [self._record(i, cycles=c) for i, c in enumerate([10, 20, 30])]
        assert b.stat("cycles", "median") == 20
        assert b.stat("cycles", "max") == 30
        assert b.stat("cycles", "min") == 10

    def test_unknown_agg_raises(self):
        b = BatchResult("x")
        b.runs = [self._record(0)]
        with pytest.raises(ValueError):
            b.stat("cycles", "mode")


class TestRunBatch:
    def test_duplicate_seeds_rejected(self):
        # A repeated seed reruns the identical simulation and would
        # silently double-count its outcome in success_rate.
        pat = patterns.regular_polygon(7)
        with pytest.raises(ValueError, match="duplicate"):
            _run_batch_factories(
                "dup",
                lambda: FormPattern(pat),
                lambda seed: RoundRobinScheduler(),
                lambda seed: patterns.random_configuration(7, seed=seed),
                seeds=[1, 2, 1],
            )

    def test_on_record_sees_every_run(self):
        pat = patterns.regular_polygon(7)
        seen = []
        batch = _run_batch_factories(
            "cb",
            lambda: FormPattern(pat),
            lambda seed: RoundRobinScheduler(),
            lambda seed: patterns.random_configuration(7, seed=seed),
            seeds=[0, 1],
            max_steps=120_000,
            on_record=seen.append,
        )
        assert seen == batch.runs

    def test_small_batch(self):
        pat = patterns.regular_polygon(7)
        batch = _run_batch_factories(
            "e2e",
            lambda: FormPattern(pat),
            lambda seed: RoundRobinScheduler(),
            lambda seed: patterns.random_configuration(7, seed=seed),
            seeds=[0, 1],
            max_steps=120_000,
        )
        assert batch.n_runs() == 2
        assert batch.success_rate() == 1.0
        assert batch.bits_per_cycle() <= 1.0


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
