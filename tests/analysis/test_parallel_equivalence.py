"""Headline determinism suite: parallel execution == serial execution.

Every theorem-level claim is measured through batches of seeded runs, so
the parallel runner is only trustworthy if it is *bit-for-bit* the
serial reference: for each scenario and seed set, the facade
(:func:`repro.analysis.run`) must yield ``RunRecord`` lists identical
field by field (including ``random_bits`` and exact float equality on
``distance``) to the serial reference loop, independent of worker count
and of seed submission order.
"""

import random

import pytest

from repro.analysis import BatchConfig, ScenarioSpec, run

from .records import assert_records_equal, serial_reference

SCENARIOS = [
    ScenarioSpec(
        name="round-robin / n=5 polygon",
        algorithm="form-pattern",
        scheduler="round-robin",
        initial=("random", {"n": 5}),
        pattern=("polygon", {"n": 5}),
        max_steps=5_000,
    ),
    ScenarioSpec(
        name="ssync / n=6 random",
        algorithm="form-pattern",
        scheduler="ssync",
        initial=("random", {"n": 6}),
        pattern=("random", {"n": 6, "seed": 3}),
        max_steps=5_000,
    ),
    ScenarioSpec(
        name="async / n=6 star",
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 6}),
        pattern=("star", {"spikes": 3}),
        max_steps=5_000,
    ),
]

#: Fault-free scenarios that exercise the new subsystem code paths with
#: everything switched off: an explicit random activation policy must
#: reuse the stock scheduler loop bit-for-bit, and an empty fault spec
#: must normalise away entirely.
NOOP_FAULT_SCENARIOS = [
    ScenarioSpec(
        name="async + explicit random policy",
        algorithm="form-pattern",
        scheduler=("async", {"policy": "random"}),
        initial=("random", {"n": 6}),
        pattern=("star", {"spikes": 3}),
        max_steps=5_000,
    ),
    ScenarioSpec(
        name="async + empty fault plan",
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 6}),
        pattern=("star", {"spikes": 3}),
        max_steps=5_000,
        faults={},
    ),
]

SEEDS = list(range(20))


@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_parallel_matches_serial_across_worker_counts(spec):
    serial = serial_reference(spec, SEEDS)
    assert len(serial.runs) == len(SEEDS)
    for workers in (1, 2, 4):
        parallel = run(spec, SEEDS, BatchConfig(workers=workers))
        assert_records_equal(parallel.runs, serial.runs)
        assert parallel.name == serial.name


def test_results_independent_of_submission_order():
    spec = SCENARIOS[0]
    serial = serial_reference(spec, SEEDS)
    by_seed = {r.seed: r for r in serial.runs}
    shuffled = SEEDS[:]
    random.Random(7).shuffle(shuffled)
    parallel = run(spec, shuffled, BatchConfig(workers=4))
    # Runs come back in submission order; each record must equal the
    # serial record of the same seed.
    assert [r.seed for r in parallel.runs] == shuffled
    assert_records_equal(
        parallel.runs, [by_seed[s] for s in shuffled]
    )


def test_aggregates_match_serial():
    spec = SCENARIOS[0]
    serial = serial_reference(spec, SEEDS)
    parallel = run(spec, SEEDS, BatchConfig(workers=4))
    assert parallel.success_rate() == serial.success_rate()
    assert parallel.row() == serial.row()


def test_parallel_rejects_duplicate_seeds():
    with pytest.raises(ValueError, match="duplicate"):
        run(SCENARIOS[0], [1, 2, 1], BatchConfig(workers=2))


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run(SCENARIOS[0], [1], BatchConfig(workers=0))


@pytest.mark.parametrize(
    "spec", NOOP_FAULT_SCENARIOS, ids=lambda s: s.name
)
def test_disabled_faults_are_bit_identical_to_stock(spec):
    """Fault machinery switched off == fault machinery absent.

    The acceptance bar for the faults subsystem: with all faults
    disabled and the random activation policy, the new engine/scheduler
    code paths must produce bit-for-bit identical RunRecords to the
    stock scenario across serial and parallel execution.
    """
    stock = ScenarioSpec(
        name=spec.name,
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 6}),
        pattern=("star", {"spikes": 3}),
        max_steps=5_000,
    )
    reference = serial_reference(stock, SEEDS)
    for workers in (1, 2):
        batch = run(spec, SEEDS, BatchConfig(workers=workers))
        assert_records_equal(batch.runs, reference.runs)


@pytest.mark.slow
@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_equivalence_long_matrix(spec):
    """Nightly-only: a wider seed matrix across worker counts."""
    seeds = list(range(60))
    serial = serial_reference(spec, seeds)
    for workers in (2, 4, 8):
        parallel = run(spec, seeds, BatchConfig(workers=workers))
        assert_records_equal(parallel.runs, serial.runs)
