"""Headline determinism suite: parallel execution == serial execution.

Every theorem-level claim is measured through batches of seeded runs, so
the parallel runner is only trustworthy if it is *bit-for-bit* the
serial reference: for each scenario and seed set, ``run_batch_parallel``
must yield ``RunRecord`` lists identical field by field (including
``random_bits`` and exact float equality on ``distance``) to
``run_batch``, independent of worker count and of seed submission
order.
"""

import random

import pytest

from repro.analysis import ScenarioSpec, run_batch, run_batch_parallel

from .records import assert_records_equal, serial_reference

SCENARIOS = [
    ScenarioSpec(
        name="round-robin / n=5 polygon",
        algorithm="form-pattern",
        scheduler="round-robin",
        initial=("random", {"n": 5}),
        pattern=("polygon", {"n": 5}),
        max_steps=5_000,
    ),
    ScenarioSpec(
        name="ssync / n=6 random",
        algorithm="form-pattern",
        scheduler="ssync",
        initial=("random", {"n": 6}),
        pattern=("random", {"n": 6, "seed": 3}),
        max_steps=5_000,
    ),
    ScenarioSpec(
        name="async / n=6 star",
        algorithm="form-pattern",
        scheduler="async",
        initial=("random", {"n": 6}),
        pattern=("star", {"spikes": 3}),
        max_steps=5_000,
    ),
]

SEEDS = list(range(20))


@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_parallel_matches_serial_across_worker_counts(spec):
    serial = serial_reference(spec, SEEDS)
    assert len(serial.runs) == len(SEEDS)
    for workers in (1, 2, 4):
        parallel = run_batch_parallel(spec, SEEDS, workers=workers)
        assert_records_equal(parallel.runs, serial.runs)
        assert parallel.name == serial.name


def test_results_independent_of_submission_order():
    spec = SCENARIOS[0]
    serial = serial_reference(spec, SEEDS)
    by_seed = {r.seed: r for r in serial.runs}
    shuffled = SEEDS[:]
    random.Random(7).shuffle(shuffled)
    parallel = run_batch_parallel(spec, shuffled, workers=4)
    # Runs come back in submission order; each record must equal the
    # serial record of the same seed.
    assert [r.seed for r in parallel.runs] == shuffled
    assert_records_equal(
        parallel.runs, [by_seed[s] for s in shuffled]
    )


def test_aggregates_match_serial():
    spec = SCENARIOS[0]
    serial = serial_reference(spec, SEEDS)
    parallel = run_batch_parallel(spec, SEEDS, workers=4)
    assert parallel.success_rate() == serial.success_rate()
    assert parallel.row() == serial.row()


def test_parallel_rejects_duplicate_seeds():
    with pytest.raises(ValueError, match="duplicate"):
        run_batch_parallel(SCENARIOS[0], [1, 2, 1], workers=2)


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run_batch_parallel(SCENARIOS[0], [1], workers=0)


@pytest.mark.slow
@pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
def test_equivalence_long_matrix(spec):
    """Nightly-only: a wider seed matrix across worker counts."""
    seeds = list(range(60))
    serial = serial_reference(spec, seeds)
    for workers in (2, 4, 8):
        parallel = run_batch_parallel(spec, seeds, workers=workers)
        assert_records_equal(parallel.runs, serial.runs)
