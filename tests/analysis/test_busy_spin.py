"""Regression tests for the harvest-loop wait computation.

The pool's harvest loop blocks in ``connection.wait`` for up to
``_wait_timeout(...)`` seconds.  A queue entry whose retry wake-up time
has already passed used to clamp that timeout to zero, which turned the
loop into a 100% CPU busy-spin for as long as every worker slot stayed
occupied (a past-due entry waits for a *slot*, and a slot only frees
via a pipe/sentinel event — which interrupts the wait anyway).  These
tests fail against the pre-fix implementation.
"""

from types import SimpleNamespace

from repro.analysis.parallel import _POLL_INTERVAL, _wait_timeout


def _task(deadline=None):
    # _wait_timeout only reads ``.deadline``; no live process needed.
    return SimpleNamespace(deadline=deadline)


class TestWaitTimeout:
    def test_past_due_queue_entry_does_not_spin(self):
        """A retry whose wake time has passed must not clamp the wait to 0."""
        now = 100.0
        running = [_task(), _task()]  # all slots busy, no kill deadlines
        queue = [(7, 1, now - 5.0)]  # past-due retry, waiting for a slot
        assert _wait_timeout(now, running, queue) == _POLL_INTERVAL

    def test_entry_due_exactly_now_does_not_spin(self):
        now = 100.0
        assert _wait_timeout(now, [_task()], [(3, 1, now)]) == _POLL_INTERVAL

    def test_future_retry_bounds_the_wait(self):
        """A future wake-up still shortens the wait below the poll interval."""
        now = 100.0
        wake = now + 0.05
        wait = _wait_timeout(now, [_task()], [(3, 1, wake)])
        assert abs(wait - 0.05) < 1e-9

    def test_kill_deadline_bounds_the_wait(self):
        now = 100.0
        wait = _wait_timeout(now, [_task(deadline=now + 0.1)], [])
        assert abs(wait - 0.1) < 1e-9

    def test_expired_deadline_yields_zero_wait(self):
        """A hard-kill deadline in the past is actionable *now*."""
        now = 100.0
        assert _wait_timeout(now, [_task(deadline=now - 1.0)], []) == 0.0

    def test_idle_pool_uses_poll_interval(self):
        assert _wait_timeout(50.0, [], []) == _POLL_INTERVAL

    def test_nearest_event_wins(self):
        now = 10.0
        running = [_task(deadline=now + 0.2), _task()]
        queue = [(1, 1, now + 0.08), (2, 2, now - 3.0)]
        wait = _wait_timeout(now, running, queue)
        assert abs(wait - 0.08) < 1e-9
