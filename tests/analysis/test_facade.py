"""The unified batch facade and its deprecated shims."""

import warnings

import pytest

from repro.analysis import BatchConfig, ScenarioSpec, run
from repro.analysis.batch import RunReason, run_batch
from repro.analysis.parallel import run_batch_parallel

from .records import assert_records_equal, serial_reference

SPEC = ScenarioSpec(
    name="facade-scn",
    algorithm="form-pattern",
    scheduler="round-robin",
    initial=("random", {"n": 5}),
    pattern=("polygon", {"n": 5}),
    max_steps=5_000,
)
SEEDS = [0, 1, 2]


class TestBatchConfig:
    def test_defaults_resolve(self):
        config = BatchConfig()
        assert config.resolved_workers() >= 1
        config.validate()

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run(SPEC, SEEDS, BatchConfig(workers=0))

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run(SPEC, SEEDS, BatchConfig(retries=-1))

    def test_frozen(self):
        with pytest.raises(Exception):
            BatchConfig().workers = 3


class TestFacade:
    def test_none_config_is_default(self):
        batch = run(SPEC, [0])
        assert [r.seed for r in batch.runs] == [0]

    def test_serial_equals_pool(self):
        reference = serial_reference(SPEC, SEEDS)
        serial = run(SPEC, SEEDS, BatchConfig(workers=1))
        pooled = run(SPEC, SEEDS, BatchConfig(workers=2))
        assert_records_equal(serial.runs, reference.runs)
        assert_records_equal(pooled.runs, reference.runs)


class TestDeprecatedShims:
    def test_run_batch_parallel_warns_exactly_once_and_forwards(self):
        facade = run(SPEC, SEEDS, BatchConfig(workers=2))
        with pytest.warns(DeprecationWarning, match="run_batch_parallel") as rec:
            shimmed = run_batch_parallel(SPEC, SEEDS, workers=2)
        assert len(rec) == 1
        assert_records_equal(shimmed.runs, facade.runs)

    def test_run_batch_warns_exactly_once_and_forwards(self):
        built = SPEC.build()
        args = (
            built.name,
            built.algorithm_factory,
            built.scheduler_factory,
            built.initial_factory,
            SEEDS,
        )
        kwargs = dict(max_steps=built.max_steps, delta=built.delta)
        with pytest.warns(DeprecationWarning, match="run_batch") as rec:
            shimmed = run_batch(*args, **kwargs)
        assert len(rec) == 1
        assert_records_equal(shimmed.runs, serial_reference(SPEC, SEEDS).runs)

    def test_shims_stay_importable_from_package_root(self):
        from repro.analysis import run_batch as a, run_batch_parallel as b

        assert callable(a) and callable(b)

    def test_first_party_code_is_shim_free(self):
        """The facade path itself must not trip the deprecation gate."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(SPEC, [0, 1], BatchConfig(workers=2))


class TestRunReason:
    def test_classify_new_and_legacy_strings(self):
        assert RunReason.classify("terminal") is RunReason.TERMINAL
        assert RunReason.classify("max_steps") is RunReason.MAX_STEPS
        assert RunReason.classify("error: RuntimeError: boom") is RunReason.ERROR
        assert RunReason.classify("worker_died") is RunReason.WORKER_DIED
        assert RunReason.classify("all_crashed") is RunReason.ALL_CRASHED
        assert RunReason.classify("δ-stalled ✓") is RunReason.OTHER

    def test_record_reason_kind_and_counts(self):
        from repro.analysis import failure_record

        batch = run(SPEC, SEEDS, BatchConfig(workers=1))
        assert all(r.reason_kind is RunReason.TERMINAL for r in batch.runs)
        assert batch.reason_counts() == {}
        batch.runs.append(failure_record(99, RunReason.TIMEOUT))
        batch.runs.append(
            failure_record(100, RunReason.ERROR, "RuntimeError: boom")
        )
        assert batch.runs[-1].reason == "error: RuntimeError: boom"
        assert batch.reason_counts() == {"error": 1, "timeout": 1}
