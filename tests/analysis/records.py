"""Shared helpers for the parallel-runner test suites."""

import math
from dataclasses import astuple

from repro.analysis import RunRecord
from repro.analysis.batch import _run_batch_factories


def serial_reference(spec, seeds):
    """Run a scenario through the serial reference runner."""
    built = spec.build()
    return _run_batch_factories(
        built.name,
        built.algorithm_factory,
        built.scheduler_factory,
        built.initial_factory,
        seeds,
        frame_policy=built.frame_policy,
        max_steps=built.max_steps,
        delta=built.delta,
        faults=built.faults,
        strict_invariants=built.strict_invariants,
        sensing=built.sensing,
    )


def assert_record_equal(a: RunRecord, b: RunRecord) -> None:
    """Field-by-field exact equality; NaN compares equal to NaN."""
    ta, tb = astuple(a), astuple(b)
    for name, va, vb in zip(
        (f for f in a.__dataclass_fields__), ta, tb
    ):
        if (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ):
            continue
        assert va == vb, f"field {name}: {va!r} != {vb!r} (seed {a.seed})"


def assert_records_equal(xs, ys) -> None:
    assert len(xs) == len(ys), f"{len(xs)} records vs {len(ys)}"
    for a, b in zip(xs, ys):
        assert_record_equal(a, b)
