"""Unit tests for invariant checkers and the ASCII renderer."""

import pytest

from repro import patterns
from repro.algorithms.base import Algorithm
from repro.analysis import InvariantViolation, fairness_checker, no_multiplicity_checker
from repro.geometry import Vec2
from repro.model import Configuration, Pattern
from repro.scheduler import RoundRobinScheduler
from repro.sim import Path, Simulation, global_frames
from repro.viz import render, render_configuration, render_trace

from ..conftest import polygon


class CollideAll(Algorithm):
    """Deliberately drives every robot to the origin (creates multiplicity)."""

    name = "collide"

    def compute(self, snapshot, ctx):
        if snapshot.me.dist(snapshot.points[0]) < 1e-12 and all(
            p.approx_eq(snapshot.points[0]) for p in snapshot.points
        ):
            return None
        target = min(snapshot.points, key=lambda p: (p.x, p.y))
        if snapshot.me.approx_eq(target):
            return None
        return Path.line(snapshot.me, target)


class TestCheckers:
    def test_multiplicity_checker_fires(self):
        sim = Simulation(
            polygon(3),
            CollideAll(),
            RoundRobinScheduler(),
            frame_policy=global_frames(),
            max_steps=200,
            checkers=[no_multiplicity_checker()],
        )
        with pytest.raises(InvariantViolation):
            sim.run()

    def test_multiplicity_checker_allows_when_configured(self):
        sim = Simulation(
            polygon(3),
            CollideAll(),
            RoundRobinScheduler(),
            frame_policy=global_frames(),
            max_steps=60,
            checkers=[no_multiplicity_checker(allow_at_end=True)],
        )
        sim.run()  # no exception

    def test_fairness_checker_passes_fair_run(self):
        from repro.algorithms import FormPattern

        pat = patterns.regular_polygon(7)
        sim = Simulation.random(
            7,
            FormPattern(pat),
            RoundRobinScheduler(),
            seed=1,
            max_steps=50_000,
            checkers=[fairness_checker(bound=10_000)],
        )
        res = sim.run()
        assert res.terminated


class TestAsciiRenderer:
    def test_render_contains_robots(self):
        art = render(polygon(5))
        assert art.count("o") == 5

    def test_render_with_pattern_overlay(self):
        pat = Pattern.from_points(polygon(5, phase=0.3))
        art = render(polygon(5), pat)
        assert "+" in art or "*" in art

    def test_robot_on_target_is_star(self):
        pat = Pattern.from_points(polygon(4))
        art = render(polygon(4), pat)
        assert art.count("*") == 4

    def test_multiplicity_digit(self):
        art = render([Vec2(0, 0), Vec2(0, 0), Vec2(1, 1)])
        assert "2" in art

    def test_render_configuration(self):
        cfg = Configuration.from_points(polygon(4))
        art = render_configuration(cfg)
        assert isinstance(art, str) and art

    def test_render_trace(self):
        cfgs = [Configuration.from_points(polygon(4, phase=0.1 * i)) for i in range(5)]
        art = render_trace(cfgs, frames=3)
        assert art.count("frame") >= 2

    def test_render_trace_empty(self):
        assert "empty" in render_trace([])
