"""Tests for the profiling layer (core profiler + report records)."""

import math

import pytest

from repro import profiling
from repro.analysis.profile import (
    ProfileRecord,
    add_sink,
    emit,
    format_record,
    profile_batch,
    remove_sink,
)
from repro.hooks import FunctionSink
from repro.analysis.scenarios import ScenarioSpec
from repro.geometry.memo import reset_cache_stats


@pytest.fixture(autouse=True)
def _profiler_off():
    """Every test starts and ends with a disabled, empty profiler."""
    profiling.disable()
    profiling.PROFILER.reset()
    yield
    profiling.disable()
    profiling.PROFILER.reset()


class TestProfilerCore:
    def test_disabled_by_default(self):
        assert not profiling.is_enabled()

    def test_enable_disable_roundtrip(self):
        profiling.enable()
        assert profiling.is_enabled()
        profiling.disable()
        assert not profiling.is_enabled()

    def test_add_accumulates(self):
        p = profiling.Profiler()
        p.add("look", 0.25)
        p.add("look", 0.25)
        p.add("move", 1.0)
        assert p.phase_calls == {"look": 2, "move": 1}
        assert abs(p.phase_seconds["look"] - 0.5) < 1e-12
        assert abs(p.total_seconds() - 1.5) < 1e-12

    def test_enable_resets_by_default(self):
        profiling.PROFILER.add("look", 1.0)
        profiling.enable()
        assert profiling.PROFILER.phase_seconds == {}
        profiling.PROFILER.add("look", 1.0)
        profiling.enable(reset=False)
        assert profiling.PROFILER.phase_calls == {"look": 1}


class TestRecords:
    def test_emit_fires_registered_sinks(self):
        seen = []
        sink = FunctionSink(on_profile=seen.append)
        add_sink(sink)
        try:
            record = emit("hook-test", 1.0)
        finally:
            remove_sink(sink)
        assert seen == [record]
        # Unregistered: a later emit must not reach the sink.
        emit("hook-test-2", 1.0)
        assert len(seen) == 1

    def test_record_round_trips_to_dict(self):
        record = ProfileRecord(
            label="x",
            wall_seconds=2.0,
            phase_seconds={"look": 1.0},
            phase_calls={"look": 4},
            caches=[{"name": "c", "hits": 1, "misses": 1, "hit_rate": 0.5}],
        )
        d = record.to_dict()
        assert d["label"] == "x"
        assert d["phase_seconds"] == {"look": 1.0}
        assert d["caches"][0]["hits"] == 1

    def test_format_record_mentions_phases_and_caches(self):
        record = ProfileRecord(
            label="fmt",
            wall_seconds=2.0,
            phase_seconds={"look": 1.5, "move": 0.25},
            phase_calls={"look": 3, "move": 1},
            caches=[{"name": "geometry.sec", "hits": 7, "misses": 3, "hit_rate": 0.7}],
        )
        text = format_record(record)
        assert "fmt" in text
        assert "look" in text and "move" in text
        assert "geometry.sec" in text


class TestProfileBatch:
    def test_profiles_a_real_batch(self):
        reset_cache_stats()
        spec = ScenarioSpec(
            name="profile-smoke",
            algorithm="form-pattern",
            scheduler="async",
            initial=("random", {"n": 5}),
            pattern=("polygon", {"n": 5}),
            max_steps=100_000,
        )
        batch, record = profile_batch(spec, [0])
        assert len(batch.runs) == 1
        assert record.label == "profile-smoke"
        assert record.wall_seconds > 0
        assert not math.isnan(record.wall_seconds)
        # The engine reported into every instrumented phase.
        for phase in ("look", "compute", "move", "terminal_probe"):
            assert record.phase_calls.get(phase, 0) > 0, phase
        # Profiling is an observation, not a mode: it leaves the
        # profiler the way profile_batch found it (disabled here).
        assert not profiling.is_enabled()
