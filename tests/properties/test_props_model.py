"""Property-based tests for views, symmetry and regular sets."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Similarity, Vec2, smallest_enclosing_circle
from repro.model import compare_views, local_view, rotational_symmetry
from repro.regular import check_regular_at, find_regular, find_shifted_regular


@st.composite
def general_positions(draw, min_size=4, max_size=10):
    """Random point sets with pairwise separation (general position)."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    import random

    rng = random.Random(seed)
    pts = []
    while len(pts) < n:
        p = Vec2(rng.uniform(-1, 1), rng.uniform(-1, 1))
        if all(p.dist(q) > 0.08 for q in pts):
            pts.append(p)
    return pts


@st.composite
def regular_sets(draw):
    """Regular sets with random order, phase and radii."""
    n = draw(st.integers(min_value=3, max_value=10))
    phase = draw(st.floats(min_value=0, max_value=6.28, allow_nan=False))
    radii = [
        draw(st.floats(min_value=0.3, max_value=2.0, allow_nan=False))
        for _ in range(n)
    ]
    return [
        Vec2.polar(radii[i], phase + 2 * math.pi * i / n) for i in range(n)
    ], n


rotations = st.floats(min_value=0, max_value=6.28, allow_nan=False)


class TestViewInvariance:
    @given(general_positions(), rotations, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_views_similarity_invariant(self, pts, theta, reflect):
        c = smallest_enclosing_circle(pts).center
        t = Similarity(1.7, theta, reflect, Vec2(3, -2))
        image = [t.apply(p) for p in pts]
        ci = t.apply(c)
        for p in pts[:3]:
            v1 = local_view(pts, c, p)
            v2 = local_view(image, ci, t.apply(p))
            assert compare_views(v1, v2) == 0

    @given(general_positions())
    @settings(max_examples=25, deadline=None)
    def test_view_order_total(self, pts):
        c = smallest_enclosing_circle(pts).center
        views = [local_view(pts, c, p) for p in pts if not p.approx_eq(c)]
        # Anti-symmetry of the comparator on this sample.
        for a in views:
            for b in views:
                assert compare_views(a, b) == -compare_views(b, a)


class TestRegularInvariance:
    @given(regular_sets(), rotations)
    @settings(max_examples=25, deadline=None)
    def test_detection_rotation_invariant(self, reg, theta):
        pts, n = reg
        rotated = [p.rotated(theta) for p in pts]
        geo = find_regular(rotated)
        assert geo is not None
        assert geo.size == n

    @given(regular_sets())
    @settings(max_examples=25, deadline=None)
    def test_radial_moves_preserve_regularity(self, reg):
        pts, n = reg
        moved = list(pts)
        moved[0] = moved[0] * 0.5
        assert find_regular(moved) is not None

    @given(general_positions(min_size=7))
    @settings(max_examples=20, deadline=None)
    def test_random_sets_not_regular(self, pts):
        # With >= 7 points in general position, neither regularity nor a
        # shifted regular set should be detected.
        assert find_regular(pts) is None
        assert find_shifted_regular(pts) is None

    @given(regular_sets())
    @settings(max_examples=25, deadline=None)
    def test_symmetricity_divides_size(self, reg):
        pts, n = reg
        geo = find_regular(pts)
        assume(geo is not None)
        rho = rotational_symmetry(pts, geo.center)
        assert n % rho == 0


class TestShiftedProperties:
    @given(
        st.integers(min_value=7, max_value=10),
        st.floats(min_value=0.02, max_value=0.24, allow_nan=False),
        rotations,
    )
    @settings(max_examples=20, deadline=None)
    def test_shift_roundtrip(self, n, eps, phase):
        alpha = 2 * math.pi / n
        pts = [Vec2.polar(1.0, phase + 2 * math.pi * i / n) for i in range(n)]
        pts[0] = Vec2.polar(1.0, phase + eps * alpha)
        s = find_shifted_regular(pts)
        assert s is not None
        assert abs(s.epsilon - eps) < 1e-3
        assert s.shifted_robot.approx_eq(pts[0], 1e-5)
