"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Similarity,
    Vec2,
    angle_gaps,
    angmin,
    norm_angle,
    similar,
    smallest_enclosing_circle,
    weber_objective,
    weber_point,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)
points = st.builds(Vec2, coords, coords)


def point_lists(min_size=1, max_size=12):
    return st.lists(points, min_size=min_size, max_size=max_size)


angles = st.floats(min_value=-10, max_value=10, allow_nan=False)
scales = st.floats(min_value=0.1, max_value=10, allow_nan=False)


@st.composite
def similarities(draw):
    return Similarity(
        draw(scales), draw(angles), draw(st.booleans()), draw(points)
    )


class TestSecProperties:
    @given(point_lists())
    @settings(max_examples=60, deadline=None)
    def test_contains_all(self, pts):
        sec = smallest_enclosing_circle(pts)
        assert all(sec.contains(p, 1e-6) for p in pts)

    @given(point_lists(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_radius_at_least_half_diameter(self, pts):
        sec = smallest_enclosing_circle(pts)
        diameter = max(p.dist(q) for p in pts for q in pts)
        assert sec.radius >= diameter / 2 - 1e-6
        # And never larger than the diameter itself (loose upper bound).
        assert sec.radius <= diameter / math.sqrt(3) + 1e-6

    @given(point_lists(min_size=1), points)
    @settings(max_examples=40, deadline=None)
    def test_translation_equivariance(self, pts, offset):
        sec1 = smallest_enclosing_circle(pts)
        sec2 = smallest_enclosing_circle([p + offset for p in pts])
        assert abs(sec1.radius - sec2.radius) < 1e-6
        assert sec2.center.approx_eq(sec1.center + offset, 1e-5)


class TestSimilarityProperties:
    @given(point_lists(min_size=2, max_size=9), similarities())
    @settings(max_examples=40, deadline=None)
    def test_transformed_sets_are_similar(self, pts, t):
        image = [t.apply(p) for p in pts]
        assert similar(pts, image, 1e-5)

    @given(point_lists(min_size=1, max_size=9))
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, pts):
        assert similar(pts, list(pts))

    @given(similarities(), points)
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip(self, t, p):
        assert t.inverse().apply(t.apply(p)).approx_eq(p, 1e-4)


class TestWeberProperties:
    @given(point_lists(min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_weber_minimises(self, pts):
        w = weber_point(pts)
        base = weber_objective(pts, w)
        for dx, dy in [(0.05, 0), (0, 0.05), (-0.05, 0), (0, -0.05)]:
            assert weber_objective(pts, w + Vec2(dx, dy)) >= base - 1e-4

    @given(point_lists(min_size=1, max_size=10), points)
    @settings(max_examples=30, deadline=None)
    def test_translation_equivariance(self, pts, offset):
        w1 = weber_point(pts)
        w2 = weber_point([p + offset for p in pts])
        assert w2.approx_eq(w1 + offset, 1e-4)


class TestAngleProperties:
    @given(st.lists(angles, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_gaps_sum_to_2pi(self, raw):
        gaps = angle_gaps(raw)
        assert abs(sum(gaps) - 2 * math.pi) < 1e-6

    @given(angles)
    @settings(max_examples=60, deadline=None)
    def test_norm_angle_idempotent(self, a):
        assert abs(norm_angle(norm_angle(a)) - norm_angle(a)) < 1e-12

    @given(points, points)
    @settings(max_examples=60, deadline=None)
    def test_angmin_range_and_symmetry(self, u, w):
        v = Vec2(200, 200)  # vertex away from the sample box
        a = angmin(u, v, w)
        assert 0 <= a <= math.pi + 1e-12
        assert abs(a - angmin(w, v, u)) < 1e-9
