"""Property-based tests (hypothesis) for the fastsim kernels.

These pin the *mathematical* contract of each vectorized kernel against
brute force or against the scalar reference, over randomly generated
configurations rather than the handful of fixtures in
``tests/fastsim/test_kernels.py``:

* SEC: containment, and minimality against the brute-force enumeration
  of all two-point (diametral) and three-point (circumscribed)
  candidate circles;
* Weiszfeld: the returned point minimises the Weber objective locally
  and matches the scalar solver through the objective;
* view order: the polar-table ordering is invariant under global
  rotation + translation of the configuration (the robot-frame
  canonicalisation the array engine relies on).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.fastsim import kernels as K
from repro.geometry import Vec2, weber_objective
from repro.geometry.circle import circle_from_three, circle_from_two
from repro.geometry.memo import clear_caches
from repro.geometry.weber import _weiszfeld_solve
from repro.model.views import _view_order_scalar, compare_views

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, width=32)
points = st.builds(Vec2, coords, coords)
angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def point_lists(min_size, max_size):
    return st.lists(
        points, min_size=min_size, max_size=max_size, unique_by=lambda p: (p.x, p.y)
    )


def _brute_force_sec_radius(pts):
    """Minimum radius over every enclosing 2- and 3-point candidate."""
    best = math.inf
    n = len(pts)
    for i in range(n):
        for j in range(i + 1, n):
            for circle in [circle_from_two(pts[i], pts[j])] + [
                circle_from_three(pts[i], pts[j], pts[k])
                for k in range(j + 1, n)
            ]:
                if circle is None:
                    continue
                if all(circle.contains(p, 1e-9) for p in pts):
                    best = min(best, circle.radius)
    return best


class TestSecKernelProperties:
    @given(point_lists(3, 20))
    @settings(max_examples=50, deadline=None)
    def test_containment(self, pts):
        circle = K.sec_array(pts)
        for p in pts:
            assert p.dist(circle.center) <= circle.radius + 1e-7

    @given(point_lists(3, 8))
    @settings(max_examples=40, deadline=None)
    def test_minimality_vs_brute_force(self, pts):
        circle = K.sec_array(pts)
        brute = _brute_force_sec_radius(pts)
        assert brute < math.inf
        assert circle.radius <= brute + 1e-6
        # and it cannot beat the true optimum either
        assert circle.radius >= brute - 1e-6


class TestWeberKernelProperties:
    @given(point_lists(3, 16))
    @settings(max_examples=40, deadline=None)
    def test_local_minimum(self, pts):
        w = K.weber_array(tuple(pts))
        base = weber_objective(pts, w)
        step = 1e-3
        for dx, dy in [(step, 0), (-step, 0), (0, step), (0, -step)]:
            assert weber_objective(pts, w + Vec2(dx, dy)) >= base - 1e-6

    @given(point_lists(3, 16))
    @settings(max_examples=40, deadline=None)
    def test_objective_matches_scalar_solver(self, pts):
        frozen = tuple(pts)
        array = K.weber_array(frozen)
        scalar = _weiszfeld_solve(frozen, 1e-12, 10_000)
        assert abs(
            weber_objective(pts, array) - weber_objective(pts, scalar)
        ) <= 1e-7


class TestViewOrderProperties:
    @given(point_lists(3, 14), angles, points)
    @settings(max_examples=40, deadline=None)
    def test_rigid_motion_invariance(self, pts, theta, offset):
        """The polar table is a frame-free object: rotating and
        translating the whole configuration (points *and* center) must
        leave the ordering and every per-point view unchanged."""
        center = Vec2(
            sum(p.x for p in pts) / len(pts), sum(p.y for p in pts) / len(pts)
        )
        assume(all(p.dist(center) > 1e-6 for p in pts))
        moved = [p.rotated(theta) + offset for p in pts]
        moved_center = center.rotated(theta) + offset
        assume(all(p.dist(moved_center) > 1e-6 for p in moved))

        base = K.view_order_array(pts, center)
        transformed = K.view_order_array(moved, moved_center)
        assert len(base) == len(transformed)
        for (pb, vb), (pt_, vt) in zip(base, transformed):
            # corresponding original points, in the same rank order
            assert pt_.dist(pb.rotated(theta) + offset) <= 1e-5
            assert compare_views(vb, vt) == 0
            assert vb.direct == vt.direct

    @given(point_lists(3, 14))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_reference(self, pts):
        center = Vec2.zero()
        assume(all(p.dist(center) > 1e-9 for p in pts))
        scalar = _view_order_scalar(pts, center)
        array = K.view_order_array(pts, center)
        assert [(p.x, p.y) for p, _ in scalar] == [
            (p.x, p.y) for p, _ in array
        ]
        for (_, vs), (_, va) in zip(scalar, array):
            assert compare_views(vs, va) == 0
