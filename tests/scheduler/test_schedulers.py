"""Unit tests for the FSYNC / SSYNC / ASYNC schedulers."""

import math

from repro.algorithms.base import Algorithm
from repro.geometry import Vec2
from repro.scheduler import (
    ActionKind,
    AsyncScheduler,
    FsyncScheduler,
    RoundRobinScheduler,
    SsyncScheduler,
)
from repro.sim import Path, Phase, Simulation, global_frames

from ..conftest import polygon


class Walker(Algorithm):
    """Endless small eastward steps (never terminates)."""

    name = "walker"

    def compute(self, snapshot, ctx):
        return Path.line(snapshot.me, snapshot.me + Vec2(0.01, 0))


def drive(scheduler, steps=400, n=4):
    sim = Simulation(
        polygon(n),
        Walker(),
        scheduler,
        frame_policy=global_frames(),
        max_steps=steps,
    )
    res = sim.run()
    return sim, res


class TestFsync:
    def test_lock_step_rounds(self):
        sim, _ = drive(FsyncScheduler())
        # In FSYNC every robot completes the same number of cycles (±1).
        counts = sim.metrics.per_robot_cycles
        assert max(counts) - min(counts) <= 1

    def test_epochs_advance(self):
        sim, _ = drive(FsyncScheduler())
        assert sim.metrics.epochs > 10

    def test_rigid_movement(self):
        # FSYNC movement is rigid: every move reaches its destination, so
        # distance equals cycles * step length.
        sim, _ = drive(FsyncScheduler())
        assert abs(sim.metrics.distance - 0.01 * sim.metrics.cycles) < 1e-6


class TestSsync:
    def test_atomic_cycles(self):
        # In SSYNC no robot is ever observed mid-cycle: after any round,
        # every robot is idle.  We verify a weaker engine-level property:
        # the run completes without illegal actions and is fair.
        sim, _ = drive(SsyncScheduler(seed=1))
        assert min(sim.metrics.per_robot_cycles) > 0

    def test_activation_prob_validation(self):
        import pytest

        with pytest.raises(ValueError):
            SsyncScheduler(activation_prob=0.0)

    def test_truncation_respects_delta(self):
        sim = Simulation(
            polygon(4),
            Walker(),
            SsyncScheduler(seed=2, truncate_prob=1.0),
            frame_policy=global_frames(),
            delta=0.004,
            max_steps=200,
        )
        sim.run()
        # All moves were truncated, but never below min(delta, length).
        assert sim.metrics.distance >= 0.004 * 0.9

    def test_fairness(self):
        sim, _ = drive(SsyncScheduler(seed=3, activation_prob=0.3), steps=2000)
        assert min(sim.metrics.per_robot_cycles) > 0


class TestAsync:
    def test_fairness_bound(self):
        sim, _ = drive(AsyncScheduler(seed=1, fairness_bound=100), steps=3000)
        assert min(sim.metrics.per_robot_cycles) > 0

    def test_aggressive_preset_interleaves(self):
        sim, _ = drive(AsyncScheduler.aggressive(seed=5), steps=2000)
        # Aggressive preset splits moves into chunks: more move actions
        # than completed cycles.
        assert sim.metrics.move_actions > sim.metrics.cycles

    def test_gentle_preset_runs(self):
        sim, _ = drive(AsyncScheduler.gentle(seed=6), steps=500)
        assert sim.metrics.cycles > 0

    def test_moves_eventually_finish(self):
        sim, _ = drive(AsyncScheduler(seed=7, max_move_chunks=3), steps=1500)
        for robot in sim.robots:
            assert robot.move_chunks <= 3


class TestRoundRobin:
    def test_sequential_cycles(self):
        sim, _ = drive(RoundRobinScheduler(), steps=120, n=4)
        counts = sim.metrics.per_robot_cycles
        assert max(counts) - min(counts) <= 1

    def test_no_interleaving(self):
        # Round-robin runs complete cycles: at most one robot non-idle.
        sim = Simulation(
            polygon(4),
            Walker(),
            RoundRobinScheduler(),
            frame_policy=global_frames(),
            max_steps=100,
        )
        busy_counts = []
        while sim.step_count < 100:
            action = sim.scheduler.next_action(sim.robots, sim.step_count)
            sim.apply(action)
            busy = sum(1 for r in sim.robots if r.phase is not Phase.IDLE)
            busy_counts.append(busy)
        assert max(busy_counts) <= 1
