"""Unit tests for the pattern/workload library."""

import math

import pytest

from repro import patterns
from repro.geometry import Vec2


class TestGenerators:
    def test_regular_polygon(self):
        pat = patterns.regular_polygon(6)
        assert len(pat) == 6
        assert all(abs(p.norm() - 1.0) < 1e-9 for p in pat)

    def test_polygon_minimum(self):
        with pytest.raises(ValueError):
            patterns.regular_polygon(2)

    def test_line_pattern(self):
        pat = patterns.line_pattern(5)
        assert len(pat) == 5
        assert all(abs(p.y) < 1e-12 for p in pat)

    def test_line_jitter(self):
        pat = patterns.line_pattern(5, jitter=0.1, seed=1)
        assert any(abs(p.y) > 1e-6 for p in pat)

    def test_grid(self):
        pat = patterns.grid_pattern(3, 4)
        assert len(pat) == 12

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            patterns.grid_pattern(0, 4)

    def test_star(self):
        pat = patterns.star_pattern(5)
        assert len(pat) == 10
        radii = sorted(round(p.norm(), 6) for p in pat)
        assert radii[0] < radii[-1]

    def test_nested_rings(self):
        pat = patterns.nested_rings([5, 4, 3])
        assert len(pat) == 12

    def test_nested_rings_empty(self):
        with pytest.raises(ValueError):
            patterns.nested_rings([])

    def test_random_pattern_general_position(self):
        pat = patterns.random_pattern(10, seed=3)
        pts = list(pat.points)
        for i, p in enumerate(pts):
            for q in pts[i + 1 :]:
                assert p.dist(q) >= 0.1 - 1e-9

    def test_multiplicity_pattern(self):
        base = patterns.regular_polygon(5)
        pat = patterns.multiplicity_pattern(base, [0, 2])
        assert len(pat) == 7
        assert pat.has_multiplicity()

    def test_center_multiplicity_pattern(self):
        pat = patterns.center_multiplicity_pattern(6, 3)
        assert len(pat) == 9

    def test_gathering_pattern(self):
        pat = patterns.gathering_pattern(5)
        assert len(pat) == 5
        assert len(pat.distinct_points()) == 1


class TestRandomConfiguration:
    def test_size(self):
        cfg = patterns.random_configuration(9, seed=1)
        assert len(cfg) == 9

    def test_min_separation(self):
        cfg = patterns.random_configuration(9, seed=2, min_separation=0.2)
        pts = cfg.points()
        for i, p in enumerate(pts):
            for q in pts[i + 1 :]:
                assert p.dist(q) >= 0.2 - 1e-9

    def test_within_spread(self):
        cfg = patterns.random_configuration(9, seed=3, spread=2.0)
        assert all(p.norm() <= 2.0 + 1e-9 for p in cfg)

    def test_reproducible(self):
        a = patterns.random_configuration(6, seed=4).points()
        b = patterns.random_configuration(6, seed=4).points()
        assert all(p.approx_eq(q) for p, q in zip(a, b))

    def test_distinct_seeds_differ(self):
        a = patterns.random_configuration(6, seed=5).points()
        b = patterns.random_configuration(6, seed=6).points()
        assert any(not p.approx_eq(q) for p, q in zip(a, b))

    def test_infeasible_raises(self):
        with pytest.raises(RuntimeError):
            patterns.random_configuration(50, seed=1, spread=0.1, min_separation=1.0)
