"""ChaosPlan: validation, spec round-trips, seeded bind determinism."""

import pytest

from repro.chaos.plan import (
    PRESETS,
    ChaosPlan,
    ClockChaos,
    NetChaos,
    ProcChaos,
    preset,
)
from repro.chaos.sqlio import SqliteFaults


class TestValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError):
            NetChaos(p_drop=1.5)
        with pytest.raises(ValueError):
            NetChaos(p_drop=0.6, p_delay=0.6)  # sum > 1
        with pytest.raises(ValueError):
            SqliteFaults(p_lock=-0.1)

    def test_proc_chaos_window_ordering(self):
        with pytest.raises(ValueError):
            ProcChaos(kills=1, min_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            ProcChaos(kills=-1)

    def test_clock_chaos_skew_nonnegative(self):
        with pytest.raises(ValueError):
            ClockChaos(max_skew=-1.0)


class TestSpecRoundTrip:
    def test_full_plan_round_trips(self):
        plan = preset("heavy", seed=99, salt="rt")
        rebuilt = ChaosPlan.from_spec(plan.to_spec())
        assert rebuilt == plan
        assert rebuilt.to_spec() == plan.to_spec()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ChaosPlan.from_spec({"seed": 1, "typo": True})

    def test_presets_all_build(self):
        for name in PRESETS:
            plan = preset(name, seed=1)
            assert isinstance(plan, ChaosPlan)
            plan.bind(2)  # every preset must be bindable


class TestBindDeterminism:
    def test_same_seed_same_schedule(self):
        """The acceptance property: one seed, one fault schedule —
        bind() twice (or in two processes) and every arm agrees."""
        plan = preset("medium", seed=7, salt="det")
        a, b = plan.bind(4), plan.bind(4)
        assert a == b
        assert a.skews == b.skews
        assert a.signals == b.signals
        assert a.sqlite == b.sqlite
        assert a.net_seed == b.net_seed

    def test_different_seed_different_schedule(self):
        base = preset("medium", seed=7)
        other = preset("medium", seed=8)
        assert base.bind(4) != other.bind(4)

    def test_arms_draw_independent_streams(self):
        """Disabling one arm must not change another arm's draws —
        each arm has its own salted RNG stream."""
        full = preset("medium", seed=3)
        no_net = ChaosPlan(
            seed=3,
            salt=full.salt,
            clock=full.clock,
            sqlite=full.sqlite,
            procs=full.procs,
            net=None,
        )
        assert full.bind(3).skews == no_net.bind(3).skews
        assert full.bind(3).signals == no_net.bind(3).signals

    def test_signals_sorted_and_in_window(self):
        plan = ChaosPlan(
            seed=11,
            procs=ProcChaos(
                kills=3, stops=2, min_delay=1.0, max_delay=4.0,
                stop_duration=0.5,
            ),
        )
        bound = plan.bind(5)
        ats = [event.at for event in bound.signals]
        assert ats == sorted(ats)
        assert all(1.0 <= at <= 4.0 for at in ats)
        assert sum(e.action == "kill" for e in bound.signals) == 3
        assert sum(e.action == "stop" for e in bound.signals) == 2
        assert all(
            e.resume_after == 0.5
            for e in bound.signals
            if e.action == "stop"
        )

    def test_skews_bounded_by_max_skew(self):
        plan = ChaosPlan(seed=5, clock=ClockChaos(max_skew=2.0))
        bound = plan.bind(8)
        assert len(bound.skews) == 8
        assert all(abs(skew) <= 2.0 for skew in bound.skews)
        assert any(skew != 0.0 for skew in bound.skews)

    def test_no_clock_arm_means_zero_skews(self):
        bound = ChaosPlan(seed=5).bind(3)
        assert bound.skews == (0.0, 0.0, 0.0)
        assert bound.signals == ()
        assert bound.sqlite is None
