"""The invariant auditor: passes on clean state, catches each corruption."""

import json
import sqlite3

import pytest

from repro.analysis import BatchConfig, ScenarioSpec, run
from repro.chaos.audit import audit_run
from repro.store import ExperimentStore, JobLedger

from ..service.conftest import small_spec

SEEDS = [1, 2, 3]


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """Two independent runs of the same workload — necessarily identical."""
    root = tmp_path_factory.mktemp("audit")
    spec = ScenarioSpec.from_dict(small_spec(max_steps=2_000))
    for name in ("ref.sqlite", "chaos.sqlite"):
        run(spec, SEEDS, BatchConfig(workers=1, store=root / name))
    return root, spec.fingerprint()


def _named(report, name):
    return next(c for c in report.checks if c.name == name)


class TestCleanState:
    def test_identical_stores_pass(self, stores):
        root, fingerprint = stores
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
        )
        assert report.ok
        assert report.failures() == []
        assert "PASS" in report.summary()

    def test_ledger_terminal_consistency(self, stores, tmp_path):
        root, fingerprint = stores
        ledger = JobLedger(tmp_path / "l.sqlite")
        ledger.append("j1", small_spec(), [1, 2], shards=2)
        for worker in ("w1", "w2"):
            claim = ledger.claim_next(worker)
            ledger.complete_shard(claim.job_id, claim.shard, worker, claim.token)
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
            ledger=ledger,
            job_id="j1",
        )
        assert _named(report, "ledger-terminal").ok


class TestDetection:
    def test_missing_record_fails_byte_identity(self, stores):
        root, fingerprint = stores
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS + [99],  # seed 99 was never run
        )
        check = _named(report, "store-byte-identity")
        assert not check.ok
        assert "99" in check.detail

    def test_tampered_record_fails_byte_identity(self, stores, tmp_path):
        root, fingerprint = stores
        tampered = tmp_path / "tampered.sqlite"
        tampered.write_bytes((root / "chaos.sqlite").read_bytes())
        with sqlite3.connect(tampered) as conn:
            (payload,) = conn.execute(
                "SELECT payload FROM runs WHERE seed = 2"
            ).fetchone()
            doc = json.loads(payload)
            doc["steps"] = doc["steps"] + 1  # one field, one step off
            conn.execute(
                "UPDATE runs SET payload = ? WHERE seed = 2",
                (json.dumps(doc),),
            )
        report = audit_run(
            store=str(tampered),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
        )
        assert not _named(report, "store-byte-identity").ok

    def test_frame_spool_gap_fails_double_write_check(self, stores, tmp_path):
        root, fingerprint = stores
        store_path = tmp_path / "gappy.sqlite"
        store_path.write_bytes((root / "chaos.sqlite").read_bytes())
        with sqlite3.connect(store_path) as conn:
            conn.execute(
                "INSERT INTO frames (fingerprint, seed, version, idx, payload)"
                " VALUES (?, 1, 1, 5, '{}')",  # idx 5 with no 0..4: a gap
                (fingerprint,),
            )
        report = audit_run(
            store=str(store_path),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
        )
        check = _named(report, "no-double-writes")
        assert not check.ok
        assert "contiguous" in check.detail

    def test_non_terminal_ledger_fails(self, stores, tmp_path):
        root, fingerprint = stores
        ledger = JobLedger(tmp_path / "l.sqlite")
        ledger.append("j1", small_spec(), [1], shards=1)
        ledger.claim_next("w1")  # running, never completed
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
            ledger=ledger,
            job_id="j1",
        )
        check = _named(report, "ledger-terminal")
        assert not check.ok
        assert "not terminal" in check.detail

    def test_replay_divergence_detected(self, stores):
        root, fingerprint = stores
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
            live_frames={1: ["a", "b"]},
            replay_frames={1: ["a"]},  # replay lost a frame
        )
        assert not _named(report, "sse-replay-byte-equal").ok

    def test_replay_equality_passes(self, stores):
        root, fingerprint = stores
        report = audit_run(
            store=str(root / "chaos.sqlite"),
            reference=str(root / "ref.sqlite"),
            fingerprint=fingerprint,
            seeds=SEEDS,
            live_frames={1: ["a", "b"], 2: ["c"]},
            replay_frames={1: ["a", "b"], 2: ["c"]},
        )
        assert _named(report, "sse-replay-byte-equal").ok
