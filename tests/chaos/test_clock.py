"""The clock seam: virtual time, skew, env propagation, resolution."""

import time

import pytest

from repro.chaos.clock import (
    SKEW_ENV,
    SYSTEM_CLOCK,
    SkewedClock,
    SystemClock,
    VirtualClock,
    clock_from_env,
    resolve_clock,
)


class TestVirtualClock:
    def test_starts_where_told_and_advances_on_demand(self):
        clock = VirtualClock(100.0)
        assert clock.time() == 100.0
        assert clock.monotonic() == 100.0
        clock.advance(2.5)
        assert clock.time() == 102.5

    def test_sleep_advances_instantly_and_is_recorded(self):
        clock = VirtualClock()
        started = time.monotonic()
        clock.sleep(0.5)
        clock.sleep(1.5)
        assert time.monotonic() - started < 0.25  # no real waiting
        assert clock.sleeps == [0.5, 1.5]
        assert clock.time() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_negative_sleep_does_not_rewind(self):
        clock = VirtualClock(10.0)
        clock.sleep(-5.0)
        assert clock.time() == 10.0


class TestSkewedClock:
    def test_constant_offset_shifts_both_domains(self):
        base = VirtualClock(1000.0)
        skewed = SkewedClock(base, offset=-3.0)
        assert skewed.time() == 997.0
        assert skewed.monotonic() == 997.0
        base.advance(10.0)
        assert skewed.time() == 1007.0

    def test_drift_accumulates_from_the_anchor(self):
        base = VirtualClock(0.0)
        skewed = SkewedClock(base, offset=1.0, drift=0.1)
        assert skewed.time() == pytest.approx(1.0)  # anchor: no drift yet
        base.advance(10.0)
        assert skewed.time() == pytest.approx(10.0 + 1.0 + 1.0)

    def test_sleep_passes_through_to_the_base(self):
        base = VirtualClock()
        SkewedClock(base, offset=100.0).sleep(2.0)
        assert base.sleeps == [2.0]  # skew warps belief, not speed


class TestResolution:
    def test_none_resolves_to_the_system_singleton(self):
        assert resolve_clock(None) is SYSTEM_CLOCK
        clock = VirtualClock()
        assert resolve_clock(clock) is clock

    def test_system_clock_tracks_the_time_module(self):
        assert abs(SystemClock().time() - time.time()) < 1.0


class TestClockFromEnv:
    def test_unset_yields_the_base_unchanged(self, monkeypatch):
        monkeypatch.delenv(SKEW_ENV, raising=False)
        base = VirtualClock(5.0)
        assert clock_from_env(base) is base

    def test_zero_skew_yields_the_base_unchanged(self, monkeypatch):
        monkeypatch.setenv(SKEW_ENV, "0.0")
        base = VirtualClock(5.0)
        assert clock_from_env(base) is base

    def test_nonzero_skew_wraps_in_a_skewed_clock(self, monkeypatch):
        monkeypatch.setenv(SKEW_ENV, "-2.5")
        base = VirtualClock(10.0)
        clock = clock_from_env(base)
        assert isinstance(clock, SkewedClock)
        assert clock.time() == 7.5
