"""Sqlite fault injection and the writers' bounded-retry discipline.

Includes the regression the chaos PR exists to pin: JobLedger and
ExperimentStore writers must absorb transient ``database is locked``
bursts (and torn writes) with bounded backoff instead of propagating,
and must still give up on persistent failure.
"""

import sqlite3

import pytest

from repro.chaos.clock import VirtualClock
from repro.chaos.sqlio import (
    FAULTS_ENV,
    SqliteFaultInjector,
    SqliteFaults,
    TornWrite,
    install_injector,
    is_transient,
    reset_sqlio_stats,
    run_with_retry,
    sqlio_stats,
    uninstall_injector,
)
from repro.store import ExperimentStore, JobLedger

from ..service.conftest import small_spec


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with injection disarmed."""
    uninstall_injector()
    reset_sqlio_stats()
    yield
    uninstall_injector()
    reset_sqlio_stats()


class TestInjector:
    def test_draw_sequence_is_seeded(self):
        a = SqliteFaultInjector(SqliteFaults(seed=5, p_lock=0.5))
        b = SqliteFaultInjector(SqliteFaults(seed=5, p_lock=0.5))
        seq_a = [a.draw("store", "connect") for _ in range(30)]
        seq_b = [b.draw("store", "connect") for _ in range(30)]
        assert seq_a == seq_b
        assert "lock" in seq_a

    def test_limit_bounds_the_burst(self):
        injector = SqliteFaultInjector(
            SqliteFaults(seed=1, p_lock=1.0, limit=3)
        )
        kinds = [injector.draw("ledger", "connect") for _ in range(10)]
        assert kinds.count("lock") == 3
        assert all(k is None for k in kinds[3:])

    def test_commit_phase_partitions_torn_and_disk(self):
        injector = SqliteFaultInjector(
            SqliteFaults(seed=2, p_torn=0.5, p_disk=0.5)
        )
        kinds = {injector.draw("store", "commit") for _ in range(50)}
        assert kinds == {"torn", "disk"}

    def test_env_round_trip_arms_lazily(self, monkeypatch):
        faults = SqliteFaults(seed=9, p_lock=1.0, limit=2)
        monkeypatch.setenv(FAULTS_ENV, faults.to_env())
        uninstall_injector()  # forget the autouse fixture's explicit arm
        from repro.chaos.sqlio import active_injector

        injector = active_injector()
        assert injector is not None
        assert injector.faults == faults

    def test_explicit_install_beats_environment(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, SqliteFaults(seed=1, p_lock=1.0).to_env()
        )
        install_injector(None)  # explicit disarm wins
        from repro.chaos.sqlio import active_injector

        assert active_injector() is None


class TestTransience:
    def test_markers(self):
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(sqlite3.OperationalError("disk I/O error"))
        assert is_transient(TornWrite("chaos"))
        assert not is_transient(sqlite3.OperationalError("no such table: x"))
        assert not is_transient(ValueError("database is locked"))


class TestRunWithRetry:
    def test_backoff_schedule_is_deterministic(self):
        clock = VirtualClock()
        calls = []

        def op():
            calls.append(1)
            if len(calls) < 4:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert run_with_retry(op, clock=clock, backoff=0.05, cap=0.5) == "ok"
        assert clock.sleeps == [0.05, 0.1, 0.2]

    def test_gives_up_after_attempts_and_counts_it(self):
        clock = VirtualClock()

        def op():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            run_with_retry(op, clock=clock, attempts=3)
        assert len(clock.sleeps) == 2  # attempts-1 backoffs
        assert sqlio_stats()["giveups"] == 1

    def test_non_transient_propagates_immediately(self):
        clock = VirtualClock()

        def op():
            raise sqlite3.OperationalError("no such table: runs")

        with pytest.raises(sqlite3.OperationalError):
            run_with_retry(op, clock=clock)
        assert clock.sleeps == []


class TestWriterRetryRegression:
    """The satellite: real writers under an injected lock burst."""

    def test_ledger_append_and_claim_survive_lock_burst(self, tmp_path):
        clock = VirtualClock(1000.0)
        ledger = JobLedger(tmp_path / "l.sqlite", clock=clock)
        install_injector(SqliteFaults(seed=3, p_lock=0.6, limit=4))
        ledger.append("j1", small_spec(), [1, 2], shards=2)
        claim = ledger.claim_next("w1")
        assert claim is not None
        assert ledger.complete_shard(
            claim.job_id, claim.shard, "w1", claim.token
        )
        stats = sqlio_stats()
        assert stats["injected_lock"] >= 1  # the burst actually fired
        assert stats["retries"] >= stats["injected_lock"]
        assert stats["giveups"] == 0  # ...and was fully absorbed

    def test_store_register_survives_torn_write_burst(self, tmp_path):
        clock = VirtualClock(1000.0)
        store = ExperimentStore(tmp_path / "s.sqlite", clock=clock)
        install_injector(SqliteFaults(seed=7, p_torn=0.6, limit=4))
        fingerprint = store.register(small_spec())
        assert store.scenario(fingerprint) is not None
        stats = sqlio_stats()
        assert stats["injected_torn"] >= 1
        assert stats["giveups"] == 0

    def test_rolled_back_write_leaves_no_partial_rows(self, tmp_path):
        """A torn write must be all-or-nothing: after the retries
        succeed there is exactly one scenario row, never a partial."""
        store = ExperimentStore(tmp_path / "s.sqlite", clock=VirtualClock())
        install_injector(SqliteFaults(seed=11, p_torn=0.5, limit=6))
        store.register(small_spec())
        uninstall_injector()
        assert len(store.scenarios()) == 1

    def test_persistent_lock_eventually_propagates(self, tmp_path):
        clock = VirtualClock()
        ledger = JobLedger(tmp_path / "l.sqlite", clock=clock)
        # Unbounded burst: every attempt fails, the writer must give
        # up with the original error rather than loop forever.
        install_injector(SqliteFaults(seed=1, p_lock=1.0))
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            ledger.append("j1", small_spec(), [1])
        assert sqlio_stats()["giveups"] >= 1
